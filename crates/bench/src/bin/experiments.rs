//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p qbdp-bench --bin experiments            # all
//! cargo run --release -p qbdp-bench --bin experiments -- --e1 --e9
//! ```
//!
//! Each experiment prints a table; correctness-style experiments also
//! assert their claims (a failed claim aborts with a message). See
//! DESIGN.md §6 for the experiment ↔ paper mapping.

#![forbid(unsafe_code)]

use qbdp_bench::{chain, cycle, figure1, h1};
use qbdp_catalog::{tuple, CatalogBuilder, Column, Value};
use qbdp_core::chain::graph::TupleEdgeMode;
use qbdp_core::chain::multi_attr::{multi_attr_chain_price, PairPriceList};
use qbdp_core::chain::price::{chain_price, FlowAlgo};
use qbdp_core::consistency::find_list_arbitrage;
use qbdp_core::cycle::{cycle_bounds, cycle_price};
use qbdp_core::dichotomy::{classify, QueryClass};
use qbdp_core::dynamic::price_trajectory;
use qbdp_core::exact::certificates::{certificate_price, CertificateConfig};
use qbdp_core::normalize::Problem;
use qbdp_core::price_points::{PriceList, PricePoint, PriceSchedule, ViewDef};
use qbdp_core::support::{
    arbitrage_price, arbitrage_price_restricted, is_consistent, SupportConfig,
};
use qbdp_core::{Price, Pricer};
use qbdp_determinacy::bruteforce::determines_bruteforce;
use qbdp_determinacy::selection::{determines_monotone_cq, SelectionView, ViewSet};
use qbdp_market::Market;
use qbdp_query::bundle::Bundle;
use qbdp_query::chain::ChainQuery;
use qbdp_query::parser::parse_rule;
use qbdp_workload::scenarios::business::{generate as gen_business, BusinessConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |tag: &str| args.is_empty() || args.iter().any(|a| a == tag || a == "--all");
    let experiments: Vec<(&str, &str, fn())> = vec![
        ("--e1", "E1  Figure 1 / Example 3.8", e1 as fn()),
        ("--e2", "E2  GChQ PTIME scaling (Thm 3.7)", e2),
        ("--e3", "E3  NP-hard vs PTIME crossover (Thm 3.5)", e3),
        ("--e4", "E4  consistency checking (Thm 2.15 / Prop 3.2)", e4),
        ("--e5", "E5  dichotomy classifier (Thm 3.16)", e5),
        ("--e6", "E6  dynamic pricing (§2.7 / Ex 2.18)", e6),
        ("--e7", "E7  disconnected composition (Prop 3.14)", e7),
        ("--e8", "E8  determinacy oracles (Thm 3.3 / Thm 2.3)", e8),
        ("--e9", "E9  cycle queries (Thm 3.15)", e9),
        ("--e10", "E10 multi-attribute prices (§4)", e10),
        ("--e11", "E11 pricing axioms (Prop 2.8 / Lemma 2.14)", e11),
        ("--e12", "E12 flow ablation (dense/hub, Dinic/EK)", e12),
        ("--e13", "E13 market throughput", e13),
        ("--e14", "E14 GChQ bundles (Def 3.9, deferred to [19])", e14),
    ];
    for (tag, title, run) in experiments {
        if want(tag) {
            println!("\n================================================================");
            println!("{title}");
            println!("================================================================");
            run();
        }
    }
}

fn ms(d: std::time::Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

// ---------------------------------------------------------------- E1 ----

fn e1() {
    let f = figure1();
    let q = &f.query;
    let chain_q = ChainQuery::from_cq(q).expect("pricing succeeds");
    let pa = chain_q.partial_answers(&f.catalog, &f.instance);
    println!("partial answers (paper Figure 1b):");
    let fmt_set = |s: &qbdp_catalog::FxHashSet<Value>| {
        let mut v: Vec<String> = s.iter().map(|x| x.to_string()).collect();
        v.sort();
        v.join(",")
    };
    for i in 0..=2 {
        println!(
            "  Lt_{i} = {{{}}}   Rt_{i} = {{{}}}",
            fmt_set(pa.lt(i)),
            fmt_set(pa.rt(i))
        );
    }
    println!("  |Md[1:1]| = {} (= S(D))", pa.md(1, 1).len());
    let t = Instant::now();
    let quote = f.pricer().price_cq(q).expect("pricing succeeds");
    let dt = t.elapsed();
    let mut views: Vec<String> = quote
        .views
        .iter()
        .map(|v| v.display(f.catalog.schema()))
        .collect();
    views.sort();
    println!("\nprice = {}  (paper: 6)   [{}]", quote.price, ms(dt));
    println!("min-cut views = {views:?}");
    assert_eq!(quote.price, Price::dollars(6), "E1 FAILED");
    println!("PAPER-MATCH: price 6 and the Example 3.8 view set reproduced ✓");
}

// ---------------------------------------------------------------- E2 ----

fn e2() {
    println!(
        "{:>4} {:>6} {:>8} {:>10} {:>10} {:>12}",
        "k", "n", "|D|", "price", "time", "graph(V,E)"
    );
    for &k in &[2usize, 3, 4] {
        let mut last: Option<f64> = None;
        for &n in &[8i64, 16, 32, 64, 128] {
            let f = chain(k, n, (4 * n) as usize, 42);
            let pricer = f.pricer();
            // Min of three runs: single-core CI boxes jitter badly.
            let mut dt = f64::INFINITY;
            let mut quote = None;
            for _ in 0..3 {
                let t = Instant::now();
                quote = Some(pricer.price_cq(&f.query).expect("pricing succeeds"));
                dt = dt.min(t.elapsed().as_secs_f64());
            }
            let quote = quote.expect("pricing succeeds");
            // Graph size via a direct chain build (reorder is identity).
            let problem = Problem::new(
                f.catalog.clone(),
                f.instance.clone(),
                f.prices.clone(),
                qbdp_core::gchq::reorder_to_gchq(&f.query).expect("pricing succeeds"),
            );
            let r = chain_price(&problem, TupleEdgeMode::Hub, FlowAlgo::Dinic)
                .expect("pricing succeeds");
            let growth = last.map(|p| format!("x{:.1}", dt / p)).unwrap_or_default();
            println!(
                "{:>4} {:>6} {:>8} {:>10} {:>9.2}ms {:>12} {}",
                k,
                n,
                f.instance.total_tuples(),
                quote.price.to_string(),
                dt * 1e3,
                format!("({},{})", r.graph_size.0, r.graph_size.1),
                growth
            );
            last = Some(dt);
        }
    }
    println!("SHAPE: time grows polynomially in n at every k (doubling n multiplies time by a bounded factor) — Theorem 3.7's PTIME claim.");
}

// ---------------------------------------------------------------- E3 ----

fn e3() {
    println!(
        "{:>6} | {:>12} {:>12} | {:>12} {:>12}",
        "n", "H1 price", "H1 time", "chain3 price", "chain3 time"
    );
    for &n in &[2i64, 4, 6, 8, 10] {
        let fh = h1(n, (n * n) as usize, 7);
        let t = Instant::now();
        let ph = fh
            .pricer()
            .price_cq(&fh.query)
            .expect("pricing succeeds")
            .price;
        let th = t.elapsed();
        let fc = chain(3, n, (n * n) as usize, 7);
        let t = Instant::now();
        let pc = fc
            .pricer()
            .price_cq(&fc.query)
            .expect("pricing succeeds")
            .price;
        let tc = t.elapsed();
        println!(
            "{:>6} | {:>12} {:>12} | {:>12} {:>12}",
            n,
            ph.to_string(),
            ms(th),
            pc.to_string(),
            ms(tc)
        );
    }
    println!("SHAPE: H1 (NP-complete, exact hitting set) blows up with n while the chain query (Min-Cut) stays flat — the tractability boundary of Theorem 3.5/3.7.");
}

// ---------------------------------------------------------------- E4 ----

fn e4() {
    let mut rng = StdRng::seed_from_u64(4);
    println!(
        "{:>6} {:>8} {:>12} {:>10}",
        "n", "|Σ|", "consistent?", "time"
    );
    for &n in &[8i64, 32, 128, 512] {
        let qs = qbdp_workload::queries::chain_schema(2, n).expect("workload schema");
        let pl = qbdp_workload::prices::random(&qs.catalog, &mut rng, 2, 9);
        let t = Instant::now();
        let ok = find_list_arbitrage(&qs.catalog, &pl).is_empty();
        let dt = t.elapsed();
        println!(
            "{:>6} {:>8} {:>12} {:>10}",
            n,
            qs.catalog.sigma_size(),
            ok,
            ms(dt)
        );
    }
    // Engineered arbitrage is detected.
    let qs = qbdp_workload::queries::chain_schema(2, 16).expect("workload schema");
    let bad = qbdp_workload::prices::with_arbitrage(&qs.catalog, Price::dollars(1))
        .expect("workload schema");
    let viol = find_list_arbitrage(&qs.catalog, &bad);
    assert!(!viol.is_empty(), "E4 FAILED: engineered arbitrage missed");
    println!(
        "engineered arbitrage detected: {}",
        viol[0].display(&qs.catalog)
    );
    println!("PAPER-MATCH: Prop 3.2's finite check runs in O(|Σ|) and is instance-independent ✓");
}

// ---------------------------------------------------------------- E5 ----

fn e5() {
    // A corpus of random self-join-free CQs over a mixed schema.
    let col = Column::int_range(0, 3);
    let catalog = CatalogBuilder::new()
        .uniform_relation("U1", &["X"], &col)
        .uniform_relation("U2", &["X"], &col)
        .uniform_relation("B1", &["X", "Y"], &col)
        .uniform_relation("B2", &["X", "Y"], &col)
        .uniform_relation("B3", &["X", "Y"], &col)
        .uniform_relation("T1", &["X", "Y", "Z"], &col)
        .build()
        .expect("bench setup");
    let mut rng = StdRng::seed_from_u64(5);
    let mut counts: Vec<(String, usize)> = Vec::new();
    let mut bump = |k: String| match counts.iter_mut().find(|(n, _)| *n == k) {
        Some((_, c)) => *c += 1,
        None => counts.push((k, 1)),
    };
    let rels = ["U1", "U2", "B1", "B2", "B3", "T1"];
    let arities = [1usize, 1, 2, 2, 2, 3];
    let mut verified = 0usize;
    let mut corpus = 0usize;
    for _ in 0..500 {
        // 1-4 distinct atoms, variables drawn from a pool of 4.
        let n_atoms = rng.gen_range(1..=4);
        let mut chosen: Vec<usize> = Vec::new();
        while chosen.len() < n_atoms {
            let r = rng.gen_range(0..rels.len());
            if !chosen.contains(&r) {
                chosen.push(r);
            }
        }
        let vars = ["x", "y", "z", "w"];
        let mut body = Vec::new();
        for &r in &chosen {
            let args: Vec<&str> = (0..arities[r])
                .map(|_| vars[rng.gen_range(0..vars.len())])
                .collect();
            body.push(format!("{}({})", rels[r], args.join(", ")));
        }
        // Random head: full, boolean, or a projection. Parse with a boolean
        // head (always safe), then re-head.
        let mode = rng.gen_range(0..3);
        let src = format!("Q() :- {}", body.join(", "));
        let Ok(q_bool) = parse_rule(catalog.schema(), &src) else {
            continue;
        };
        let bv = q_bool.body_vars();
        let q = match mode {
            0 => q_bool.with_head(bv).expect("bench setup"),
            1 => q_bool,
            _ => q_bool
                .with_head(bv.into_iter().take(1).collect())
                .expect("bench setup"),
        };
        corpus += 1;
        let class = classify(&q);
        let label = match &class {
            QueryClass::GeneralizedChain => "GChQ (PTIME)",
            QueryClass::Cycle(_) => "Cycle (PTIME)",
            QueryClass::Disconnected(_) => {
                if class.is_ptime() {
                    "Disconnected (PTIME)"
                } else {
                    "Disconnected (NP-c)"
                }
            }
            QueryClass::NpComplete(_) => "NP-complete",
            QueryClass::OutsideDichotomy => "self-join",
        };
        bump(label.to_string());
        // For a sample of PTIME full queries: flow price == exact price.
        if verified < 40 && class == QueryClass::GeneralizedChain && !q.is_boolean() {
            let mut d = catalog.empty_instance();
            for (rid, _) in catalog.schema().iter() {
                qbdp_workload::dbgen::insert_random(&catalog, &mut d, rid, &mut rng, 5, None)
                    .expect("data generation");
            }
            let prices = PriceList::uniform(&catalog, Price::dollars(1));
            let flow = Pricer::new(catalog.clone(), d.clone(), prices.clone())
                .expect("pricing succeeds")
                .price_cq(&q)
                .expect("pricing succeeds")
                .price;
            if qbdp_query::analysis::is_full(&q) {
                let exact =
                    certificate_price(&catalog, &d, &prices, &q, CertificateConfig::default())
                        .expect("pricing succeeds")
                        .price;
                assert_eq!(flow, exact, "E5 FAILED: flow != exact on {q}");
                verified += 1;
            }
        }
    }
    counts.sort_by_key(|c| std::cmp::Reverse(c.1));
    println!("{corpus} random self-join-free CQs classified:");
    for (label, c) in &counts {
        println!(
            "  {label:24} {c:>5}  ({:.1}%)",
            100.0 * *c as f64 / corpus as f64
        );
    }
    println!("flow == exact price verified on {verified} random PTIME-classified instances ✓");
}

// ---------------------------------------------------------------- E6 ----

fn e6() {
    // Part A: Example 2.18 (general §2 schedules, projection views).
    let col = Column::int_range(0, 2);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .build()
        .expect("bench setup");
    let schema = catalog.schema();
    let v = parse_rule(schema, "V(x, y) :- R(x), S(x, y)").expect("query parses");
    let q = parse_rule(schema, "Q() :- R(x)").expect("query parses");
    let qb = Bundle::from(q.clone());
    let mut s1 = PriceSchedule::new();
    s1.add(PricePoint::new(
        "V",
        ViewDef::Queries(Bundle::from(v.clone())),
        Price::dollars(1),
    ));
    s1.add(PricePoint::new(
        "Q",
        ViewDef::Queries(qb.clone()),
        Price::dollars(10),
    ));
    s1.add(PricePoint::new(
        "ID",
        ViewDef::identity(&catalog),
        Price::dollars(100),
    ));
    let mut s2 = PriceSchedule::new();
    s2.add(PricePoint::new(
        "V",
        ViewDef::Queries(Bundle::from(v)),
        Price::dollars(1),
    ));
    s2.add(PricePoint::new(
        "ID",
        ViewDef::identity(&catalog),
        Price::dollars(100),
    ));
    let d1 = catalog.empty_instance();
    let mut d2 = catalog.empty_instance();
    d2.insert(schema.rel_id("R").expect("declared relation"), tuple![0])
        .expect("declared relation");
    d2.insert(schema.rel_id("S").expect("declared relation"), tuple![0, 1])
        .expect("declared relation");
    let cfg = SupportConfig::default();
    println!("Example 2.18 (V = R ⋈ S with projection, Q = ∃x R(x)):");
    println!("{:>26} {:>14} {:>14}", "", "D1 = ∅", "D2 = +R(0),S(0,1)");
    println!(
        "{:>26} {:>14} {:>14}",
        "S1 consistent?",
        is_consistent(&catalog, &d1, &s1, cfg).expect("bench setup"),
        is_consistent(&catalog, &d2, &s1, cfg).expect("bench setup")
    );
    let p1 = arbitrage_price(&catalog, &d1, &s2, &qb, cfg)
        .expect("pricing succeeds")
        .price;
    let p2 = arbitrage_price(&catalog, &d2, &s2, &qb, cfg)
        .expect("pricing succeeds")
        .price;
    println!(
        "{:>26} {:>14} {:>14}",
        "price of Q under S2",
        p1.to_string(),
        p2.to_string()
    );
    assert_eq!(
        (p1, p2),
        (Price::dollars(100), Price::dollars(1)),
        "E6 FAILED"
    );
    // The Prop 2.24 repair: the restricted relation ։* keeps the price up.
    let rcfg = SupportConfig {
        max_points: 8,
        bruteforce_limit: 8,
    };
    let r1 = arbitrage_price_restricted(&catalog, &d1, &s2, &qb, rcfg)
        .expect("pricing succeeds")
        .price;
    let r2 = arbitrage_price_restricted(&catalog, &d2, &s2, &qb, rcfg)
        .expect("pricing succeeds")
        .price;
    println!(
        "{:>26} {:>14} {:>14}",
        "restricted price (։*)",
        r1.to_string(),
        r2.to_string()
    );
    assert_eq!(
        (r1, r2),
        (Price::dollars(100), Price::dollars(100)),
        "E6 FAILED: ։* dropped"
    );
    println!("PAPER-MATCH: consistency lost, the $100 → $1 drop, and the ։* repair (Prop 2.24) all reproduced ✓\n");

    // Part B: selection views + full CQ ⇒ monotone (Prop 2.20/2.22).
    let col = Column::int_range(0, 4);
    let cat = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["Y"], &col)
        .build()
        .expect("bench setup");
    let prices = PriceList::uniform(&cat, Price::dollars(1));
    let mut pricer =
        Pricer::new(cat.clone(), cat.empty_instance(), prices).expect("pricing succeeds");
    let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").expect("query parses");
    let mut rng = StdRng::seed_from_u64(6);
    let mut batches = Vec::new();
    for _ in 0..8 {
        let mut batch = Vec::new();
        for _ in 0..2 {
            let rel = cat
                .schema()
                .rel_ids()
                .nth(rng.gen_range(0..3))
                .expect("declared relation");
            let arity = cat.schema().relation(rel).arity();
            let t = qbdp_catalog::Tuple::new((0..arity).map(|_| Value::Int(rng.gen_range(0..4))));
            batch.push((rel, t));
        }
        batches.push(batch);
    }
    let traj = price_trajectory(&mut pricer, batches, &q).expect("pricing succeeds");
    println!("selection views + full CQ under random insertions:");
    let line: Vec<String> = traj
        .steps
        .iter()
        .map(|(n, p)| format!("|D|={n}:{p}"))
        .collect();
    println!("  {}", line.join("  →  "));
    assert!(
        traj.is_monotone(),
        "E6 FAILED: {:?}",
        traj.first_violation()
    );
    println!("PAPER-MATCH: monotone at every step (Prop 2.22) ✓");
}

// ---------------------------------------------------------------- E7 ----

fn e7() {
    let col = Column::int_range(0, 2);
    let catalog = CatalogBuilder::new()
        .uniform_relation("A", &["X"], &col)
        .uniform_relation("B", &["X"], &col)
        .build()
        .expect("bench setup");
    let q = parse_rule(catalog.schema(), "Q(x, y) :- A(x), B(y)").expect("query parses");
    let prices = PriceList::uniform(&catalog, Price::dollars(1));
    println!(
        "{:>10} {:>10} {:>12} {:>20}",
        "A(D)", "B(D)", "price", "Prop 3.14 predicts"
    );
    for (fill_a, fill_b, expect) in [
        (true, true, "p(A) + p(B) = $4"),
        (false, true, "p(A) = $2"),
        (true, false, "p(B) = $2"),
        (false, false, "min(p(A), p(B)) = $2"),
    ] {
        let mut d = catalog.empty_instance();
        if fill_a {
            d.insert(
                catalog.schema().rel_id("A").expect("declared relation"),
                tuple![0],
            )
            .expect("declared relation");
        }
        if fill_b {
            d.insert(
                catalog.schema().rel_id("B").expect("declared relation"),
                tuple![1],
            )
            .expect("declared relation");
        }
        let p = Pricer::new(catalog.clone(), d, prices.clone())
            .expect("pricing succeeds")
            .price_cq(&q)
            .expect("pricing succeeds")
            .price;
        println!(
            "{:>10} {:>10} {:>12} {:>20}",
            if fill_a { "≠ ∅" } else { "∅" },
            if fill_b { "≠ ∅" } else { "∅" },
            p.to_string(),
            expect
        );
    }
    println!("PAPER-MATCH: all four cases of Proposition 3.14 ✓");
}

// ---------------------------------------------------------------- E8 ----

fn e8() {
    // Oracle scaling (Thm 3.3).
    println!("Theorem 3.3 oracle (D_min/D_max) on chain-2, random half-Σ views:");
    println!("{:>6} {:>10} {:>12}", "n", "|D_max|", "time");
    let mut rng = StdRng::seed_from_u64(8);
    for &n in &[4i64, 8, 16, 32, 64] {
        let f = chain(2, n, (2 * n) as usize, 8);
        let views: ViewSet = ViewSet::sigma(&f.catalog)
            .iter()
            .filter(|_| rng.gen_bool(0.5))
            .collect();
        let t = Instant::now();
        let _ =
            determines_monotone_cq(&f.catalog, &f.instance, &views, &f.query).expect("bench setup");
        let dt = t.elapsed();
        let dmax = qbdp_determinacy::selection::max_world(&f.catalog, &f.instance, &views);
        println!("{:>6} {:>10} {:>12}", n, dmax.total_tuples(), ms(dt));
    }
    // Brute-force (co-NP) blowup on tiny catalogs.
    println!("\nbrute-force world enumeration (Thm 2.3, co-NP):");
    println!("{:>12} {:>10} {:>12}", "candidates", "worlds", "time");
    for &n in &[2i64, 3] {
        let col = Column::int_range(0, n);
        let catalog = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .build()
            .expect("bench setup");
        let mut d = catalog.empty_instance();
        d.insert(
            catalog.schema().rel_id("S").expect("declared relation"),
            tuple![0, 1],
        )
        .expect("declared relation");
        let q =
            parse_rule(catalog.schema(), "Q(x, y) :- R(x), S(x, y)").expect("declared relation");
        let views: ViewSet = ViewSet::sigma(&catalog).iter().collect();
        let candidates = (n + n * n) as u32;
        let t = Instant::now();
        let slow = determines_bruteforce(
            &catalog,
            &d,
            &views.to_bundle(catalog.schema()),
            &Bundle::from(q.clone()),
            16,
        )
        .expect("bench setup");
        let dt = t.elapsed();
        let fast = determines_monotone_cq(&catalog, &d, &views, &q).expect("bench setup");
        assert_eq!(slow, fast, "E8 FAILED: oracles disagree");
        println!(
            "{:>12} {:>10} {:>12}",
            candidates,
            1u64 << candidates,
            ms(dt)
        );
    }
    println!("SHAPE: the PTIME oracle scales polynomially; world enumeration doubles per candidate tuple; both agree where both run ✓");
}

// ---------------------------------------------------------------- E9 ----

fn e9() {
    println!("cycle queries C_k: polynomial sandwich [max single-seam cut, global cut] vs exact");
    println!(
        "{:>4} {:>4} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "k", "n", "|D|", "lower bnd", "exact", "upper bnd", "certified?"
    );
    let mut certified = 0usize;
    let mut total = 0usize;
    for &k in &[2usize, 3] {
        for &n in &[2i64, 3] {
            for seed in 0..8u64 {
                let f = cycle(k, n, (n * n) as usize, 900 + seed);
                let problem = Problem::new(
                    f.catalog.clone(),
                    f.instance.clone(),
                    f.prices.clone(),
                    f.query.clone(),
                );
                let exact = certificate_price(
                    &f.catalog,
                    &f.instance,
                    &f.prices,
                    &f.query,
                    CertificateConfig::default(),
                )
                .expect("bench setup")
                .price;
                let via_cycle = cycle_price(&problem, CertificateConfig::default())
                    .expect("pricing succeeds")
                    .price;
                assert_eq!(via_cycle, exact, "E9 FAILED: cycle engine disagrees");
                let (lb, ub) = cycle_bounds(&problem).expect("pricing succeeds");
                assert!(
                    lb <= exact && exact <= ub.price,
                    "E9 FAILED: sandwich broken"
                );
                total += 1;
                if lb == ub.price {
                    certified += 1;
                }
                if seed == 0 {
                    println!(
                        "{:>4} {:>4} {:>8} {:>12} {:>12} {:>12} {:>10}",
                        k,
                        n,
                        f.instance.total_tuples(),
                        lb.to_string(),
                        exact.to_string(),
                        ub.price.to_string(),
                        lb == ub.price
                    );
                }
            }
        }
    }
    println!("sandwich certified the optimum in PTIME on {certified}/{total} random instances; the rest used the exact fallback (always matching the certificate engine)");
    // Brittleness: H2 = C2 + one unary atom is NP-complete.
    let f = qbdp_bench::h2(3, 6, 9);
    let class = classify(&f.query);
    println!("H2 = C2 + unary atom classifies as {class:?} (paper: NP-complete) - the cycle class is brittle");
    assert!(!class.is_ptime(), "E9 FAILED: H2 must not be PTIME");
}

// --------------------------------------------------------------- E10 ----

fn e10() {
    // Chain with pair prices: tuple-edge capacities (§4).
    let col = Column::int_range(0, 3);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["Y"], &col)
        .build()
        .expect("bench setup");
    let mut d = catalog.empty_instance();
    d.insert_all(
        catalog.schema().rel_id("R").expect("declared relation"),
        [tuple![0], tuple![1], tuple![2]],
    )
    .expect("declared relation");
    d.insert(
        catalog.schema().rel_id("S").expect("declared relation"),
        tuple![0, 0],
    )
    .expect("declared relation");
    d.insert_all(
        catalog.schema().rel_id("T").expect("declared relation"),
        [tuple![0], tuple![1]],
    )
    .expect("declared relation");
    let q = parse_rule(catalog.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").expect("query parses");
    let prices = PriceList::uniform(&catalog, Price::dollars(10));
    let problem = Problem::new(catalog.clone(), d, prices, q);
    let s_rel = catalog.schema().rel_id("S").expect("declared relation");
    println!("{:>18} {:>12}", "pair price", "chain price");
    let base = multi_attr_chain_price(&problem, &PairPriceList::new())
        .expect("declared relation")
        .price;
    println!("{:>18} {:>12}", "(none)", base.to_string());
    for cents in [100u64, 300, 700] {
        let mut pairs = PairPriceList::new();
        for a in 0..3 {
            for b in 0..3 {
                pairs.set(s_rel, Value::Int(a), Value::Int(b), Price::cents(cents));
            }
        }
        let r = multi_attr_chain_price(&problem, &pairs).expect("pricing succeeds");
        println!(
            "{:>18} {:>12}   ({} pair views bought)",
            Price::cents(cents).to_string(),
            r.price.to_string(),
            r.pair_views.len()
        );
        assert!(r.price <= base, "E10 FAILED: pair views raised the price");
    }
    println!("SHAPE: cheaper pair views monotonically lower the chain price (the §4 tuple-edge re-weighting) ✓");
    println!("NOTE: §4 proves the same extension NP-hard beyond chains (even Q = R(x,y,z)); the exact engines cover that regime.");
}

// --------------------------------------------------------------- E11 ----

fn e11() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut checks = 0usize;
    for seed in 0..25u64 {
        let f = chain(2, 3, rng.gen_range(0..8), 1100 + seed);
        let pricer = f.pricer();
        let id_price = f.prices.identity_price(&f.catalog);
        let p = pricer.price_cq(&f.query).expect("pricing succeeds").price;
        assert!(p <= id_price, "E11 FAILED: upper bound");
        // Lemma 2.14(a): a slice view's derived price ≤ its explicit price.
        let rx = f
            .catalog
            .schema()
            .resolve_attr("A.X")
            .expect("declared attribute");
        let a0 = f.catalog.column(rx).value_at(0).clone();
        let vq = parse_rule(f.catalog.schema(), &format!("V(x) :- A(x), x = {a0}"))
            .expect("declared attribute");
        let pv = pricer.price_cq(&vq).expect("declared attribute").price;
        assert!(
            pv <= f.prices.get(&SelectionView::new(rx, a0.clone())),
            "E11 FAILED: arbitrage-price exceeds explicit price"
        );
        checks += 1;
    }
    println!("on {checks} random instances:");
    println!("  0 ≤ price(Q) ≤ price(ID)                      ✓ (Prop 2.8)");
    println!("  price(σ view as a query) ≤ explicit price     ✓ (Lemma 2.14a)");
    println!("  (subadditivity & monotonicity are property-tested in tests/axioms_proptest.rs)");
}

// --------------------------------------------------------------- E12 ----

fn e12() {
    println!(
        "{:>6} | {:>11} {:>11} | {:>11} {:>11} | {:>14}",
        "n", "hub+dinic", "dense+dinic", "hub+EK", "dense+EK", "dense/hub edges"
    );
    for &n in &[16i64, 64, 256] {
        let f = chain(3, n, (4 * n) as usize, 12);
        let problem = Problem::new(
            f.catalog.clone(),
            f.instance.clone(),
            f.prices.clone(),
            qbdp_core::gchq::reorder_to_gchq(&f.query).expect("pricing succeeds"),
        );
        let mut row: Vec<String> = Vec::new();
        let mut prices_seen = Vec::new();
        let mut edges = (0usize, 0usize);
        for mode in [TupleEdgeMode::Hub, TupleEdgeMode::Dense] {
            for algo in [FlowAlgo::Dinic, FlowAlgo::EdmondsKarp] {
                let t = Instant::now();
                let r = chain_price(&problem, mode, algo).expect("pricing succeeds");
                row.push(ms(t.elapsed()));
                prices_seen.push(r.price);
                match mode {
                    TupleEdgeMode::Hub => edges.1 = r.graph_size.1,
                    TupleEdgeMode::Dense => edges.0 = r.graph_size.1,
                }
            }
        }
        assert!(
            prices_seen.windows(2).all(|w| w[0] == w[1]),
            "E12 FAILED: modes disagree on the price"
        );
        println!(
            "{:>6} | {:>11} {:>11} | {:>11} {:>11} | {:>14}",
            n,
            row[0],
            row[2],
            row[1],
            row[3],
            format!("{} / {}", edges.0, edges.1)
        );
    }
    println!("SHAPE: all four configurations compute identical prices; the hub construction keeps the edge count linear in n ✓");
}

// --------------------------------------------------------------- E13 ----

fn e13() {
    let mut rng = StdRng::seed_from_u64(13);
    let m = gen_business(
        &mut rng,
        BusinessConfig {
            states: 10,
            counties_per_state: 5,
            businesses: 200,
            ..Default::default()
        },
    )
    .expect("bench setup");
    let market = Market::open(m.catalog.clone(), m.instance, m.prices).expect("report file I/O");
    let queries: Vec<String> = (0..10)
        .map(|s| format!("Q(n, c) :- Business(n, 'S{s}', c)"))
        .collect();
    // Uncached pricing throughput (parse + full Min-Cut per call).
    let parsed: Vec<_> = queries
        .iter()
        .map(|q| parse_rule(m.catalog.schema(), q).expect("query parses"))
        .collect();
    let t = Instant::now();
    let mut priced = 0usize;
    while t.elapsed().as_secs_f64() < 2.0 {
        for q in &parsed {
            market.quote(q).expect("pricing succeeds");
            priced += 1;
        }
    }
    let uncached = priced as f64 / t.elapsed().as_secs_f64();
    // Cached (string) quoting.
    let t = Instant::now();
    let mut quotes = 0usize;
    while t.elapsed().as_secs_f64() < 2.0 {
        for q in &queries {
            market.quote_str(q).expect("pricing succeeds");
            quotes += 1;
        }
    }
    let seq = quotes as f64 / t.elapsed().as_secs_f64();
    // Concurrent quoting (4 threads) with a writer inserting tuples.
    let t = Instant::now();
    let total: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(scope.spawn(|| {
                let mut local = 0usize;
                let t = Instant::now();
                while t.elapsed().as_secs_f64() < 2.0 {
                    for q in &queries {
                        market.quote_str(q).expect("pricing succeeds");
                        local += 1;
                    }
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("bench setup"))
            .sum()
    });
    let conc = total as f64 / t.elapsed().as_secs_f64();
    println!("uncached pricing : {uncached:>8.0} quotes/s  (parse + Min-Cut each call)");
    println!("cached sequential: {seq:>8.0} quotes/s  (quote cache, invalidated on update)");
    println!(
        "cached 4 threads : {conc:>8.0} quotes/s  (x{:.1} on this {}-core box)",
        conc / seq,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
}

// --------------------------------------------------------------- E14 ----

fn e14() {
    use qbdp_core::chain::bundle::chain_bundle_price;
    use qbdp_core::exact::certificates::certificate_price_bundle;
    use qbdp_core::normalize::Provenance;
    use qbdp_query::ast::ConjunctiveQuery;

    // The paper's own bundle shape (after Definition 3.9), in chain form:
    // shared prefix A, S; divergent middles R vs T; shared/unshared caps.
    let col = Column::int_range(0, 4);
    let cat = CatalogBuilder::new()
        .uniform_relation("A", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("R", &["X", "Y"], &col)
        .uniform_relation("T", &["X", "Y"], &col)
        .uniform_relation("U", &["X"], &col)
        .uniform_relation("W", &["X"], &col)
        .build()
        .expect("bench setup");
    let members: Vec<ConjunctiveQuery> = vec![
        parse_rule(cat.schema(), "Q1(x, y, z) :- A(x), S(x, y), R(y, z), U(z)")
            .expect("query parses"),
        parse_rule(cat.schema(), "Q2(x, y, z) :- A(x), S(x, y), T(y, z), W(z)")
            .expect("query parses"),
        parse_rule(cat.schema(), "Q3(x, y, z) :- A(x), S(x, y), T(y, z), U(z)")
            .expect("query parses"),
    ];
    let mut rng = StdRng::seed_from_u64(14);
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "case", "sum(parts)", "bundle", "exact", "saved", "flow time"
    );
    for case in 0..5 {
        let mut d = cat.empty_instance();
        for (rid, _) in cat.schema().iter() {
            qbdp_workload::dbgen::insert_random(&cat, &mut d, rid, &mut rng, 8, None)
                .expect("data generation");
        }
        let prices = qbdp_workload::prices::random(&cat, &mut rng, 1, 5);
        let pricer = Pricer::new(cat.clone(), d.clone(), prices.clone()).expect("data generation");
        let sum: Price = members
            .iter()
            .map(|q| pricer.price_cq(q).expect("pricing succeeds").price)
            .sum();
        let t = Instant::now();
        let bundle = chain_bundle_price(&cat, &d, &prices, &members, &Provenance::identity())
            .expect("pricing succeeds");
        let flow_time = t.elapsed();
        let member_refs: Vec<&ConjunctiveQuery> = members.iter().collect();
        let exact = certificate_price_bundle(
            &cat,
            &d,
            &prices,
            &member_refs,
            CertificateConfig::default(),
        )
        .expect("bench setup");
        assert_eq!(
            bundle.price, exact.price,
            "E14 FAILED: bundle flow != exact"
        );
        assert!(bundle.price <= sum, "E14 FAILED: superadditive bundle");
        let saved = Price::cents(sum.as_cents().saturating_sub(bundle.price.as_cents()));
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>10} {:>12}",
            case,
            sum.to_string(),
            bundle.price.to_string(),
            exact.price.to_string(),
            saved.to_string(),
            ms(flow_time)
        );
    }
    println!("SHAPE: the shared-graph Min-Cut prices Definition 3.9 bundles in PTIME, matches the exact engine, and realizes Prop 2.8 subadditivity (shared views paid once).");
}
