//! # qbdp-bench — experiment fixtures
//!
//! Shared builders for the benchmark suite and the `experiments` binary.
//! Every experiment of DESIGN.md §6 (E1–E13) draws its workloads from
//! here, so the criterion benches and the table-printing harness measure
//! the same objects.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use qbdp_catalog::{Catalog, CatalogBuilder, Column, Instance};
use qbdp_core::price_points::PriceList;
use qbdp_core::{Price, Pricer};
use qbdp_query::ast::ConjunctiveQuery;
use qbdp_query::parser::parse_rule;
use qbdp_workload::dbgen;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A ready-to-price experiment instance.
pub struct Fixture {
    /// Schema + columns.
    pub catalog: Catalog,
    /// The data.
    pub instance: Instance,
    /// The price list.
    pub prices: PriceList,
    /// The query under measurement.
    pub query: ConjunctiveQuery,
}

impl Fixture {
    /// A pricer over this fixture.
    pub fn pricer(&self) -> Pricer {
        Pricer::new(
            self.catalog.clone(),
            self.instance.clone(),
            self.prices.clone(),
        )
        .expect("fixture instances respect their catalogs")
    }
}

/// The exact Figure 1 database, query, and $1 uniform prices (E1).
pub fn figure1() -> Fixture {
    let ax = Column::texts(["a1", "a2", "a3", "a4"]);
    let by = Column::texts(["b1", "b2", "b3"]);
    let catalog = CatalogBuilder::new()
        .relation("R", &[("X", ax.clone())])
        .relation("S", &[("X", ax), ("Y", by.clone())])
        .relation("T", &[("Y", by)])
        .build()
        .expect("bench setup");
    let mut instance = catalog.empty_instance();
    instance
        .insert_all(
            catalog.schema().rel_id("R").expect("declared relation"),
            [qbdp_catalog::tuple!["a1"], qbdp_catalog::tuple!["a2"]],
        )
        .expect("declared relation");
    instance
        .insert_all(
            catalog.schema().rel_id("S").expect("declared relation"),
            [
                qbdp_catalog::tuple!["a1", "b1"],
                qbdp_catalog::tuple!["a1", "b2"],
                qbdp_catalog::tuple!["a2", "b2"],
                qbdp_catalog::tuple!["a4", "b1"],
            ],
        )
        .expect("bench setup");
    instance
        .insert_all(
            catalog.schema().rel_id("T").expect("declared relation"),
            [qbdp_catalog::tuple!["b1"], qbdp_catalog::tuple!["b3"]],
        )
        .expect("declared relation");
    let prices = PriceList::uniform(&catalog, Price::dollars(1));
    let query =
        parse_rule(catalog.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").expect("query parses");
    Fixture {
        catalog,
        instance,
        prices,
        query,
    }
}

/// A populated chain-join fixture: `k` binary hops over columns of size
/// `n`, with `tuples` random tuples per relation (E2/E3/E12).
pub fn chain(k: usize, n: i64, tuples: usize, seed: u64) -> Fixture {
    let qs = qbdp_workload::queries::chain_schema(k, n).expect("workload schema");
    let mut rng = StdRng::seed_from_u64(seed);
    let instance = dbgen::populate_random(&qs.catalog, &mut rng, tuples).expect("data generation");
    let prices = qbdp_workload::prices::random(&qs.catalog, &mut rng, 1, 5);
    Fixture {
        catalog: qs.catalog,
        instance,
        prices,
        query: qs.query,
    }
}

/// A populated star-join fixture (E2, Step 3 branching).
pub fn star(k: usize, n: i64, tuples: usize, seed: u64) -> Fixture {
    let qs = qbdp_workload::queries::star_schema(k, n).expect("workload schema");
    let mut rng = StdRng::seed_from_u64(seed);
    let instance = dbgen::populate_random(&qs.catalog, &mut rng, tuples).expect("data generation");
    let prices = qbdp_workload::prices::random(&qs.catalog, &mut rng, 1, 5);
    Fixture {
        catalog: qs.catalog,
        instance,
        prices,
        query: qs.query,
    }
}

/// A populated cycle fixture (E9).
pub fn cycle(k: usize, n: i64, tuples: usize, seed: u64) -> Fixture {
    let qs = qbdp_workload::queries::cycle_schema(k, n).expect("workload schema");
    let mut rng = StdRng::seed_from_u64(seed);
    let instance = dbgen::populate_random(&qs.catalog, &mut rng, tuples).expect("data generation");
    let prices = qbdp_workload::prices::random(&qs.catalog, &mut rng, 1, 5);
    Fixture {
        catalog: qs.catalog,
        instance,
        prices,
        query: qs.query,
    }
}

/// A populated H1 fixture (E3, NP-complete).
pub fn h1(n: i64, tuples: usize, seed: u64) -> Fixture {
    let qs = qbdp_workload::queries::h1_schema(n).expect("workload schema");
    let mut rng = StdRng::seed_from_u64(seed);
    let instance = dbgen::populate_random(&qs.catalog, &mut rng, tuples).expect("data generation");
    let prices = qbdp_workload::prices::random(&qs.catalog, &mut rng, 1, 5);
    Fixture {
        catalog: qs.catalog,
        instance,
        prices,
        query: qs.query,
    }
}

/// A populated H2 fixture (E9 brittleness).
pub fn h2(n: i64, tuples: usize, seed: u64) -> Fixture {
    let qs = qbdp_workload::queries::h2_schema(n).expect("workload schema");
    let mut rng = StdRng::seed_from_u64(seed);
    let instance = dbgen::populate_random(&qs.catalog, &mut rng, tuples).expect("data generation");
    let prices = qbdp_workload::prices::random(&qs.catalog, &mut rng, 1, 5);
    Fixture {
        catalog: qs.catalog,
        instance,
        prices,
        query: qs.query,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_fixture_prices_at_six() {
        let f = figure1();
        assert_eq!(
            f.pricer().price_cq(&f.query).unwrap().price,
            Price::dollars(6)
        );
    }

    #[test]
    fn generated_fixtures_are_priceable() {
        let f = chain(3, 8, 30, 1);
        let quote = f.pricer().price_cq(&f.query).unwrap();
        assert!(quote.price.is_finite());
        let f = star(2, 6, 20, 2);
        assert!(f.pricer().price_cq(&f.query).unwrap().price.is_finite());
    }
}
