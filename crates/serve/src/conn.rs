//! Per-connection state for the event loop.

use crate::http::{Limits, RequestParser};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// When the pending output buffer crosses this, the loop stops reading
/// the connection (leaving bytes in the kernel buffer, i.e. TCP
/// backpressure) until the peer drains responses.
pub const OUT_HIGH_WATER: usize = 256 * 1024;

/// One accepted connection.
pub struct Conn {
    /// The non-blocking stream.
    pub stream: TcpStream,
    /// Incremental request parser holding any half-received bytes.
    pub parser: RequestParser,
    /// Serialized-but-unflushed responses (in request order).
    pub outbuf: Vec<u8>,
    /// Flushed prefix of `outbuf`.
    pub out_pos: usize,
    /// Last moment bytes moved in either direction (idle-timeout clock).
    pub last_activity: Instant,
    /// The peer half-closed (EOF) — close once responses are flushed.
    pub read_closed: bool,
    /// A response demanded close (`Connection: close`, framing error,
    /// or drain) — close once flushed.
    pub close_after_flush: bool,
    /// Whether the poller currently watches this fd for writability
    /// (kept here to avoid redundant `modify` syscalls).
    pub watching_write: bool,
}

impl Conn {
    /// Wrap a freshly-accepted stream.
    pub fn new(stream: TcpStream, limits: Limits, now: Instant) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(limits),
            outbuf: Vec::new(),
            out_pos: 0,
            last_activity: now,
            read_closed: false,
            close_after_flush: false,
            watching_write: false,
        }
    }

    /// Unflushed output bytes.
    pub fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    /// Read everything currently available into the parser. Returns
    /// `Ok(true)` if any bytes arrived.
    pub fn read_available(&mut self, scratch: &mut [u8], now: Instant) -> io::Result<bool> {
        let mut any = false;
        // audit: bounded(reads drain the kernel buffer and stop at WouldBlock/EOF)
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    return Ok(any);
                }
                Ok(n) => {
                    self.parser.feed(&scratch[..n]);
                    self.last_activity = now;
                    any = true;
                    // A hostile peer streaming forever must not starve
                    // the loop: one high-water's worth per tick, then
                    // yield (level-triggered readiness re-arms).
                    if self.parser.buffered() > OUT_HIGH_WATER {
                        return Ok(any);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(any),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Flush as much pending output as the socket accepts. Returns
    /// `Ok(true)` when the buffer fully drained.
    pub fn flush(&mut self, now: Instant) -> io::Result<bool> {
        // audit: bounded(writes consume outbuf and stop at WouldBlock)
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.outbuf.clear();
        self.out_pos = 0;
        Ok(true)
    }
}
