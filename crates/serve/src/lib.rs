//! `qbdp-serve`: the serving layer — a from-scratch, non-blocking
//! TCP/HTTP-1.1 quote server over [`qbdp_market::MarketOps`].
//!
//! The build environment is offline (no tokio, no mio, no libc crate),
//! so the whole stack is local: [`sys`] declares the few readiness and
//! signal syscalls by hand (epoll on Linux with a portable `poll(2)`
//! fallback), [`http`] is an incremental HTTP/1.1 parser with strict
//! framing, and [`server`] is a single-threaded event loop that feeds
//! every tick's completed `/quote` requests into one
//! `Market::quote_batch` call — parallel pricing and the sharded quote
//! cache live in the market, not here.
//!
//! Endpoints:
//!
//! | endpoint | body | response |
//! |---|---|---|
//! | `POST /quote` | datalog rules, one per line | one quote object, or `{"quotes":[...]}` for multi-line bodies |
//! | `POST /purchase` | exactly one datalog rule | `{"transaction_id", "quote", "answer"}` |
//! | `GET /health` | — | 200 healthy / 503 read-only with the store-layer reason |
//! | `GET /metrics` | — | Prometheus text exposition of the qbdp-obs registry |
//!
//! Market errors map to typed statuses (see [`json::status`]); framing
//! errors are 400/413 and close the connection. Graceful shutdown
//! ([`ShutdownFlag`]) drains fully-received requests and flushes before
//! returning, so the caller can sync and snapshot a durable market with
//! nothing acked-but-unanswered in flight.

// Unlike the rest of the workspace this crate cannot `forbid` unsafe
// outright — `sys` declares the epoll/poll/signal syscalls by hand.
// `deny` at the root keeps every other module clean; `sys` opts back in
// with a module-level allow and per-block `// SAFETY:` justifications
// (audit rule R5).
#![deny(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod conn;
pub mod http;
pub mod json;
pub mod server;
pub mod sys;

pub use http::{Limits, Method, Request, Response, ResponseParser};
pub use server::{ServeError, ServeStats, Server, ServerConfig, ShutdownFlag};

// The server holds its market as `&dyn MarketOps`; this line is the
// compile-time object-safety assertion the trait's contract promises.
const _: Option<&dyn qbdp_market::MarketOps> = None;
