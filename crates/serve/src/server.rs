//! The event loop: accept, parse, batch-price, respond.
//!
//! Single-threaded readiness loop over [`crate::sys::Poller`];
//! parallelism comes from the market itself — every tick gathers the
//! complete `/quote` requests across **all** connections and prices
//! them in one [`qbdp_market::Market::quote_batch`] call, so the existing scoped
//! worker pool (and the sharded quote cache in front of it) does the
//! fan-out. Pipelined clients therefore get batching for free: depth-64
//! pipelining means 64 queries per batch without any server-side
//! heuristics.
//!
//! Admission is layered: the poller's connection table is capped at
//! [`ServerConfig::max_conns`] (excess accepts get an immediate 503 +
//! close), and per-request admission rides the market's own
//! `MarketPolicy::max_in_flight` (an over-deep batch surfaces
//! `MarketError::Overloaded`, mapped to 429). Backpressure is
//! byte-level: a connection whose response buffer crosses
//! [`crate::conn::OUT_HIGH_WATER`] stops being read until the peer
//! drains, which level-triggered readiness makes automatic.
//!
//! Graceful shutdown ([`ShutdownFlag`]) stops accepting, prices every
//! request that is already fully buffered (the in-flight drain),
//! flushes each connection's responses under a drain deadline, and
//! returns — the caller then syncs/snapshots the durable market.

use crate::conn::{Conn, OUT_HIGH_WATER};
use crate::http::{self, Limits, Method, Request, Step};
use crate::json;
use crate::sys::{self, Event, Interest, Poller, PollerConfig};
use qbdp_market::{MarketHealth, MarketOps};
use qbdp_obs::flight::{self, Why};
use qbdp_obs::{Ctr, Gauge, Hst, Stopwatch};
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The listener's poller token; connections start at 1.
const LISTENER_TOKEN: u64 = 0;

/// Poller wait quantum: shutdown and idle sweeps run at least this
/// often even on a silent socket set.
const TICK_MS: i32 = 100;

/// Most pipelined requests pulled from one connection per tick; the
/// rest stay buffered for the next tick so one hot pipeliner cannot
/// starve the table.
const MAX_PIPELINE: usize = 1024;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral port).
    pub addr: String,
    /// Connection-table cap; accepts beyond it get 503 + close.
    pub max_conns: usize,
    /// Idle connections are closed after this long without traffic.
    pub idle_timeout: Duration,
    /// How long graceful shutdown keeps flushing responses.
    pub drain_timeout: Duration,
    /// HTTP size caps.
    pub limits: Limits,
    /// Pin the portable `poll(2)` backend (tests).
    pub force_poll: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 1024,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            force_poll: false,
        }
    }
}

/// A cloneable stop request: flip it from any thread (or let a SIGTERM/
/// SIGINT flip the process-global latch when built
/// [`ShutdownFlag::with_signals`]).
#[derive(Clone)]
pub struct ShutdownFlag {
    flag: Arc<AtomicBool>,
    follow_signals: bool,
}

impl Default for ShutdownFlag {
    fn default() -> ShutdownFlag {
        ShutdownFlag::new()
    }
}

impl ShutdownFlag {
    /// A flag only [`ShutdownFlag::request`] can set (tests, embedders).
    pub fn new() -> ShutdownFlag {
        ShutdownFlag {
            flag: Arc::new(AtomicBool::new(false)),
            follow_signals: false,
        }
    }

    /// A flag that also honors SIGINT/SIGTERM (installs the handlers).
    pub fn with_signals() -> io::Result<ShutdownFlag> {
        sys::install_shutdown_signals()?;
        Ok(ShutdownFlag {
            flag: Arc::new(AtomicBool::new(false)),
            follow_signals: true,
        })
    }

    /// Ask the server to drain and stop.
    pub fn request(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has anyone (caller or signal) asked for shutdown?
    pub fn requested(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || (self.follow_signals && sys::signal_pending())
    }
}

/// What one [`Server::run`] served, returned after the drain.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Connections accepted into the table.
    pub conns_accepted: u64,
    /// Accepts refused 503 at the connection cap.
    pub conns_rejected: u64,
    /// Complete HTTP requests handled.
    pub requests: u64,
    /// Individual queries priced via `/quote` (lines, not requests).
    pub quotes: u64,
    /// Completed `/purchase` transactions.
    pub purchases: u64,
    /// Framing errors answered 400/413.
    pub http_errors: u64,
    /// Which readiness backend ran (`"epoll"` / `"poll"`).
    pub backend: &'static str,
}

/// Serving-layer failure (the listener or poller died; per-connection
/// I/O errors just close that connection).
#[derive(Debug)]
pub enum ServeError {
    /// Listener/poller-level I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// One response, computed or deferred to the tick's quote batch.
enum Deferred {
    Done {
        status: u16,
        reason: &'static str,
        ctype: &'static str,
        body: Vec<u8>,
    },
    QuoteRange {
        start: usize,
        count: usize,
    },
}

/// Bookkeeping for one request between parse and response emission.
struct Slot {
    token: u64,
    keep_alive: bool,
    target: String,
    hist: Hst,
    t0: Stopwatch,
    deferred: Deferred,
}

fn done(status: u16, reason: &'static str, body: String) -> Deferred {
    Deferred::Done {
        status,
        reason,
        ctype: "application/json",
        body: body.into_bytes(),
    }
}

fn bad_request(msg: &str) -> Deferred {
    let mut body = String::from("{\"error\":{\"kind\":\"http\",\"message\":");
    json::push_str_lit(&mut body, msg);
    body.push_str("}}");
    done(400, "Bad Request", body)
}

/// The non-blocking HTTP/1.1 quote server.
pub struct Server {
    listener: TcpListener,
    local: SocketAddr,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    cfg: ServerConfig,
    stats: ServeStats,
}

impl Server {
    /// Bind the listener and open the poller. The socket is live (a
    /// client can connect) but nothing is served until [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let mut poller = Poller::new(PollerConfig {
            force_poll: cfg.force_poll,
        })?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::Read)?;
        let backend = poller.backend_name();
        Ok(Server {
            listener,
            local,
            poller,
            conns: HashMap::new(),
            next_token: 1,
            cfg,
            stats: ServeStats {
                backend,
                ..ServeStats::default()
            },
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The live readiness backend (`"epoll"` / `"poll"`).
    pub fn backend(&self) -> &'static str {
        self.stats.backend
    }

    /// Serve until `shutdown` is requested, then drain and return the
    /// run's stats. All pricing goes through `ops` — a `&dyn MarketOps`,
    /// so plain and durable markets share this code path.
    pub fn run(
        &mut self,
        ops: &dyn MarketOps,
        shutdown: &ShutdownFlag,
    ) -> Result<ServeStats, ServeError> {
        let mut events: Vec<Event> = Vec::new();
        let mut scratch = vec![0u8; 16 * 1024];
        let mut last_sweep = Instant::now();
        // audit: bounded(runs until a shutdown request; one iteration per readiness wakeup)
        loop {
            if shutdown.requested() {
                break;
            }
            self.poller.wait(&mut events, TICK_MS)?;
            let now = Instant::now();
            let mut touched: Vec<u64> = Vec::new();
            let mut dead: Vec<u64> = Vec::new();
            // audit: bounded(one pass over this wakeup's readiness events)
            for &ev in events.iter() {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready(now);
                    continue;
                }
                let Some(c) = self.conns.get_mut(&ev.token) else {
                    continue;
                };
                if ev.hangup {
                    c.read_closed = true;
                }
                let mut broken = false;
                if ev.readable && c.pending_out() < OUT_HIGH_WATER {
                    broken |= c.read_available(&mut scratch, now).is_err();
                }
                if ev.writable && !broken {
                    broken |= c.flush(now).is_err();
                }
                if broken {
                    dead.push(ev.token);
                } else {
                    touched.push(ev.token);
                }
            }
            // audit: bounded(one pass over this tick's broken connections)
            for tok in dead {
                self.close_conn(tok);
            }

            let pending = self.harvest(&touched);
            let with_output = self.handle_requests(ops, pending);
            self.settle(&touched, &with_output, now);

            if now.duration_since(last_sweep) >= Duration::from_secs(1) {
                last_sweep = now;
                self.sweep_idle(now);
            }
        }
        self.drain(ops)?;
        Ok(self.stats.clone())
    }

    /// Accept everything queued on the listener.
    fn accept_ready(&mut self, now: Instant) {
        // audit: bounded(accepts drain the listen backlog and stop at WouldBlock)
        loop {
            match self.listener.accept() {
                Ok((mut s, _peer)) => {
                    if self.conns.len() >= self.cfg.max_conns {
                        self.stats.conns_rejected += 1;
                        qbdp_obs::record(Ctr::ServeConnsRejected, 1);
                        let mut buf = Vec::new();
                        http::write_response(
                            &mut buf,
                            503,
                            "Service Unavailable",
                            "application/json",
                            b"{\"error\":{\"kind\":\"capacity\",\"message\":\"connection limit reached\"}}",
                            false,
                        );
                        // Best-effort courtesy notice; the close is the
                        // real backpressure.
                        // audit: allow(R8: 503 notice to a rejected conn — retrying would hold the accept loop hostage)
                        let _ = s.write(&buf);
                        continue;
                    }
                    if s.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = s.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(s.as_raw_fd(), token, Interest::Read)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(s, self.cfg.limits, now));
                    self.stats.conns_accepted += 1;
                    qbdp_obs::record(Ctr::ServeConnsAccepted, 1);
                    qbdp_obs::record_gauge(Gauge::ServeOpenConns, self.conns.len() as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // ECONNABORTED and friends: the connection died in the
                // backlog; keep accepting the rest.
                Err(_) => break,
            }
        }
    }

    /// Pull complete requests from the touched connections, answering
    /// framing errors inline.
    fn harvest(&mut self, touched: &[u64]) -> Vec<(u64, Box<Request>)> {
        let mut pending = Vec::new();
        // audit: bounded(one pass over this tick's touched connections)
        for &tok in touched {
            let Some(c) = self.conns.get_mut(&tok) else {
                continue;
            };
            // audit: bounded(at most MAX_PIPELINE requests pulled per connection per tick)
            for _ in 0..MAX_PIPELINE {
                match c.parser.next_request() {
                    Step::NeedMore => break,
                    Step::Ready(r) => pending.push((tok, r)),
                    Step::Fail(e) => {
                        self.stats.http_errors += 1;
                        qbdp_obs::record(Ctr::ServeHttpErrors, 1);
                        let reason = match e.status {
                            413 => "Payload Too Large",
                            _ => "Bad Request",
                        };
                        let mut body = String::from("{\"error\":{\"kind\":\"http\",\"message\":");
                        json::push_str_lit(&mut body, e.reason);
                        body.push_str("}}");
                        http::write_response(
                            &mut c.outbuf,
                            e.status,
                            reason,
                            "application/json",
                            body.as_bytes(),
                            false,
                        );
                        c.close_after_flush = true;
                        break;
                    }
                }
            }
        }
        pending
    }

    /// Route and answer a tick's worth of requests; all `/quote` lines
    /// across all connections are priced in one `quote_batch` call.
    /// Returns the tokens that received output.
    fn handle_requests(
        &mut self,
        ops: &dyn MarketOps,
        pending: Vec<(u64, Box<Request>)>,
    ) -> Vec<u64> {
        if pending.is_empty() {
            return Vec::new();
        }
        let mut lines: Vec<String> = Vec::new();
        let mut slots: Vec<Slot> = Vec::new();
        // audit: bounded(one pass over this tick's parsed requests)
        for (token, req) in pending {
            self.stats.requests += 1;
            qbdp_obs::record(Ctr::ServeRequests, 1);
            let t0 = Stopwatch::start();
            let path = req
                .target
                .split_once('?')
                .map_or(req.target.as_str(), |(p, _)| p)
                .to_string();
            let mut hist = Hst::ServeAdminLatencyUs;
            let deferred = match path.as_str() {
                "/quote" if req.method == Method::Post => {
                    hist = Hst::ServeQuoteLatencyUs;
                    match body_lines(&req.body) {
                        Err(msg) => bad_request(msg),
                        Ok(ls) if ls.is_empty() => {
                            bad_request("empty quote body: send one datalog rule per line")
                        }
                        Ok(ls) => {
                            let start = lines.len();
                            let count = ls.len();
                            lines.extend(ls);
                            Deferred::QuoteRange { start, count }
                        }
                    }
                }
                "/purchase" if req.method == Method::Post => {
                    hist = Hst::ServePurchaseLatencyUs;
                    match single_line(&req.body) {
                        Err(msg) => bad_request(msg),
                        Ok(q) => match ops.purchase_str(&q) {
                            Ok(p) => {
                                self.stats.purchases += 1;
                                done(200, "OK", json::purchase(&p))
                            }
                            Err(e) => {
                                let (status, reason) = json::status(&e);
                                done(status, reason, json::error(&e))
                            }
                        },
                    }
                }
                "/metrics" if req.method == Method::Get => Deferred::Done {
                    status: 200,
                    reason: "OK",
                    ctype: "text/plain; version=0.0.4",
                    body: ops.metrics_snapshot().into_bytes(),
                },
                "/health" if req.method == Method::Get => {
                    let h = ops.health();
                    let (status, reason) = match h {
                        MarketHealth::Healthy => (200, "OK"),
                        MarketHealth::ReadOnly { .. } => (503, "Service Unavailable"),
                    };
                    done(status, reason, json::health(&h))
                }
                "/quote" | "/purchase" | "/metrics" | "/health" => done(
                    405,
                    "Method Not Allowed",
                    "{\"error\":{\"kind\":\"http\",\"message\":\"method not allowed\"}}"
                        .to_string(),
                ),
                _ => done(
                    404,
                    "Not Found",
                    "{\"error\":{\"kind\":\"http\",\"message\":\"no such endpoint\"}}".to_string(),
                ),
            };
            slots.push(Slot {
                token,
                keep_alive: req.keep_alive,
                target: path,
                hist,
                t0,
                deferred,
            });
        }

        // One batch prices every quote line this tick gathered, across
        // all connections: the market's worker pool and sharded cache
        // do the actual fan-out.
        let results = if lines.is_empty() {
            Vec::new()
        } else {
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            ops.base().quote_batch(&refs)
        };

        let mut with_output = Vec::with_capacity(slots.len());
        // audit: bounded(one pass over this tick's request slots)
        for slot in slots {
            let (status, reason, ctype, body) = match slot.deferred {
                Deferred::Done {
                    status,
                    reason,
                    ctype,
                    body,
                } => (status, reason, ctype, body),
                Deferred::QuoteRange { start, count } => {
                    self.stats.quotes += count as u64;
                    let span = &results[start..start + count];
                    if count == 1 {
                        match &span[0] {
                            Ok(q) => (200, "OK", "application/json", json::quote(q).into_bytes()),
                            Err(e) => {
                                let (status, reason) = json::status(e);
                                (
                                    status,
                                    reason,
                                    "application/json",
                                    json::error(e).into_bytes(),
                                )
                            }
                        }
                    } else {
                        let mut body = String::from("{\"quotes\":[");
                        // audit: bounded(one pass over this request's quote slots)
                        for (i, r) in span.iter().enumerate() {
                            if i > 0 {
                                body.push(',');
                            }
                            match r {
                                Ok(q) => body.push_str(&json::quote(q)),
                                Err(e) => body.push_str(&json::error(e)),
                            }
                        }
                        body.push_str("]}");
                        (200, "OK", "application/json", body.into_bytes())
                    }
                }
            };
            let Some(c) = self.conns.get_mut(&slot.token) else {
                continue;
            };
            http::write_response(&mut c.outbuf, status, reason, ctype, &body, slot.keep_alive);
            if !slot.keep_alive {
                c.close_after_flush = true;
            }
            with_output.push(slot.token);
            if let Some(us) = slot.t0.elapsed_us() {
                qbdp_obs::record_hist(slot.hist, us);
                if us >= flight::slow_threshold_us() {
                    flight::capture(
                        Why::Slow,
                        &slot.target,
                        us,
                        format!("http {} -> {status}", slot.target),
                        Vec::new(),
                    );
                }
            }
        }
        with_output
    }

    /// Flush opportunistically, retire finished connections, and keep
    /// each survivor's write-interest in sync with its buffer.
    fn settle(&mut self, touched: &[u64], with_output: &[u64], now: Instant) {
        let mut seen: Vec<u64> = Vec::new();
        let mut to_close: Vec<u64> = Vec::new();
        // audit: bounded(one pass over this tick's touched + responded connections)
        for &tok in touched.iter().chain(with_output.iter()) {
            if seen.contains(&tok) {
                continue;
            }
            seen.push(tok);
            let Some(c) = self.conns.get_mut(&tok) else {
                continue;
            };
            let drained = match c.flush(now) {
                Ok(d) => d,
                Err(_) => {
                    to_close.push(tok);
                    continue;
                }
            };
            if drained && (c.close_after_flush || c.read_closed) {
                to_close.push(tok);
                continue;
            }
            let want_write = !drained;
            if want_write != c.watching_write {
                c.watching_write = want_write;
                let interest = if want_write {
                    Interest::ReadWrite
                } else {
                    Interest::Read
                };
                if self
                    .poller
                    .modify(c.stream.as_raw_fd(), tok, interest)
                    .is_err()
                {
                    to_close.push(tok);
                }
            }
        }
        // audit: bounded(one pass over this tick's finished connections)
        for tok in to_close {
            self.close_conn(tok);
        }
    }

    /// Close connections idle past the configured timeout.
    fn sweep_idle(&mut self, now: Instant) {
        let timeout = self.cfg.idle_timeout;
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| now.duration_since(c.last_activity) > timeout)
            .map(|(&tok, _)| tok)
            .collect();
        // audit: bounded(one pass over the idle subset of the connection table)
        for tok in stale {
            self.close_conn(tok);
        }
    }

    /// Deregister and drop one connection.
    fn close_conn(&mut self, token: u64) {
        if let Some(c) = self.conns.remove(&token) {
            let _ = self.poller.deregister(c.stream.as_raw_fd());
            qbdp_obs::record_gauge(Gauge::ServeOpenConns, self.conns.len() as u64);
        }
    }

    /// Graceful shutdown: stop accepting, price every fully-buffered
    /// request, flush responses under the drain deadline, close.
    fn drain(&mut self, ops: &dyn MarketOps) -> Result<(), ServeError> {
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        // Price what's already complete in the parse buffers: these are
        // the in-flight requests the shutdown contract promises to
        // answer.
        let all: Vec<u64> = self.conns.keys().copied().collect();
        let pending = self.harvest(&all);
        let _ = self.handle_requests(ops, pending);
        // Everything closes once flushed; half-received requests get a
        // clean close (the client resubmits elsewhere).
        // audit: bounded(one pass over the connection table)
        for c in self.conns.values_mut() {
            c.close_after_flush = true;
        }
        let deadline = Instant::now() + self.cfg.drain_timeout;
        let mut events: Vec<Event> = Vec::new();
        // audit: bounded(flush rounds stop at the drain deadline or an empty table)
        while !self.conns.is_empty() && Instant::now() < deadline {
            let now = Instant::now();
            let mut to_close: Vec<u64> = Vec::new();
            // audit: bounded(one pass over the remaining connection table)
            for (&tok, c) in self.conns.iter_mut() {
                match c.flush(now) {
                    Ok(true) => to_close.push(tok),
                    Ok(false) => {
                        if !c.watching_write {
                            c.watching_write = true;
                            let _ =
                                self.poller
                                    .modify(c.stream.as_raw_fd(), tok, Interest::ReadWrite);
                        }
                    }
                    Err(_) => to_close.push(tok),
                }
            }
            // audit: bounded(one pass over this round's finished connections)
            for tok in to_close {
                self.close_conn(tok);
            }
            if self.conns.is_empty() {
                break;
            }
            self.poller.wait(&mut events, 50)?;
        }
        let leftover: Vec<u64> = self.conns.keys().copied().collect();
        // audit: bounded(one pass over connections that outlived the drain deadline)
        for tok in leftover {
            self.close_conn(tok);
        }
        qbdp_obs::record_gauge(Gauge::ServeOpenConns, 0);
        Ok(())
    }
}

/// Split a `/quote` body into datalog lines (one query per line).
fn body_lines(body: &[u8]) -> Result<Vec<String>, &'static str> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8")?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// A `/purchase` body: exactly one non-empty line.
fn single_line(body: &[u8]) -> Result<String, &'static str> {
    let mut lines = body_lines(body)?;
    match lines.len() {
        0 => Err("empty purchase body: send one datalog rule"),
        1 => Ok(lines.swap_remove(0)),
        _ => Err("one query per purchase; batch quoting is POST /quote"),
    }
}
