//! Hand-rolled JSON encoding for the wire responses.
//!
//! No serde in the tree (vendored-shim discipline), and the response
//! shapes are small and fixed, so the encoder is a page of `push_str`
//! calls. Prices travel twice: as raw cents (`*_cents`, the field a
//! programmatic buyer does arithmetic on, `null` when the price is the
//! ∞ sentinel) and as the rendered display string. Degraded quotes
//! carry the sound `[lower, upper]` interval from
//! [`qbdp_core::QuoteQuality::UpperBound`] so a buyer can see exactly
//! how loose a budget-limited price is.

use qbdp_core::{Price, QuoteQuality};
use qbdp_market::{MarketError, MarketHealth, MarketQuote, Purchase};

/// Append `s` as a JSON string literal (with escaping).
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    // audit: bounded(one pass over the string being encoded)
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a price as `"name_cents":N,"name":"$N.NN"` (cents `null`
/// when infinite).
fn push_price(out: &mut String, name: &str, p: Price) {
    out.push('"');
    out.push_str(name);
    out.push_str("_cents\":");
    if p.is_finite() {
        out.push_str(&p.as_cents().to_string());
    } else {
        out.push_str("null");
    }
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    push_str_lit(out, &p.to_string());
}

/// Encode one quote.
pub fn quote(q: &MarketQuote) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"query\":");
    push_str_lit(&mut out, &q.query);
    out.push(',');
    push_price(&mut out, "price", q.price);
    out.push_str(",\"quality\":");
    match q.quality {
        QuoteQuality::Exact => out.push_str("\"exact\""),
        QuoteQuality::UpperBound => {
            out.push_str("\"upper_bound\",\"interval_cents\":[");
            if q.lower_bound.is_finite() {
                out.push_str(&q.lower_bound.as_cents().to_string());
            } else {
                out.push_str("null");
            }
            out.push(',');
            if q.price.is_finite() {
                out.push_str(&q.price.as_cents().to_string());
            } else {
                out.push_str("null");
            }
            out.push(']');
        }
    }
    out.push_str(",\"method\":");
    push_str_lit(&mut out, &format!("{:?}", q.method));
    out.push_str(",\"class\":");
    push_str_lit(&mut out, &format!("{:?}", q.class));
    out.push_str(",\"receipt\":[");
    // audit: bounded(one pass over the quote's receipt lines)
    for (i, line) in q.receipt.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_lit(&mut out, line);
    }
    out.push_str("]}");
    out
}

/// Encode one completed purchase.
pub fn purchase(p: &Purchase) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"transaction_id\":");
    out.push_str(&p.transaction_id.to_string());
    out.push_str(",\"quote\":");
    out.push_str(&quote(&p.quote));
    out.push_str(",\"answer\":[");
    // audit: bounded(one pass over the purchased answer's tuples)
    for (i, t) in p.answer.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_lit(&mut out, &t.to_string());
    }
    out.push_str("]}");
    out
}

/// Encode one market error.
pub fn error(e: &MarketError) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"error\":{\"kind\":\"");
    out.push_str(kind(e));
    out.push_str("\",\"message\":");
    push_str_lit(&mut out, &e.to_string());
    out.push_str("}}");
    out
}

/// Encode the health probe body.
pub fn health(h: &MarketHealth) -> String {
    match h {
        MarketHealth::Healthy => "{\"status\":\"healthy\"}".to_string(),
        MarketHealth::ReadOnly { reason } => {
            let mut out = String::from("{\"status\":\"read_only\",\"reason\":");
            push_str_lit(&mut out, reason);
            out.push('}');
            out
        }
    }
}

/// The stable machine-readable error kind.
pub fn kind(e: &MarketError) -> &'static str {
    match e {
        MarketError::InconsistentPrices(_) => "inconsistent_prices",
        MarketError::Pricing(_) => "pricing",
        MarketError::Query(_) => "query",
        MarketError::NotForSale => "not_for_sale",
        MarketError::Update(_) => "update",
        MarketError::DeadlineExceeded => "deadline_exceeded",
        MarketError::Overloaded => "overloaded",
        MarketError::Internal(_) => "internal",
        MarketError::Store(_) => "store",
        MarketError::RevenueOverflow => "revenue_overflow",
        MarketError::Contended => "contended",
        MarketError::Degraded(_) => "degraded",
    }
}

/// The typed error→HTTP mapping (documented in DESIGN §4.7):
///
/// | errors | status |
/// |---|---|
/// | `Query`, `Update` | 400 (the buyer's request is wrong) |
/// | `NotForSale` | 404 (no finite price exists) |
/// | `InconsistentPrices`, `Contended` | 409 (state conflict; retryable for `Contended`) |
/// | `Overloaded` | 429 (admission control; retry with backoff) |
/// | `DeadlineExceeded`, `Degraded` | 503 (the service, not the request) |
/// | `Pricing`, `Internal`, `Store`, `RevenueOverflow` | 500 |
pub fn status(e: &MarketError) -> (u16, &'static str) {
    match e {
        MarketError::Query(_) | MarketError::Update(_) => (400, "Bad Request"),
        MarketError::NotForSale => (404, "Not Found"),
        MarketError::InconsistentPrices(_) | MarketError::Contended => (409, "Conflict"),
        MarketError::Overloaded => (429, "Too Many Requests"),
        MarketError::DeadlineExceeded | MarketError::Degraded(_) => (503, "Service Unavailable"),
        MarketError::Pricing(_)
        | MarketError::Internal(_)
        | MarketError::Store(_)
        | MarketError::RevenueOverflow => (500, "Internal Server Error"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        push_str_lit(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn overloaded_maps_to_429() {
        assert_eq!(status(&MarketError::Overloaded).0, 429);
        assert_eq!(kind(&MarketError::Overloaded), "overloaded");
    }

    #[test]
    fn degraded_maps_to_503() {
        assert_eq!(status(&MarketError::Degraded("disk full".into())).0, 503);
    }
}
