//! Raw readiness and signal syscalls: the only `unsafe` in the
//! workspace.
//!
//! The build environment has no crates.io access, so there is no `libc`
//! crate and no `mio`/`tokio` — the handful of symbols the event loop
//! needs are declared by hand. `std` already links the platform libc,
//! so these `extern "C"` declarations resolve against the same library
//! every `TcpStream` call goes through; all socket I/O itself stays on
//! `std` (non-blocking streams obtained with `set_nonblocking`), and
//! only *readiness* (epoll/poll) and *shutdown signals* cross the FFI
//! boundary.
//!
//! Two backends implement [`Poller`]:
//!
//! * **epoll** (Linux): one fd-registered interest set, O(ready)
//!   wakeups. Level-triggered, which keeps the connection state machine
//!   simple — an unread byte or an unflushed buffer re-arms itself.
//! * **poll(2)** (portable fallback): the same interface over a dense
//!   `pollfd` array, O(fds) per wait. Used on non-Linux targets and,
//!   via [`PollerConfig::force_poll`], in tests so both backends run in
//!   CI on the same box.
//!
//! Signal handling is deliberately minimal: `signal(2)` installs a
//! handler that sets a process-global `AtomicBool` ([`signal_pending`]);
//! the event loop polls it between wakeups. `epoll_wait`/`poll` are
//! never restarted after a signal handler runs (signal(7)), so an idle
//! server notices SIGTERM at the next EINTR, not the next request.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};

// The exact prototypes from the Linux/POSIX ABI. `nfds_t` is
// `unsigned long` on every libc std links against here.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;

const POLLIN: i16 = 0x1;
const POLLOUT: i16 = 0x4;
const POLLERR: i16 = 0x8;
const POLLHUP: i16 = 0x10;
const POLLNVAL: i16 = 0x20;

/// SIGINT (ctrl-C at the CLI).
pub const SIGINT: i32 = 2;
/// SIGTERM (the orchestrator's graceful-stop signal).
pub const SIGTERM: i32 = 15;

const SIG_ERR: usize = usize::MAX;

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI packs it
/// there so 32- and 64-bit layouts agree); naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct pollfd`, identical on every POSIX libc.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

/// What the loop wants to hear about one fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interest {
    /// Readable (and errors/hangups, always reported).
    Read,
    /// Readable and writable.
    ReadWrite,
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Bytes (or an accepted connection) are waiting.
    pub readable: bool,
    /// The socket can take more bytes.
    pub writable: bool,
    /// Error or hangup: the connection should be torn down after a
    /// final read drains whatever arrived before the close.
    pub hangup: bool,
}

/// Backend selection for [`Poller::new`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PollerConfig {
    /// Use the portable `poll(2)` backend even where epoll exists, so
    /// tests exercise the fallback on Linux CI.
    pub force_poll: bool,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Poll(PollSet),
}

/// A readiness multiplexer: epoll where available, `poll(2)` otherwise.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Open a poller. `cfg.force_poll` pins the fallback backend.
    pub fn new(cfg: PollerConfig) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if !cfg.force_poll {
                return Ok(Poller {
                    backend: Backend::Epoll(Epoll::new()?),
                });
            }
        }
        let _ = cfg;
        Ok(Poller {
            backend: Backend::Poll(PollSet::new()),
        })
    }

    /// Which backend is live (for logs and tests).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    /// Start watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(EPOLL_CTL_ADD, fd, token, interest),
            Backend::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(EPOLL_CTL_MOD, fd, token, interest),
            Backend::Poll(p) => p.modify(fd, interest),
        }
    }

    /// Stop watching `fd`. Must run before the fd is closed (the poll
    /// backend would otherwise report it POLLNVAL forever).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(EPOLL_CTL_DEL, fd, 0, Interest::Read),
            Backend::Poll(p) => p.deregister(fd),
        }
    }

    /// Block up to `timeout_ms` for readiness; fill `out` (cleared
    /// first). EINTR returns `Ok` with no events so the caller's
    /// shutdown check runs immediately.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(out, timeout_ms),
            Backend::Poll(p) => p.wait(out, timeout_ms),
        }
    }
}

#[cfg(target_os = "linux")]
struct Epoll {
    epfd: RawFd,
    buf: Vec<EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the documented error signal and is converted to io::Error.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            epfd,
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: match interest {
                Interest::Read => EPOLLIN,
                Interest::ReadWrite => EPOLLIN | EPOLLOUT,
            },
            data: token,
        };
        // SAFETY: `ev` is live for the call; the kernel copies it and
        // keeps no reference (and ignores it for EPOLL_CTL_DEL).
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        let cap = self.buf.len() as i32;
        // SAFETY: `buf` is a live allocation of exactly `cap` events;
        // the kernel writes at most `cap` entries and returns how many.
        let n = unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), cap, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        // audit: bounded(n <= buf.len(), the kernel-reported ready count)
        for ev in self.buf.iter().take(n as usize) {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: epfd was returned by epoll_create1 and is closed
        // exactly once, here.
        unsafe {
            close(self.epfd);
        }
    }
}

/// The portable backend: a dense `pollfd` array plus a parallel token
/// array, linear-scanned on mutation (the set is bounded by the
/// server's `max_conns`, so O(n) registration is irrelevant next to the
/// O(n) `poll` call itself).
struct PollSet {
    fds: Vec<PollFd>,
    tokens: Vec<u64>,
}

impl PollSet {
    fn new() -> PollSet {
        PollSet {
            fds: Vec::new(),
            tokens: Vec::new(),
        }
    }

    fn events_bits(interest: Interest) -> i16 {
        match interest {
            Interest::Read => POLLIN,
            Interest::ReadWrite => POLLIN | POLLOUT,
        }
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.fds.push(PollFd {
            fd,
            events: Self::events_bits(interest),
            revents: 0,
        });
        self.tokens.push(token);
        Ok(())
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }

    fn modify(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        match self.position(fd) {
            Some(i) => {
                self.fds[i].events = Self::events_bits(interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.position(fd) {
            Some(i) => {
                self.fds.swap_remove(i);
                self.tokens.swap_remove(i);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        if self.fds.is_empty() {
            // Nothing registered: emulate the timeout so the caller's
            // shutdown poll still runs on the same cadence.
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(0) as u64));
            return Ok(());
        }
        // SAFETY: `fds` is a live array of exactly `len` pollfds; the
        // kernel only flips each entry's `revents` field in place.
        let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        // audit: bounded(one pass over the registered fd set, <= max_conns + 1)
        for (p, &token) in self.fds.iter().zip(self.tokens.iter()) {
            if p.revents == 0 {
                continue;
            }
            out.push(Event {
                token,
                readable: p.revents & POLLIN != 0,
                writable: p.revents & POLLOUT != 0,
                hangup: p.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

/// Set by the signal handler; polled by the event loop.
static SHUTDOWN_SIGNAL: AtomicBool = AtomicBool::new(false);

/// The installed handler. Only async-signal-safe work happens here: one
/// relaxed store.
extern "C" fn on_shutdown_signal(_sig: i32) {
    SHUTDOWN_SIGNAL.store(true, Ordering::Relaxed);
}

/// Install SIGINT + SIGTERM handlers that set [`signal_pending`].
/// Idempotent; process-wide.
pub fn install_shutdown_signals() -> io::Result<()> {
    // audit: bounded(exactly the two shutdown signals)
    for sig in [SIGINT, SIGTERM] {
        let handler = on_shutdown_signal as extern "C" fn(i32) as *const () as usize;
        // SAFETY: `handler` is a valid extern "C" fn of the exact
        // handler ABI, and its body is async-signal-safe (one store).
        let prev = unsafe { signal(sig, handler) };
        if prev == SIG_ERR {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Has a shutdown signal arrived since the last [`clear_signal`]?
pub fn signal_pending() -> bool {
    SHUTDOWN_SIGNAL.load(Ordering::Relaxed)
}

/// Reset the signal latch (harnesses that start several servers in one
/// process).
pub fn clear_signal() {
    SHUTDOWN_SIGNAL.store(false, Ordering::Relaxed);
}

/// Deliver `sig` to this process (load harnesses simulating an
/// orchestrator's SIGTERM).
pub fn raise_signal(sig: i32) -> io::Result<()> {
    // SAFETY: raise takes a plain integer and delivers the signal to
    // this thread; our handler (installed above) is async-signal-safe.
    let rc = unsafe { raise(sig) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn roundtrip(force_poll: bool) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        listener.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new(PollerConfig { force_poll }).expect("poller");
        poller
            .register(listener.as_raw_fd(), 1, Interest::Read)
            .expect("register");

        let mut client = TcpStream::connect(addr).expect("connect");
        let mut events = Vec::new();
        let mut accepted = None;
        // audit: bounded(at most 50 poll rounds before the test fails)
        for _ in 0..50 {
            poller.wait(&mut events, 100).expect("wait");
            if events.iter().any(|e| e.token == 1 && e.readable) {
                let (s, _) = listener.accept().expect("accept");
                s.set_nonblocking(true).expect("nonblocking");
                accepted = Some(s);
                break;
            }
        }
        let server_side = accepted.expect("listener never became readable");
        poller
            .register(server_side.as_raw_fd(), 2, Interest::Read)
            .expect("register conn");

        client.write_all(b"ping").expect("write");
        let mut got = Vec::new();
        // audit: bounded(at most 50 poll rounds before the test fails)
        for _ in 0..50 {
            poller.wait(&mut events, 100).expect("wait");
            if events.iter().any(|e| e.token == 2 && e.readable) {
                let mut buf = [0u8; 16];
                let n = (&server_side).read(&mut buf).expect("read");
                got.extend_from_slice(&buf[..n]);
                break;
            }
        }
        assert_eq!(got, b"ping");
        poller.deregister(server_side.as_raw_fd()).expect("dereg");
        poller.deregister(listener.as_raw_fd()).expect("dereg");
    }

    #[test]
    fn default_backend_reports_readiness() {
        roundtrip(false);
    }

    #[test]
    fn poll_fallback_reports_readiness() {
        roundtrip(true);
    }

    #[test]
    fn signal_latch_sets_and_clears() {
        install_shutdown_signals().expect("install");
        clear_signal();
        assert!(!signal_pending());
        raise_signal(SIGTERM).expect("raise");
        assert!(signal_pending());
        clear_signal();
        assert!(!signal_pending());
    }
}
