//! An incremental, allocation-light HTTP/1.1 message layer.
//!
//! The server's [`RequestParser`] consumes bytes as they arrive —
//! split across arbitrarily many reads, or many pipelined requests in
//! one read — and emits complete [`Request`]s in arrival order. The
//! grammar is deliberately the small, strict subset a quote API needs:
//!
//! * request line `METHOD SP target SP HTTP/1.0|1.1`,
//! * `Content-Length`-framed bodies only (`Transfer-Encoding` is
//!   rejected with 400 — a pricing API has no use for chunked uploads,
//!   and smuggling ambiguity is not worth supporting them),
//! * conflicting or malformed `Content-Length` values are a hard 400
//!   (the classic request-smuggling vector),
//! * head and body sizes are capped ([`Limits`]) with 413 beyond.
//!
//! A parse error is terminal for the connection: the server writes the
//! mapped status and closes, because resynchronizing a byte stream
//! after a framing error is guesswork. Everything here is panic-free
//! (audit R2 runs at full Library strength over this crate) and every
//! loop is structurally bounded (audit R4).

/// Size caps for one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers (including the blank
    /// line). 413 beyond.
    pub max_head: usize,
    /// Maximum declared `Content-Length`. 413 beyond.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head: 8 * 1024,
            max_body: 64 * 1024,
        }
    }
}

/// Request method, collapsed to what the router distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// Anything else (routed to 405).
    Other,
}

/// One complete request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method token.
    pub method: Method,
    /// Raw request target (path, with any query string intact).
    pub target: String,
    /// Whether the connection survives this exchange
    /// (HTTP/1.1 default-on, `Connection: close` / HTTP/1.0 off).
    pub keep_alive: bool,
    /// The `Content-Length`-framed body (empty when none was sent).
    pub body: Vec<u8>,
}

/// A terminal framing error, with the status the server should write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// 400 or 413.
    pub status: u16,
    /// Short human-readable cause, safe to echo in the response body.
    pub reason: &'static str,
}

impl HttpError {
    const fn bad(reason: &'static str) -> HttpError {
        HttpError {
            status: 400,
            reason,
        }
    }

    const fn too_large(reason: &'static str) -> HttpError {
        HttpError {
            status: 413,
            reason,
        }
    }
}

/// One [`RequestParser::next_request`] step.
#[derive(Debug)]
pub enum Step {
    /// No complete message buffered; feed more bytes.
    NeedMore,
    /// One complete request, consumed from the buffer.
    Ready(Box<Request>),
    /// Terminal framing error; the connection must close.
    Fail(HttpError),
}

enum State {
    /// Scanning for the `\r\n\r\n` head terminator.
    Head,
    /// Head parsed; waiting for `need` body bytes.
    Body { need: usize, req: Box<Request> },
    /// A framing error already reported; the stream is unusable.
    Broken(HttpError),
}

/// Incremental request parser: `feed` bytes, then drain with
/// `next_request` until [`Step::NeedMore`].
pub struct RequestParser {
    buf: Vec<u8>,
    /// Resume offset for the head-terminator scan, so a header split
    /// across N reads costs one pass total, not N.
    scanned: usize,
    state: State,
    limits: Limits,
}

impl RequestParser {
    /// A fresh parser with the given caps.
    pub fn new(limits: Limits) -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            scanned: 0,
            state: State::Head,
            limits,
        }
    }

    /// Append newly-read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a message.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pull the next complete request out of the buffer.
    pub fn next_request(&mut self) -> Step {
        match &mut self.state {
            State::Broken(e) => Step::Fail(*e),
            State::Head => self.scan_head(),
            State::Body { need, .. } => {
                let need = *need;
                if self.buf.len() < need {
                    return Step::NeedMore;
                }
                let rest = self.buf.split_off(need);
                let body = std::mem::replace(&mut self.buf, rest);
                self.scanned = 0;
                let prev = std::mem::replace(&mut self.state, State::Head);
                match prev {
                    State::Body { mut req, .. } => {
                        req.body = body;
                        Step::Ready(req)
                    }
                    // The outer match proved we hold a Body.
                    _ => Step::Fail(HttpError::bad("parser state desync")),
                }
            }
        }
    }

    fn fail(&mut self, e: HttpError) -> Step {
        self.state = State::Broken(e);
        Step::Fail(e)
    }

    fn scan_head(&mut self) -> Step {
        let terminator = find_terminator(&self.buf, self.scanned);
        let Some(head_end) = terminator else {
            if self.buf.len() > self.limits.max_head {
                return self.fail(HttpError::too_large("request head exceeds max_head"));
            }
            self.scanned = self.buf.len().saturating_sub(3);
            return Step::NeedMore;
        };
        if head_end + 4 > self.limits.max_head {
            return self.fail(HttpError::too_large("request head exceeds max_head"));
        }
        let parsed = parse_head(&self.buf[..head_end], self.limits);
        let rest = self.buf.split_off(head_end + 4);
        self.buf = rest;
        self.scanned = 0;
        match parsed {
            Err(e) => self.fail(e),
            Ok((req, 0)) => Step::Ready(req),
            Ok((req, need)) => {
                self.state = State::Body { need, req };
                self.next_request()
            }
        }
    }
}

/// Find `\r\n\r\n` starting the scan at `from` (a resume offset that is
/// always ≥ 3 bytes before any unscanned terminator).
fn find_terminator(buf: &[u8], from: usize) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    // audit: bounded(one pass over the buffered head, capped by Limits::max_head)
    for i in from..=buf.len() - 4 {
        if &buf[i..i + 4] == b"\r\n\r\n" {
            return Some(i);
        }
    }
    None
}

/// Parse a complete head (`buf` excludes the terminator). Returns the
/// request shell plus the declared body length.
fn parse_head(head: &[u8], limits: Limits) -> Result<(Box<Request>, usize), HttpError> {
    let text = std::str::from_utf8(head).map_err(|_| HttpError::bad("head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method_tok = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method_tok.is_empty() || target.is_empty() || parts.next().is_some() {
        return Err(HttpError::bad("malformed request line"));
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::bad("unsupported HTTP version")),
    };
    if !target.starts_with('/') {
        return Err(HttpError::bad("request target must be origin-form"));
    }
    let method = match method_tok {
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => Method::Other,
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = keep_alive_default;
    // audit: bounded(one pass over the head's lines, capped by Limits::max_head)
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad("header line without a colon"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::bad("malformed header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::bad("non-numeric Content-Length"))?;
            if let Some(prev) = content_length {
                if prev != n {
                    // Two different declared lengths is the classic
                    // smuggling ambiguity; refuse outright.
                    return Err(HttpError::bad("conflicting Content-Length headers"));
                }
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::bad("Transfer-Encoding is not supported"));
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    let need = content_length.unwrap_or(0);
    if need > limits.max_body {
        return Err(HttpError::too_large("declared body exceeds max_body"));
    }
    Ok((
        Box::new(Request {
            method,
            target: target.to_string(),
            keep_alive,
            body: Vec::new(),
        }),
        need,
    ))
}

/// Serialize one response into `out` (appended, for pipelining).
pub fn write_response(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) {
    use std::io::Write as _;
    let conn = if keep_alive { "keep-alive" } else { "close" };
    // Writing into a Vec cannot fail; the io::Result is structural.
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {conn}\r\n\r\n",
        body.len()
    );
    out.extend_from_slice(body);
}

/// One parsed response (the client half, used by tests and the load
/// harness — the server never parses responses).
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
    /// Whether the server intends to keep the connection open.
    pub keep_alive: bool,
}

/// Incremental response parser, mirror of [`RequestParser`]. Assumes
/// the strict framing [`write_response`] produces (Content-Length
/// always present).
pub struct ResponseParser {
    buf: Vec<u8>,
    scanned: usize,
    state: RespState,
}

enum RespState {
    Head,
    Body { need: usize, resp: Response },
}

impl Default for ResponseParser {
    fn default() -> ResponseParser {
        ResponseParser::new()
    }
}

impl ResponseParser {
    /// A fresh response parser.
    pub fn new() -> ResponseParser {
        ResponseParser {
            buf: Vec::new(),
            scanned: 0,
            state: RespState::Head,
        }
    }

    /// Append newly-read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pull the next complete response; `None` means feed more bytes.
    /// A malformed response also returns `None` forever — the callers
    /// are harnesses talking to this crate's own server, where
    /// malformed framing means the test already failed.
    pub fn next_response(&mut self) -> Option<Response> {
        if let RespState::Body { need, .. } = &self.state {
            let need = *need;
            if self.buf.len() < need {
                return None;
            }
            let rest = self.buf.split_off(need);
            let body = std::mem::replace(&mut self.buf, rest);
            self.scanned = 0;
            let prev = std::mem::replace(&mut self.state, RespState::Head);
            if let RespState::Body { mut resp, .. } = prev {
                resp.body = body;
                return Some(resp);
            }
            return None;
        }
        let head_end = find_terminator(&self.buf, self.scanned)?;
        let head = self.buf[..head_end].to_vec();
        let rest = self.buf.split_off(head_end + 4);
        self.buf = rest;
        self.scanned = 0;
        let text = String::from_utf8_lossy(&head).into_owned();
        let mut lines = text.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut need = 0usize;
        let mut keep_alive = true;
        // audit: bounded(one pass over a single response head)
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    need = value.parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("connection") {
                    keep_alive = !value.eq_ignore_ascii_case("close");
                }
            }
        }
        self.state = RespState::Body {
            need,
            resp: Response {
                status,
                body: Vec::new(),
                keep_alive,
            },
        };
        self.next_response()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> (Vec<Request>, Option<HttpError>) {
        let mut p = RequestParser::new(Limits::default());
        p.feed(bytes);
        let mut out = Vec::new();
        loop {
            match p.next_request() {
                Step::NeedMore => return (out, None),
                Step::Ready(r) => out.push(*r),
                Step::Fail(e) => return (out, Some(e)),
            }
        }
    }

    #[test]
    fn simple_get() {
        let (reqs, err) = parse_all(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(err.is_none());
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, Method::Get);
        assert_eq!(reqs[0].target, "/health");
        assert!(reqs[0].keep_alive);
    }

    #[test]
    fn post_with_body_and_pipelined_get() {
        let (reqs, err) = parse_all(
            b"POST /quote HTTP/1.1\r\nContent-Length: 4\r\n\r\nQ()\nGET /metrics HTTP/1.1\r\n\r\n",
        );
        assert!(err.is_none());
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].body, b"Q()\n");
        assert_eq!(reqs[1].target, "/metrics");
    }

    #[test]
    fn byte_by_byte_feed() {
        let raw = b"POST /quote HTTP/1.0\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nhi";
        let mut p = RequestParser::new(Limits::default());
        let mut got = None;
        for &b in raw.iter() {
            p.feed(&[b]);
            if let Step::Ready(r) = p.next_request() {
                got = Some(*r);
            }
        }
        let r = got.expect("request completes on the final byte");
        assert_eq!(r.body, b"hi");
        assert!(r.keep_alive, "HTTP/1.0 + keep-alive header");
    }

    #[test]
    fn conflicting_content_length_is_400() {
        let (_, err) =
            parse_all(b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nAAAA");
        assert_eq!(err.map(|e| e.status), Some(400));
    }

    #[test]
    fn oversized_head_is_413() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X: {}\r\n\r\n", "a".repeat(9000)).as_bytes());
        let (_, err) = parse_all(&raw);
        assert_eq!(err.map(|e| e.status), Some(413));
    }

    #[test]
    fn response_roundtrip() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", b"{}", true);
        let mut p = ResponseParser::new();
        p.feed(&out);
        let r = p.next_response().expect("complete");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"{}");
        assert!(r.keep_alive);
    }
}
