//! HTTP parser and server torture suite (ISSUE 9 satellite).
//!
//! Feeds the incremental parser and a live server split, pipelined,
//! oversized, and malformed requests — byte-by-byte header trickles,
//! mid-header connection drops, `Content-Length` lies — and asserts
//! nothing panics, framing errors answer 400/413 exactly once, and the
//! connection table survives abusive peers.

use qbdp_serve::http::{RequestParser, Step};
use qbdp_serve::{Limits, Method, ResponseParser, Server, ServerConfig, ShutdownFlag};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

const FIG1_QDP: &str = include_str!("../../../data/figure1.qdp");

// ---------------------------------------------------------------- parser

/// Drain everything currently decodable, collecting terminal errors.
fn drain(p: &mut RequestParser) -> (Vec<qbdp_serve::Request>, Vec<u16>) {
    let (mut reqs, mut errs) = (Vec::new(), Vec::new());
    loop {
        match p.next_request() {
            Step::NeedMore => return (reqs, errs),
            Step::Ready(r) => reqs.push(*r),
            Step::Fail(e) => {
                errs.push(e.status);
                return (reqs, errs);
            }
        }
    }
}

#[test]
fn byte_by_byte_header_feed_yields_one_request() {
    let raw = b"POST /quote HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nQ(x)";
    let mut p = RequestParser::new(Limits::default());
    let mut seen = Vec::new();
    for b in raw.iter() {
        p.feed(std::slice::from_ref(b));
        let (reqs, errs) = drain(&mut p);
        assert!(errs.is_empty());
        seen.extend(reqs);
    }
    assert_eq!(seen.len(), 1);
    assert_eq!(seen[0].method, Method::Post);
    assert_eq!(seen[0].body, b"Q(x)");
}

#[test]
fn pipelined_burst_decodes_in_order() {
    let mut raw = Vec::new();
    for i in 0..32 {
        raw.extend_from_slice(
            format!(
                "POST /quote HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                i % 7,
                "x".repeat(i % 7)
            )
            .as_bytes(),
        );
    }
    let mut p = RequestParser::new(Limits::default());
    p.feed(&raw);
    let (reqs, errs) = drain(&mut p);
    assert!(errs.is_empty());
    assert_eq!(reqs.len(), 32);
    for (i, r) in reqs.iter().enumerate() {
        assert_eq!(r.body.len(), i % 7);
    }
}

#[test]
fn content_length_lies_are_terminal_400() {
    // Two Content-Length headers that disagree.
    let mut p = RequestParser::new(Limits::default());
    p.feed(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde");
    let (_, errs) = drain(&mut p);
    assert_eq!(errs, vec![400]);

    // Non-numeric length.
    let mut p = RequestParser::new(Limits::default());
    p.feed(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    let (_, errs) = drain(&mut p);
    assert_eq!(errs, vec![400]);

    // Negative length (sign is not a digit).
    let mut p = RequestParser::new(Limits::default());
    p.feed(b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
    let (_, errs) = drain(&mut p);
    assert_eq!(errs, vec![400]);

    // Transfer-Encoding smuggling attempt.
    let mut p = RequestParser::new(Limits::default());
    p.feed(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n");
    let (_, errs) = drain(&mut p);
    assert_eq!(errs, vec![400]);
}

#[test]
fn broken_parser_stays_broken() {
    let mut p = RequestParser::new(Limits::default());
    p.feed(b"BOGUS\r\n\r\n");
    assert!(matches!(p.next_request(), Step::Fail(e) if e.status == 400));
    // Feeding a now-valid request after the error must not resurrect it.
    p.feed(b"GET / HTTP/1.1\r\n\r\n");
    assert!(matches!(p.next_request(), Step::Fail(e) if e.status == 400));
}

#[test]
fn oversized_head_and_body_are_413() {
    let limits = Limits {
        max_head: 128,
        max_body: 16,
    };
    let mut p = RequestParser::new(limits);
    let mut junk = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
    junk.extend(std::iter::repeat_n(b'a', 256));
    p.feed(&junk);
    let (_, errs) = drain(&mut p);
    assert_eq!(errs, vec![413]);

    // Declared body beyond the cap fails at the header, before any body
    // byte arrives — the server never buffers what it will refuse.
    let mut p = RequestParser::new(limits);
    p.feed(b"POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
    let (_, errs) = drain(&mut p);
    assert_eq!(errs, vec![413]);
}

#[test]
fn random_garbage_never_panics() {
    // Deterministic xorshift garbage: every chunk either errors or waits,
    // but the parser must not panic or loop.
    let mut state = 0x243f_6a88_85a3_08d3_u64;
    for round in 0..64 {
        let mut p = RequestParser::new(Limits {
            max_head: 256,
            max_body: 64,
        });
        let mut bytes = Vec::new();
        for _ in 0..(round * 7 + 3) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bytes.push((state >> 32) as u8);
        }
        p.feed(&bytes);
        let _ = drain(&mut p);
    }
}

// ---------------------------------------------------------------- server

/// Run a figure-1 market server on an ephemeral port for `body`.
fn with_server(force_poll: bool, body: impl FnOnce(SocketAddr) + Send) {
    let market = qbdp_market::Market::open_qdp(FIG1_QDP).unwrap();
    let mut server = Server::bind(ServerConfig {
        max_conns: 8,
        idle_timeout: Duration::from_millis(400),
        force_poll,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let shutdown = ShutdownFlag::new();
    let stopper = shutdown.clone();
    std::thread::scope(|s| {
        let h = s.spawn(move || server.run(&market, &shutdown));
        body(addr);
        stopper.request();
        h.join().unwrap().unwrap();
    });
}

fn send_all(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut c = TcpStream::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    c.write_all(bytes).unwrap();
    let _ = c.shutdown(Shutdown::Write);
    let mut out = Vec::new();
    let _ = c.read_to_end(&mut out);
    out
}

fn statuses(raw: &[u8]) -> Vec<u16> {
    let mut rp = ResponseParser::new();
    rp.feed(raw);
    let mut out = Vec::new();
    while let Some(r) = rp.next_response() {
        out.push(r.status);
    }
    out
}

#[test]
fn malformed_request_gets_400_and_close() {
    with_server(false, |addr| {
        let raw = send_all(addr, b"NONSENSE\r\n\r\nGET / HTTP/1.1\r\n\r\n");
        // Exactly one 400; the pipelined follow-up dies with the conn.
        assert_eq!(statuses(&raw), vec![400]);
    });
}

#[test]
fn oversized_head_gets_413_and_close() {
    with_server(false, |addr| {
        let mut raw = b"GET /health HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 16 * 1024));
        raw.extend_from_slice(b"\r\n\r\n");
        assert_eq!(statuses(&send_all(addr, &raw)), vec![413]);
    });
}

#[test]
fn mid_header_drop_leaves_server_healthy() {
    with_server(false, |addr| {
        // Drop a connection mid-header, twice, then verify the server
        // still answers a clean request.
        for _ in 0..2 {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"POST /quote HTTP/1.1\r\nContent-Le").unwrap();
            drop(c);
        }
        let raw = send_all(addr, b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(statuses(&raw), vec![200]);
    });
}

#[test]
fn content_length_short_body_times_out_without_hanging_others() {
    with_server(false, |addr| {
        // Liar: declares 100 bytes, sends 5, keeps the socket open. The
        // idle sweep must reap it while other clients stay served.
        let mut liar = TcpStream::connect(addr).unwrap();
        liar.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        liar.write_all(b"POST /quote HTTP/1.1\r\nContent-Length: 100\r\n\r\nQ(x)\n")
            .unwrap();
        let raw = send_all(addr, b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(statuses(&raw), vec![200]);
        // The idle timeout (400ms here) closes the liar: read returns 0.
        let mut buf = [0u8; 64];
        loop {
            match liar.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => panic!("liar socket should be closed, got {e}"),
            }
        }
    });
}

#[test]
fn pipelined_quotes_come_back_in_order_on_poll_backend() {
    with_server(true, |addr| {
        let mut raw = Vec::new();
        for _ in 0..16 {
            raw.extend_from_slice(
                b"POST /quote HTTP/1.1\r\nContent-Length: 13\r\n\r\nQ(x) :- R(x)\n",
            );
        }
        raw.extend_from_slice(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n");
        let got = statuses(&send_all(addr, &raw));
        assert_eq!(got.len(), 17);
        assert!(got.iter().all(|s| *s == 200), "{got:?}");
    });
}

#[test]
fn connection_cap_rejects_with_503() {
    with_server(false, |addr| {
        // Fill the 8-slot table with idle keep-alive connections.
        let held: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
        // Give the event loop a beat to accept them all.
        std::thread::sleep(Duration::from_millis(200));
        let raw = send_all(addr, b"GET /health HTTP/1.1\r\n\r\n");
        assert_eq!(statuses(&raw), vec![503]);
        drop(held);
    });
}
