//! End-to-end serving tests: real sockets, real markets, both poller
//! backends, and the graceful-shutdown recovery-equivalence guarantee
//! (ISSUE 9): a drained server's durable state must fingerprint-match
//! a cold reopen of the same directory — no acked purchase lost.

use qbdp_market::{fingerprint, DurableMarket, Market, MarketOps};
use qbdp_serve::{ResponseParser, Server, ServerConfig, ShutdownFlag};
use qbdp_store::FsyncPolicy;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

const FIG1_QDP: &str = include_str!("../../../data/figure1.qdp");

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qbdp-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One request/response exchange on a fresh connection.
fn exchange(addr: SocketAddr, req: &[u8]) -> (u16, String) {
    let mut c = TcpStream::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.write_all(req).unwrap();
    let _ = c.shutdown(Shutdown::Write);
    let mut raw = Vec::new();
    let _ = c.read_to_end(&mut raw);
    let mut rp = ResponseParser::new();
    rp.feed(&raw);
    let r = rp.next_response().expect("one full response");
    (r.status, String::from_utf8_lossy(&r.body).into_owned())
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").into_bytes()
}

/// Serve `ops` on an ephemeral port, run `body`, request shutdown, and
/// return the drained server's stats.
fn serve(
    ops: &dyn MarketOps,
    force_poll: bool,
    body: impl FnOnce(SocketAddr) + Send,
) -> qbdp_serve::ServeStats {
    let mut server = Server::bind(ServerConfig {
        force_poll,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let shutdown = ShutdownFlag::new();
    let stopper = shutdown.clone();
    std::thread::scope(|s| {
        let h = s.spawn(move || server.run(ops, &shutdown));
        body(addr);
        stopper.request();
        h.join().unwrap().unwrap()
    })
}

fn roundtrip_on(force_poll: bool) {
    let market = Market::open_qdp(FIG1_QDP).unwrap();
    let stats = serve(&market, force_poll, |addr| {
        let (st, body) = exchange(addr, &post("/quote", "Q(x) :- R(x)\n"));
        assert_eq!(st, 200, "{body}");
        assert!(body.contains("\"price_cents\":400"), "{body}");
        assert!(body.contains("\"quality\":\"exact\""), "{body}");

        // A batch of lines prices in one engine call, answers as one doc.
        let (st, body) = exchange(
            addr,
            &post(
                "/quote",
                "Q(x) :- R(x)\nQ(y) :- T(y)\nQ(x, y) :- R(x), S(x, y), T(y)\n",
            ),
        );
        assert_eq!(st, 200);
        assert!(body.starts_with("{\"quotes\":["), "{body}");
        assert_eq!(body.matches("\"price_cents\"").count(), 3, "{body}");

        // Unparsable datalog is a 400 with a structured error, not a hang.
        let (st, body) = exchange(addr, &post("/quote", "this is not datalog\n"));
        assert_eq!(st, 400, "{body}");
        assert!(body.contains("\"error\""), "{body}");

        let (st, body) = exchange(addr, &post("/purchase", "Q(x) :- R(x)"));
        assert_eq!(st, 200, "{body}");
        assert!(body.contains("\"transaction_id\":1"), "{body}");
        assert!(body.contains("\"answer\""), "{body}");

        let (st, _) = exchange(addr, &get("/health"));
        assert_eq!(st, 200);

        // Telemetry is policy-gated; this market never enabled it, but
        // the endpoint itself must still answer.
        let (st, _) = exchange(addr, &get("/metrics"));
        assert_eq!(st, 200);

        let (st, _) = exchange(addr, &get("/nope"));
        assert_eq!(st, 404);
        let (st, _) = exchange(addr, &get("/quote"));
        assert_eq!(st, 405);
    });
    assert_eq!(stats.quotes, 5);
    assert_eq!(stats.purchases, 1);
    assert_eq!(stats.backend, if force_poll { "poll" } else { "epoll" });
    assert_eq!(market.sales(), 1);
}

#[test]
fn quote_purchase_metrics_roundtrip_epoll() {
    roundtrip_on(false);
}

#[test]
fn quote_purchase_metrics_roundtrip_poll() {
    roundtrip_on(true);
}

#[test]
fn durable_market_serves_and_recovery_matches_the_drained_state() {
    let dir = temp_dir("recover");
    let fp_drained = {
        let dm =
            DurableMarket::open_or_create(&dir, Some(FIG1_QDP), FsyncPolicy::EveryN(4)).unwrap();
        serve(&dm, false, |addr| {
            // Several acked purchases with an EveryN tail — exactly the
            // shape the satellite Drop-flush fix protects.
            for q in ["Q(x) :- R(x)", "Q(y) :- T(y)", "Q(x) :- R(x), S(x, y)"] {
                let (st, body) = exchange(addr, &post("/purchase", q));
                assert_eq!(st, 200, "{body}");
            }
            let (st, body) = exchange(addr, &post("/quote", "Q(x) :- R(x)\n"));
            assert_eq!(st, 200, "{body}");
        });
        dm.sync().unwrap();
        fingerprint(dm.market())
    };
    // Cold reopen: every acked purchase must have survived.
    let dm = DurableMarket::open_or_create(&dir, None, FsyncPolicy::Always).unwrap();
    assert_eq!(fingerprint(dm.market()), fp_drained);
    assert_eq!(dm.market().sales(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeat_purchase_is_conflict_and_unknown_view_is_404() {
    let market = Market::open_qdp(FIG1_QDP).unwrap();
    serve(&market, false, |addr| {
        let (st, _) = exchange(addr, &post("/purchase", "Q(x) :- R(x)"));
        assert_eq!(st, 200);
        // figure1's ledger refuses a double sale of the same view set
        // only if the market says so; a malformed purchase maps 400.
        let (st, body) = exchange(addr, &post("/purchase", "nonsense"));
        assert_eq!(st, 400, "{body}");
        assert!(body.contains("\"kind\""), "{body}");
    });
}

#[test]
fn keep_alive_connection_serves_many_exchanges() {
    let market = Market::open_qdp(FIG1_QDP).unwrap();
    let stats = serve(&market, false, |addr| {
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut rp = ResponseParser::new();
        let mut got = 0;
        for _ in 0..10 {
            c.write_all(&{
                let body = "Q(x) :- R(x)\n";
                format!(
                    "POST /quote HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .into_bytes()
            })
            .unwrap();
            let mut buf = [0u8; 4096];
            loop {
                let n = c.read(&mut buf).unwrap();
                assert!(n > 0, "server closed a keep-alive connection");
                rp.feed(&buf[..n]);
                if let Some(r) = rp.next_response() {
                    assert_eq!(r.status, 200);
                    got += 1;
                    break;
                }
            }
        }
        assert_eq!(got, 10);
    });
    // Ten requests, one connection.
    assert_eq!(stats.requests, 10);
    assert_eq!(stats.conns_accepted, 1);
}
