//! Human-readable rendering of queries (round-trips through the parser).

use crate::ast::{ConjunctiveQuery, Pred, Term, Ucq};
use crate::bundle::Bundle;
use std::fmt;

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name())?;
        for (i, v) in self.head().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.var_name(*v))?;
        }
        write!(f, ") :- ")?;
        let mut first = true;
        for atom in self.atoms() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}", render_rel(self, atom.rel))?;
            write!(f, "(")?;
            for (i, t) in atom.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match t {
                    Term::Var(v) => write!(f, "{}", self.var_name(*v))?,
                    Term::Const(c) => write!(f, "{c:?}")?,
                }
            }
            write!(f, ")")?;
        }
        for p in self.preds() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            let v = self.var_name(p.var);
            match &p.pred {
                Pred::Eq(c) => write!(f, "{v} = {c:?}")?,
                Pred::Ne(c) => write!(f, "{v} != {c:?}")?,
                Pred::Lt(c) => write!(f, "{v} < {c}")?,
                Pred::Le(c) => write!(f, "{v} <= {c}")?,
                Pred::Gt(c) => write!(f, "{v} > {c}")?,
                Pred::Ge(c) => write!(f, "{v} >= {c}")?,
                Pred::InSet(cs) => {
                    write!(f, "{v} in {{")?;
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{c:?}")?;
                    }
                    write!(f, "}}")?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Ucq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts().iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Ucq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, q) in self.queries().iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Relation ids do not carry names; rendering needs the schema, which the
/// query does not hold. We render `R#<id>` as a fallback. [`render`] accepts
/// a schema for fully-named output.
fn render_rel(_q: &ConjunctiveQuery, rel: qbdp_catalog::RelId) -> String {
    format!("R#{}", rel.0)
}

/// Render a CQ with relation names resolved against a schema; the output
/// re-parses to an equivalent query.
pub fn render(q: &ConjunctiveQuery, schema: &qbdp_catalog::Schema) -> String {
    let base = q.to_string();
    // Replace each `R#<id>` with the relation name. Ids are unambiguous
    // because `#` never appears in identifiers.
    let mut out = base;
    // Replace longer ids first so `R#10(` is not corrupted by `R#1(`.
    let mut rels: Vec<_> = schema.iter().collect();
    rels.sort_by_key(|(rid, _)| std::cmp::Reverse(rid.0));
    for (rid, rel) in rels {
        out = out.replace(&format!("R#{}(", rid.0), &format!("{}(", rel.name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_rule};
    use qbdp_catalog::{CatalogBuilder, Column};

    #[test]
    fn render_roundtrip() {
        let col = Column::int_range(0, 5);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .build()
            .unwrap();
        let src = "Q(x, y) :- R(x), S(x, y), y > 2, x in {1, 2}";
        let q = parse_rule(cat.schema(), src).unwrap();
        let rendered = render(&q, cat.schema());
        let q2 = parse_rule(cat.schema(), &rendered).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn render_constants() {
        let col = Column::texts(["a1", "a2"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", col.clone()), ("Y", col)])
            .build()
            .unwrap();
        let q = parse_rule(cat.schema(), "Q(x) :- R(x, 'a1')").unwrap();
        let rendered = render(&q, cat.schema());
        assert!(rendered.contains("'a1'"));
        let q2 = parse_rule(cat.schema(), &rendered).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn ucq_display() {
        let col = Column::int_range(0, 5);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("T", &["X"], &col)
            .build()
            .unwrap();
        let u = parse_query(cat.schema(), "U(x) :- R(x); U(x) :- T(x)").unwrap();
        let s = u.to_string();
        assert!(s.contains(';'));
    }
}
