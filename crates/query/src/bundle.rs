//! Query bundles (paper §2.1): finite sets of queries priced *together*.
//!
//! A bundle defines a function `InstR → InstRQ` with one output relation per
//! member query. The pricing function is subadditive over bundles
//! (Proposition 2.8), so buying `(Q1, Q2)` never costs more than buying the
//! two queries separately.

use crate::ast::{Atom, ConjunctiveQuery, Term, Ucq, Var};
use crate::error::QueryError;
use qbdp_catalog::Schema;

/// A finite bundle of UCQs. The *empty* bundle `()` is allowed (its price is
/// 0 by Proposition 2.8); it is distinct from a bundle containing an
/// unsatisfiable query.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Bundle {
    queries: Vec<Ucq>,
}

impl Bundle {
    /// The empty bundle `()`.
    pub fn empty() -> Self {
        Bundle::default()
    }

    /// A bundle from queries.
    pub fn new(queries: impl IntoIterator<Item = Ucq>) -> Self {
        Bundle {
            queries: queries.into_iter().collect(),
        }
    }

    /// A single-query bundle.
    pub fn single(q: impl Into<Ucq>) -> Self {
        Bundle {
            queries: vec![q.into()],
        }
    }

    /// The member queries.
    pub fn queries(&self) -> &[Ucq] {
        &self.queries
    }

    /// Number of member queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether this is the empty bundle.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Bundle union `Q1, Q2` (concatenation; duplicates are harmless since
    /// determinacy and pricing are set-like over bundles).
    pub fn union(&self, other: &Bundle) -> Bundle {
        let mut queries = self.queries.clone();
        queries.extend(other.queries.iter().cloned());
        Bundle { queries }
    }

    /// The **identity bundle** `ID` (paper §2.1): one full query per
    /// relation, returning the entire dataset. `ID` determines every query,
    /// so its price upper-bounds every price (Proposition 2.8, item 4).
    pub fn identity(schema: &Schema) -> Result<Bundle, QueryError> {
        let mut queries = Vec::with_capacity(schema.len());
        for (rid, rel) in schema.iter() {
            let vars: Vec<Var> = (0..rel.arity() as u32).map(Var).collect();
            let var_names: Vec<String> = rel.attrs().iter().map(|a| format!("x_{a}")).collect();
            let atom = Atom::new(rid, vars.iter().map(|&v| Term::Var(v)));
            let cq = ConjunctiveQuery::new(
                format!("ID_{}", rel.name()),
                vars,
                vec![atom],
                Vec::new(),
                var_names,
                schema,
            )?;
            queries.push(Ucq::single(cq));
        }
        Ok(Bundle { queries })
    }
}

impl From<Ucq> for Bundle {
    fn from(q: Ucq) -> Self {
        Bundle::single(q)
    }
}

impl From<ConjunctiveQuery> for Bundle {
    fn from(q: ConjunctiveQuery) -> Self {
        Bundle::single(Ucq::single(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CqBuilder;
    use crate::eval::eval_bundle;
    use qbdp_catalog::{tuple, CatalogBuilder, Column};

    #[test]
    fn identity_returns_everything() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        d.insert_all(r, [tuple![0], tuple![1]]).unwrap();
        d.insert_all(s, [tuple![0, 1]]).unwrap();
        let id = Bundle::identity(cat.schema()).unwrap();
        let answers = eval_bundle(&id, &d).unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].len(), 2);
        assert_eq!(answers[1].len(), 1);
        assert!(answers[1].contains(&tuple![0, 1]));
    }

    #[test]
    fn union_concatenates() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .build()
            .unwrap();
        let q = CqBuilder::new("Q")
            .head_var("x")
            .atom("R", &["x"])
            .build(cat.schema())
            .unwrap();
        let b1 = Bundle::single(Ucq::single(q.clone()));
        let b2 = Bundle::single(Ucq::single(q));
        let u = b1.union(&b2);
        assert_eq!(u.len(), 2);
        assert!(Bundle::empty().is_empty());
        assert_eq!(Bundle::empty().union(&b1).len(), 1);
    }
}
