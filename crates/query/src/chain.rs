//! Chain queries (Definition 3.12) and their partial-answer tables.
//!
//! A chain query is a full CQ without self-joins `Q = R_0, R_1, ..., R_k`
//! where every atom is unary or binary, consecutive atoms share exactly one
//! variable, and the first and last atoms are unary. Writing `x_i, x_{i+1}`
//! for the variables of `R_i` (with `x_i = x_{i+1}` for unary atoms), the
//! Min-Cut reduction (paper Step 4) needs the *partial answers*:
//!
//! ```text
//! Lt_i     = Π_{x_i}(Q[0:i-1](D))            0 ≤ i ≤ k   (Lt_0 = Col_{x_0})
//! Md[i:j]  = Π_{x_i, x_{j+1}}(Q[i:j](D))     1 ≤ i ≤ k, i-1 ≤ j ≤ k-1
//! Rt_j     = Π_{x_{j+1}}(Q[j+1:k](D))        0 ≤ j ≤ k   (Rt_k = Col_{x_{k+1}})
//! ```
//!
//! with the degenerate diagonal `Md[i:i-1] = Col_{x_i}`. All tables are
//! computed by left/right dynamic programming over the chain in
//! `O(k² · |D| + k · |Col|)` time.

use crate::ast::{ConjunctiveQuery, Term, Var};
use crate::error::QueryError;
use qbdp_catalog::{AttrId, Catalog, Column, FxHashSet, Instance, RelId, Value};

/// One atom of a chain, with its left/right attribute positions resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainAtom {
    /// The relation.
    pub rel: RelId,
    /// Attribute position of the left variable `x_i` within the relation.
    pub left_pos: usize,
    /// Attribute position of the right variable `x_{i+1}`; equals
    /// `left_pos` for unary atoms.
    pub right_pos: usize,
    /// Whether the atom is unary (`x_i = x_{i+1}`).
    pub unary: bool,
}

/// A validated chain query: the atom sequence `R_0 … R_k` plus the resolved
/// join variables `x_0 … x_{k+1}`.
#[derive(Clone, Debug)]
pub struct ChainQuery {
    atoms: Vec<ChainAtom>,
    /// `x_0 ..= x_{k+1}` as variables of the underlying CQ (length k+2).
    join_vars: Vec<Var>,
}

impl ChainQuery {
    /// Validate that `q`'s atoms — in their **given order** — form a chain
    /// query. Interpreted predicates must have been removed already (Step 1)
    /// and atoms must have no constants or repeated variables (Step 2).
    pub fn from_cq(q: &ConjunctiveQuery) -> Result<ChainQuery, QueryError> {
        let fail = |m: &str| Err(QueryError::NotApplicable(format!("not a chain query: {m}")));
        if !q.preds().is_empty() {
            return fail("interpreted predicates present (run Step 1 first)");
        }
        if !crate::analysis::is_full(q) {
            return fail("query is not full");
        }
        if crate::analysis::has_self_join(q) {
            return fail("query has a self-join");
        }
        let n = q.atoms().len();
        if n == 0 {
            return fail("no atoms");
        }
        // Extract per-atom variable lists, rejecting constants/repeats.
        let mut atom_vars: Vec<Vec<Var>> = Vec::with_capacity(n);
        for a in q.atoms() {
            let mut vs = Vec::new();
            for t in &a.terms {
                match t {
                    Term::Const(_) => return fail("constants present (run Step 1 first)"),
                    Term::Var(v) => {
                        if vs.contains(v) {
                            return fail("repeated variable in an atom (run Step 2 first)");
                        }
                        vs.push(*v);
                    }
                }
            }
            if vs.is_empty() || vs.len() > 2 {
                return fail("atoms must be unary or binary");
            }
            atom_vars.push(vs);
        }
        if atom_vars[0].len() != 1 || atom_vars[n - 1].len() != 1 {
            return fail("first and last atoms must be unary");
        }
        // Walk the chain, resolving x_i / x_{i+1}.
        let mut join_vars: Vec<Var> = Vec::with_capacity(n + 1);
        let x0 = atom_vars[0][0];
        join_vars.push(x0); // x_0
        join_vars.push(x0); // x_1 (= x_0, first atom unary)
        let mut atoms: Vec<ChainAtom> = Vec::with_capacity(n);
        atoms.push(ChainAtom {
            rel: q.atoms()[0].rel,
            left_pos: 0,
            right_pos: 0,
            unary: true,
        });
        for i in 1..n {
            let Some(&prev_right) = join_vars.last() else {
                return fail("chain walk lost its join variable");
            }; // x_i
            let vs = &atom_vars[i];
            let atom = &q.atoms()[i];
            if vs.len() == 1 {
                if vs[0] != prev_right {
                    return fail("consecutive atoms must share their join variable");
                }
                join_vars.push(prev_right); // x_{i+1} = x_i
                atoms.push(ChainAtom {
                    rel: atom.rel,
                    left_pos: 0,
                    right_pos: 0,
                    unary: true,
                });
            } else {
                let (left_pos, right_pos, right_var) = if vs[0] == prev_right {
                    (
                        atom.positions_of(vs[0])[0],
                        atom.positions_of(vs[1])[0],
                        vs[1],
                    )
                } else if vs[1] == prev_right {
                    (
                        atom.positions_of(vs[1])[0],
                        atom.positions_of(vs[0])[0],
                        vs[0],
                    )
                } else {
                    return fail("consecutive atoms share no variable");
                };
                // The shared variable must be exactly one: the other variable
                // must be fresh relative to the previous atom.
                if atom_vars[i - 1].contains(&right_var) {
                    return fail("consecutive atoms share two variables");
                }
                join_vars.push(right_var);
                atoms.push(ChainAtom {
                    rel: atom.rel,
                    left_pos,
                    right_pos,
                    unary: false,
                });
            }
        }
        // Each join variable must occupy one contiguous run of positions
        // (runs longer than one come from unary atoms); a variable that
        // *re*-appears after a different variable makes the query a cycle or
        // a non-chain sharing pattern.
        for i in 1..join_vars.len() {
            if join_vars[i] != join_vars[i - 1] && join_vars[..i].contains(&join_vars[i]) {
                return fail("a join variable reappears later in the chain");
            }
        }
        Ok(ChainQuery { atoms, join_vars })
    }

    /// The chain atoms in order.
    pub fn atoms(&self) -> &[ChainAtom] {
        &self.atoms
    }

    /// `k`: the index of the last atom (`R_0 … R_k`).
    pub fn k(&self) -> usize {
        self.atoms.len() - 1
    }

    /// The join variable `x_i` (0 ≤ i ≤ k+1).
    pub fn join_var(&self, i: usize) -> Var {
        self.join_vars[i]
    }

    /// Attribute reference of atom `i`'s left position.
    pub fn left_attr(&self, i: usize) -> qbdp_catalog::AttrRef {
        qbdp_catalog::AttrRef::new(self.atoms[i].rel, self.atoms[i].left_pos as u32)
    }

    /// Attribute reference of atom `i`'s right position.
    pub fn right_attr(&self, i: usize) -> qbdp_catalog::AttrRef {
        qbdp_catalog::AttrRef::new(self.atoms[i].rel, self.atoms[i].right_pos as u32)
    }

    /// `Col_{x_i}` for an **interior** position `1 ≤ i ≤ k`: the intersection
    /// of the adjacent attribute columns `Col_{R_{i-1}.right} ∩
    /// Col_{R_i.left}` (paper: `Q[i:i-1] = Col_{x_i}`). For `i = 0` it is
    /// `Col_{R_0.X}`, and for `i = k+1` it is `Col_{R_k.Y}`.
    pub fn position_column(&self, catalog: &Catalog, i: usize) -> Column {
        let k = self.k();
        if i == 0 {
            catalog.column(self.left_attr(0)).clone()
        } else if i == k + 1 {
            catalog.column(self.right_attr(k)).clone()
        } else {
            let a = catalog.column(self.right_attr(i - 1));
            let b = catalog.column(self.left_attr(i));
            a.intersect(b)
        }
    }

    /// Compute all partial-answer tables on `d`.
    pub fn partial_answers(&self, catalog: &Catalog, d: &Instance) -> PartialAnswers {
        let k = self.k();
        let cols: Vec<Column> = (0..=k + 1)
            .map(|i| self.position_column(catalog, i))
            .collect();

        // Lt DP, left to right. Lt_0 = Col_{x_0}.
        let mut lt: Vec<FxHashSet<Value>> = Vec::with_capacity(k + 1);
        lt.push(cols[0].iter().cloned().collect());
        for i in 0..k {
            // Lt_{i+1} = image of Lt_i through atom i, clipped to Col_{x_{i+1}}.
            let prev = &lt[i];
            let mut next: FxHashSet<Value> = FxHashSet::default();
            self.for_each_transition(d, i, |a, b| {
                if prev.contains(a) && cols[i + 1].contains(b) {
                    next.insert(b.clone());
                }
            });
            lt.push(next);
        }

        // Rt DP, right to left. Rt_k = Col_{x_{k+1}}.
        let mut rt: Vec<FxHashSet<Value>> = vec![FxHashSet::default(); k + 1];
        rt[k] = cols[k + 1].iter().cloned().collect();
        for j in (1..=k).rev() {
            // Rt_{j-1} = preimage of Rt_j through atom j, clipped to Col_{x_j}.
            let mut prev: FxHashSet<Value> = FxHashSet::default();
            {
                let nxt = &rt[j];
                self.for_each_transition(d, j, |a, b| {
                    if nxt.contains(b) && cols[j].contains(a) {
                        prev.insert(a.clone());
                    }
                });
            }
            rt[j - 1] = prev;
        }

        // Md DP: for each start i, extend to the right.
        // md[i-1][j-(i-1)] = Md[i:j] for j = i-1 ..= k-1.
        let mut md: Vec<Vec<FxHashSet<(Value, Value)>>> = Vec::with_capacity(k);
        for i in 1..=k {
            let mut row: Vec<FxHashSet<(Value, Value)>> = Vec::with_capacity(k - i + 1);
            // Diagonal Md[i:i-1] = Col_{x_i}.
            row.push(cols[i].iter().map(|v| (v.clone(), v.clone())).collect());
            for j in i..=k.saturating_sub(1) {
                // Md[i:j] = Md[i:j-1] ∘ atom j transitions.
                let Some(prev) = row.last() else { break };
                // Index prev by right endpoint for the DP join.
                let mut by_right: qbdp_catalog::FxHashMap<&Value, Vec<&Value>> =
                    qbdp_catalog::FxHashMap::default();
                for (a, b) in prev {
                    by_right.entry(b).or_default().push(a);
                }
                let mut next: FxHashSet<(Value, Value)> = FxHashSet::default();
                self.for_each_transition(d, j, |b, c| {
                    if let Some(starts) = by_right.get(b) {
                        if cols[j + 1].contains(c) {
                            for a in starts {
                                next.insert(((*a).clone(), c.clone()));
                            }
                        }
                    }
                });
                row.push(next);
            }
            md.push(row);
        }

        // Q(D) ≠ ∅: for k ≥ 1 iff Lt_k ∩ Rt_{k-1} ≠ ∅; for a single unary
        // atom iff some column value is present in the relation.
        let has_answers = if k >= 1 {
            lt[k].iter().any(|v| rt[k - 1].contains(v))
        } else {
            let atom = &self.atoms[0];
            cols[0].iter().any(|v| {
                d.relation(atom.rel)
                    .select_count(AttrId(atom.left_pos as u32), v)
                    > 0
            })
        };

        PartialAnswers {
            k,
            cols,
            lt,
            rt,
            md,
            has_answers,
        }
    }

    /// Drive `f(a, b)` over the transitions of atom `i` present in `D`:
    /// `(t[left], t[right])` for every tuple `t` of the relation (for unary
    /// atoms `a = b`).
    fn for_each_transition(&self, d: &Instance, i: usize, mut f: impl FnMut(&Value, &Value)) {
        let atom = &self.atoms[i];
        for t in d.relation(atom.rel).iter() {
            f(t.get(atom.left_pos), t.get(atom.right_pos));
        }
    }
}

/// The partial-answer tables of a chain query on an instance.
#[derive(Clone, Debug)]
pub struct PartialAnswers {
    k: usize,
    /// `Col_{x_i}` for i = 0 ..= k+1.
    cols: Vec<Column>,
    /// `Lt_i` for i = 0 ..= k.
    lt: Vec<FxHashSet<Value>>,
    /// `Rt_j` for j = 0 ..= k.
    rt: Vec<FxHashSet<Value>>,
    /// `md[i-1][j-(i-1)]` = `Md[i:j]`, 1 ≤ i ≤ k, i-1 ≤ j ≤ k-1.
    md: Vec<Vec<FxHashSet<(Value, Value)>>>,
    has_answers: bool,
}

impl PartialAnswers {
    /// `k`: index of the last atom.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `Col_{x_i}`, 0 ≤ i ≤ k+1.
    pub fn col(&self, i: usize) -> &Column {
        &self.cols[i]
    }

    /// `Lt_i`, 0 ≤ i ≤ k.
    pub fn lt(&self, i: usize) -> &FxHashSet<Value> {
        &self.lt[i]
    }

    /// `Rt_j`, 0 ≤ j ≤ k.
    pub fn rt(&self, j: usize) -> &FxHashSet<Value> {
        &self.rt[j]
    }

    /// `Md[i:j]`, 1 ≤ i ≤ k, i-1 ≤ j ≤ k-1.
    pub fn md(&self, i: usize, j: usize) -> &FxHashSet<(Value, Value)> {
        &self.md[i - 1][j + 1 - i]
    }

    /// Whether `Q(D) ≠ ∅` (computed at construction: for k ≥ 1 this is
    /// `Lt_k ∩ Rt_{k-1} ≠ ∅`; the Min-Cut construction itself needs only
    /// `Lt`, `Md`, `Rt`).
    pub fn has_answers(&self) -> bool {
        self.has_answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CqBuilder;
    use qbdp_catalog::{tuple, CatalogBuilder};

    /// Figure 1 database and query.
    fn figure1() -> (Catalog, Instance, ConjunctiveQuery) {
        let ax = Column::texts(["a1", "a2", "a3", "a4"]);
        let by = Column::texts(["b1", "b2", "b3"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", ax.clone())])
            .relation("S", &[("X", ax), ("Y", by.clone())])
            .relation("T", &[("Y", by)])
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        let t = cat.schema().rel_id("T").unwrap();
        d.insert_all(r, [tuple!["a1"], tuple!["a2"]]).unwrap();
        d.insert_all(
            s,
            [
                tuple!["a1", "b1"],
                tuple!["a1", "b2"],
                tuple!["a2", "b2"],
                tuple!["a4", "b1"],
            ],
        )
        .unwrap();
        d.insert_all(t, [tuple!["b1"], tuple!["b3"]]).unwrap();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", &["x"])
            .atom("S", &["x", "y"])
            .atom("T", &["y"])
            .build(cat.schema())
            .unwrap();
        (cat, d, q)
    }

    #[test]
    fn chain_structure() {
        let (_, _, q) = figure1();
        let c = ChainQuery::from_cq(&q).unwrap();
        assert_eq!(c.k(), 2);
        assert!(c.atoms()[0].unary);
        assert!(!c.atoms()[1].unary);
        assert!(c.atoms()[2].unary);
        assert_eq!(c.join_var(0), c.join_var(1)); // x_0 = x_1
        assert_eq!(c.join_var(2), c.join_var(3)); // x_2 = x_3
        assert_ne!(c.join_var(1), c.join_var(2));
    }

    #[test]
    fn figure1_partial_answers() {
        let (cat, d, q) = figure1();
        let c = ChainQuery::from_cq(&q).unwrap();
        let pa = c.partial_answers(&cat, &d);
        // Lt_0 = Col_x (4 values); Lt_1 = R(D) = {a1, a2};
        // Lt_2 = Π_y(R ⋈ S) = {b1, b2}.
        assert_eq!(pa.lt(0).len(), 4);
        assert_eq!(pa.lt(1).len(), 2);
        assert!(pa.lt(1).contains(&Value::text("a1")));
        assert_eq!(pa.lt(2).len(), 2);
        assert!(pa.lt(2).contains(&Value::text("b2")));
        // Rt_2 = Col_y (3 values); Rt_1 = T(D) = {b1, b3};
        // Rt_0 = Π_x(S ⋈ T) = {a1, a4}.
        assert_eq!(pa.rt(2).len(), 3);
        assert_eq!(pa.rt(1).len(), 2);
        assert!(pa.rt(1).contains(&Value::text("b3")));
        assert_eq!(pa.rt(0).len(), 2);
        assert!(pa.rt(0).contains(&Value::text("a4")));
        // Md[1:0] = Col_{x_1} diagonal (4 pairs); Md[1:1] = S(D) (4 pairs);
        // Md[2:1] = Col_{x_2} diagonal (3 pairs).
        assert_eq!(pa.md(1, 0).len(), 4);
        assert_eq!(pa.md(1, 1).len(), 4);
        assert!(pa
            .md(1, 1)
            .contains(&(Value::text("a4"), Value::text("b1"))));
        assert_eq!(pa.md(2, 1).len(), 3);
        assert!(pa.has_answers());
    }

    #[test]
    fn rejects_non_chains() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("T", &["X"], &col)
            .build()
            .unwrap();
        // Binary first atom.
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", &["x", "y"])
            .atom("T", &["y"])
            .build(cat.schema())
            .unwrap();
        assert!(ChainQuery::from_cq(&q).is_err());
        // Two shared variables (C2 with unary caps missing anyway).
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("T", &["x"])
            .atom("R", &["x", "y"])
            .atom("S", &["y", "x"])
            .build(cat.schema())
            .unwrap();
        assert!(ChainQuery::from_cq(&q).is_err());
        // Projection.
        let q = CqBuilder::new("Q")
            .head_var("x")
            .atom("T", &["x"])
            .build(cat.schema())
            .unwrap();
        let c = ChainQuery::from_cq(&q);
        assert!(c.is_ok()); // T(x) with head x IS full and a chain
        let q = CqBuilder::new("Q")
            .head_var("x")
            .atom("R", &["x", "y"])
            .build(cat.schema())
            .unwrap();
        assert!(ChainQuery::from_cq(&q).is_err()); // y projected out
    }

    #[test]
    fn middle_unary_atoms() {
        // R0(x), S(x,y), T(y), U(y), V(y,z), W(z): paper's Q2 shape.
        let col = Column::int_range(0, 4);
        let cat = CatalogBuilder::new()
            .uniform_relation("R0", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("T", &["Y"], &col)
            .uniform_relation("U", &["Y"], &col)
            .uniform_relation("V", &["Y", "Z"], &col)
            .uniform_relation("W", &["Z"], &col)
            .build()
            .unwrap();
        let q = CqBuilder::new("Q2")
            .head_vars(["x", "y", "z"])
            .atom("R0", &["x"])
            .atom("S", &["x", "y"])
            .atom("T", &["y"])
            .atom("U", &["y"])
            .atom("V", &["y", "z"])
            .atom("W", &["z"])
            .build(cat.schema())
            .unwrap();
        let c = ChainQuery::from_cq(&q).unwrap();
        assert_eq!(c.k(), 5);
        let mut d = cat.empty_instance();
        for (name, tuples) in [
            ("R0", vec![tuple![0], tuple![1]]),
            ("T", vec![tuple![2]]),
            ("U", vec![tuple![2]]),
            ("W", vec![tuple![3]]),
        ] {
            let rid = cat.schema().rel_id(name).unwrap();
            d.insert_all(rid, tuples).unwrap();
        }
        let s = cat.schema().rel_id("S").unwrap();
        let v = cat.schema().rel_id("V").unwrap();
        d.insert_all(s, [tuple![0, 2], tuple![1, 3]]).unwrap();
        d.insert_all(v, [tuple![2, 3]]).unwrap();
        let pa = c.partial_answers(&cat, &d);
        // Lt: Col_x → {0,1} → {2,3} → {2} → {2} → {3} ...
        assert_eq!(pa.lt(1).len(), 2);
        assert_eq!(pa.lt(2).len(), 2);
        assert_eq!(pa.lt(3).len(), 1); // after T(y): only 2
        assert_eq!(pa.lt(4).len(), 1); // after U(y)
        assert_eq!(pa.lt(5).len(), 1); // after V: {3}
        assert!(pa.has_answers()); // W(3) present
                                   // Md[2:3] = pairs (y, y) surviving T, U = {(2, 2)}.
        assert_eq!(pa.md(2, 3).len(), 1);
        assert!(pa.md(2, 3).contains(&(Value::Int(2), Value::Int(2))));
    }

    #[test]
    fn empty_database_partials() {
        let (cat, _, q) = figure1();
        let d = cat.empty_instance();
        let c = ChainQuery::from_cq(&q).unwrap();
        let pa = c.partial_answers(&cat, &d);
        assert_eq!(pa.lt(0).len(), 4); // Col_x regardless of D
        assert!(pa.lt(1).is_empty());
        assert!(pa.rt(1).is_empty());
        assert!(!pa.has_answers());
    }
}
