//! Error type for query construction, parsing, and evaluation.

use std::fmt;

/// Errors raised by query construction, parsing, and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A head variable does not occur in any relational atom (unsafe rule).
    UnsafeHeadVar(String),
    /// A predicate constrains a variable not occurring in any atom.
    UnsafePredVar(String),
    /// An atom's arity does not match the schema.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity per schema.
        expected: usize,
        /// Arity used in the atom.
        got: usize,
    },
    /// An atom references a relation absent from the schema.
    UnknownRelation(String),
    /// The disjuncts of a UCQ have different head arities.
    MixedArity,
    /// A UCQ must have at least one disjunct.
    EmptyUnion,
    /// Parse error with position info.
    Parse {
        /// Human-readable message.
        message: String,
    },
    /// An interpreted predicate was applied to a value of the wrong type
    /// (e.g. `x < 3` on a text value).
    PredicateType {
        /// The predicate, rendered.
        pred: String,
        /// The offending value, rendered.
        value: String,
    },
    /// The operation requires a structural property the query lacks
    /// (e.g. chain form); the message says which.
    NotApplicable(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsafeHeadVar(v) => {
                write!(f, "head variable {v} does not occur in the body")
            }
            QueryError::UnsafePredVar(v) => {
                write!(
                    f,
                    "predicate variable {v} does not occur in any relational atom"
                )
            }
            QueryError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(f, "atom {relation} has arity {got}, schema says {expected}")
            }
            QueryError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            QueryError::MixedArity => write!(f, "UCQ disjuncts have different head arities"),
            QueryError::EmptyUnion => write!(f, "a UCQ needs at least one disjunct"),
            QueryError::Parse { message } => write!(f, "query parse error: {message}"),
            QueryError::PredicateType { pred, value } => {
                write!(f, "predicate {pred} not applicable to value {value}")
            }
            QueryError::NotApplicable(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for QueryError {}
