#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! # qbdp-query — conjunctive queries, UCQs, and bundles
//!
//! The query substrate for query-based data pricing (PODS 2012):
//!
//! * [`ast`]: conjunctive queries with interpreted unary predicates, unions
//!   of conjunctive queries, and *query bundles* (the objects that are
//!   priced, paper §2.1);
//! * [`parser`]: a datalog-style surface syntax
//!   (`Q(x, y) :- R(x), S(x, y), y > 3`);
//! * [`eval`]: a join-based evaluator `Q(D)`;
//! * [`analysis`]: structural properties driving the dichotomy theorem
//!   (full, self-join-free, connected components, hanging variables);
//! * [`chain`]: chain queries (Definition 3.12) and their partial-answer
//!   tables `Lt`, `Md`, `Rt` used by the Min-Cut reduction;
//! * [`homomorphism`]: classical CQ containment, used to demonstrate that
//!   pricing is deliberately *not* monotone w.r.t. containment (§4).
//!
//! Convention: in query syntax, bare identifiers are **variables**;
//! constants are integers or `'quoted strings'`.

pub mod analysis;
pub mod ast;
pub mod bundle;
pub mod chain;
pub mod error;
pub mod eval;
pub mod homomorphism;
pub mod parser;
pub mod pretty;

pub use ast::{Atom, ConjunctiveQuery, Pred, PredAtom, Term, Ucq, Var};
pub use bundle::Bundle;
pub use chain::{ChainQuery, PartialAnswers};
pub use error::QueryError;
pub use parser::{parse_query, parse_rule};
