//! Datalog-style surface syntax for conjunctive queries and UCQs.
//!
//! ```text
//! Q(x, y) :- R(x), S(x, y), T(y)
//! Big(x)  :- Biz(x, s), s = 'WA', x > 100
//! U(x)    :- R(x, y); U(x) :- S(x)          -- UCQ: rules joined by `;`
//! ```
//!
//! * bare identifiers are **variables**;
//! * constants are integers (`42`) or quoted strings (`'WA'`);
//! * interpreted unary predicates: `x OP literal` with
//!   `OP ∈ {=, !=, <, <=, >, >=}`, or `x in {l1, l2, ...}`;
//! * a constant *inside an atom* (`S(x, 'WA')`) is allowed and equivalent to
//!   a fresh variable plus an `=` predicate.

use crate::ast::{Atom, ConjunctiveQuery, Pred, PredAtom, Term, Ucq, Var};
use crate::error::QueryError;
use qbdp_catalog::{Schema, Value};

/// Parse one rule `Head(vars) :- body` into a [`ConjunctiveQuery`].
pub fn parse_rule(schema: &Schema, text: &str) -> Result<ConjunctiveQuery, QueryError> {
    let err = |m: String| QueryError::Parse { message: m };
    let (head_src, body_src) = text
        .split_once(":-")
        .ok_or_else(|| err(format!("rule must contain `:-`: `{text}`")))?;

    let (head_name, head_args) =
        parse_call(head_src.trim()).ok_or_else(|| err(format!("bad head: `{head_src}`")))?;

    let mut var_names: Vec<String> = Vec::new();
    let mut intern = |name: &str, var_names: &mut Vec<String>| -> Var {
        if let Some(i) = var_names.iter().position(|n| n == name) {
            Var(i as u32)
        } else {
            var_names.push(name.to_string());
            Var((var_names.len() - 1) as u32)
        }
    };

    let mut atoms: Vec<Atom> = Vec::new();
    let mut preds: Vec<PredAtom> = Vec::new();

    for item in split_top_level(body_src) {
        let item = item.trim();
        if item.is_empty() {
            return Err(err("empty body item".to_string()));
        }
        if let Some((name, args)) = parse_call(item) {
            // A relational atom.
            let rel = schema
                .rel_id(name)
                .ok_or_else(|| QueryError::UnknownRelation(name.to_string()))?;
            let mut terms = Vec::with_capacity(args.len());
            for a in &args {
                terms.push(parse_term(a, &mut var_names, &mut intern)?);
            }
            atoms.push(Atom { rel, terms });
        } else {
            // An interpreted predicate.
            preds.push(parse_pred(item, &mut var_names, &mut intern)?);
        }
    }

    // Head arguments must be variables.
    let mut head = Vec::with_capacity(head_args.len());
    for a in &head_args {
        if !is_identifier(a) {
            return Err(err(format!("head arguments must be variables, got `{a}`")));
        }
        head.push(intern(a, &mut var_names));
    }

    ConjunctiveQuery::new(head_name, head, atoms, preds, var_names, schema)
}

/// Parse one or more `;`/newline-separated rules with the **same head
/// symbol** into a UCQ.
pub fn parse_query(schema: &Schema, text: &str) -> Result<Ucq, QueryError> {
    let mut disjuncts = Vec::new();
    for rule in text.split(';').flat_map(|part| part.split('\n')) {
        let rule = rule.trim();
        if rule.is_empty() {
            continue;
        }
        disjuncts.push(parse_rule(schema, rule)?);
    }
    let first_name = disjuncts
        .first()
        .ok_or(QueryError::EmptyUnion)?
        .name()
        .to_string();
    if disjuncts.iter().any(|d| d.name() != first_name) {
        return Err(QueryError::Parse {
            message: "all rules of a UCQ must share the head symbol".to_string(),
        });
    }
    Ucq::new(disjuncts)
}

fn parse_term(
    src: &str,
    var_names: &mut Vec<String>,
    intern: &mut impl FnMut(&str, &mut Vec<String>) -> Var,
) -> Result<Term, QueryError> {
    let src = src.trim();
    if is_identifier(src) {
        return Ok(Term::Var(intern(src, var_names)));
    }
    Value::parse_literal(src)
        .map(Term::Const)
        .ok_or_else(|| QueryError::Parse {
            message: format!("bad term `{src}`"),
        })
}

fn parse_pred(
    src: &str,
    var_names: &mut Vec<String>,
    intern: &mut impl FnMut(&str, &mut Vec<String>) -> Var,
) -> Result<PredAtom, QueryError> {
    let err = |m: String| QueryError::Parse { message: m };
    // `x in {a, b, c}`
    if let Some((lhs, rhs)) = src.split_once(" in ") {
        let lhs = lhs.trim();
        let rhs = rhs.trim();
        if !is_identifier(lhs) {
            return Err(err(format!("predicate lhs must be a variable: `{src}`")));
        }
        if !(rhs.starts_with('{') && rhs.ends_with('}')) {
            return Err(err(format!("`in` expects a `{{...}}` set: `{src}`")));
        }
        let vals: Option<Vec<Value>> = rhs[1..rhs.len() - 1]
            .split(',')
            .map(|s| Value::parse_literal(s.trim()))
            .collect();
        let vals = vals.ok_or_else(|| err(format!("bad value in set: `{rhs}`")))?;
        return Ok(PredAtom {
            var: intern(lhs, var_names),
            pred: Pred::InSet(vals),
        });
    }
    // Comparison operators, longest first.
    for (op_src, build) in OPS {
        if let Some(pos) = find_op(src, op_src) {
            let lhs = src[..pos].trim();
            let rhs = src[pos + op_src.len()..].trim();
            if !is_identifier(lhs) {
                return Err(err(format!("predicate lhs must be a variable: `{src}`")));
            }
            let value = Value::parse_literal(rhs)
                .ok_or_else(|| err(format!("bad literal `{rhs}` in `{src}`")))?;
            let pred = build(value).map_err(|m| err(format!("{m} in `{src}`")))?;
            return Ok(PredAtom {
                var: intern(lhs, var_names),
                pred,
            });
        }
    }
    Err(err(format!("cannot parse body item `{src}`")))
}

type PredBuilder = fn(Value) -> Result<Pred, String>;

const OPS: &[(&str, PredBuilder)] = &[
    ("!=", |v| Ok(Pred::Ne(v))),
    ("<=", |v| int(v).map(Pred::Le)),
    (">=", |v| int(v).map(Pred::Ge)),
    ("<", |v| int(v).map(Pred::Lt)),
    (">", |v| int(v).map(Pred::Gt)),
    ("=", |v| Ok(Pred::Eq(v))),
];

fn int(v: Value) -> Result<i64, String> {
    v.as_int()
        .ok_or_else(|| format!("comparison needs an integer, got `{v}`"))
}

/// Find `op` in `src` such that it is not part of a longer operator
/// (`<` inside `<=`, `=` inside `!=`/`<=`/`>=`).
fn find_op(src: &str, op: &str) -> Option<usize> {
    let bytes = src.as_bytes();
    let pos = src.find(op)?;
    if op == "=" && pos > 0 && matches!(bytes[pos - 1], b'!' | b'<' | b'>') {
        return None;
    }
    if (op == "<" || op == ">") && bytes.get(pos + 1) == Some(&b'=') {
        return None;
    }
    Some(pos)
}

/// `Name(arg, arg, ...)` — returns `None` if `src` is not of this shape.
fn parse_call(src: &str) -> Option<(&str, Vec<&str>)> {
    let open = src.find('(')?;
    if !src.ends_with(')') {
        return None;
    }
    let name = src[..open].trim();
    if !is_identifier(name) {
        return None;
    }
    let inner = &src[open + 1..src.len() - 1];
    if inner.trim().is_empty() {
        return Some((name, Vec::new()));
    }
    Some((name, inner.split(',').map(str::trim).collect()))
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split on commas at paren/brace depth 0, respecting quotes.
fn split_top_level(src: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_quote = false;
    let mut start = 0usize;
    for (i, c) in src.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            '(' | '{' if !in_quote => depth += 1,
            ')' | '}' if !in_quote => depth -= 1,
            ',' if depth == 0 && !in_quote => {
                out.push(&src[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&src[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_cq;
    use qbdp_catalog::{tuple, Catalog, CatalogBuilder, Column};

    fn cat() -> Catalog {
        let col = Column::int_range(0, 10);
        CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("T", &["Y"], &col)
            .build()
            .unwrap()
    }

    #[test]
    fn parse_simple_chain() {
        let c = cat();
        let q = parse_rule(c.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        assert_eq!(q.name(), "Q");
        assert_eq!(q.arity(), 2);
        assert_eq!(q.atoms().len(), 3);
        assert!(q.preds().is_empty());
    }

    #[test]
    fn parse_predicates() {
        let c = cat();
        let q = parse_rule(c.schema(), "Q(x) :- S(x, y), x > 3, y <= 7, y != 5").unwrap();
        assert_eq!(q.preds().len(), 3);
        assert_eq!(q.preds()[0].pred, Pred::Gt(3));
        assert_eq!(q.preds()[1].pred, Pred::Le(7));
        assert_eq!(q.preds()[2].pred, Pred::Ne(Value::Int(5)));
        let q = parse_rule(c.schema(), "Q(x) :- R(x), x in {1, 2, 3}").unwrap();
        assert_eq!(
            q.preds()[0].pred,
            Pred::InSet(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        let q = parse_rule(c.schema(), "Q(x) :- R(x), x >= 2, x < 9, x = 4").unwrap();
        assert_eq!(q.preds().len(), 3);
        assert_eq!(q.preds()[2].pred, Pred::Eq(Value::Int(4)));
    }

    #[test]
    fn parse_constants_in_atoms() {
        let c = cat();
        let q = parse_rule(c.schema(), "Q(y) :- S(3, y)").unwrap();
        assert!(matches!(q.atoms()[0].terms[0], Term::Const(Value::Int(3))));
        let q = parse_rule(c.schema(), "Q(y) :- S(y, 4), T(y)").unwrap();
        assert_eq!(q.atoms().len(), 2);
    }

    #[test]
    fn parse_boolean() {
        let c = cat();
        let q = parse_rule(c.schema(), "Q() :- S(x, y)").unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn parse_errors() {
        let c = cat();
        assert!(parse_rule(c.schema(), "no arrow here").is_err());
        assert!(parse_rule(c.schema(), "Q(x) :- Unknown(x)").is_err());
        assert!(parse_rule(c.schema(), "Q(x) :- R(x), 3 > x").is_err());
        assert!(parse_rule(c.schema(), "Q(3) :- R(x)").is_err());
        assert!(parse_rule(c.schema(), "Q(z) :- R(x)").is_err()); // unsafe
        assert!(parse_rule(c.schema(), "Q(x) :- R(x), y ?? 3").is_err());
        assert!(parse_rule(c.schema(), "Q(x) :- S(x)").is_err()); // arity
    }

    #[test]
    fn parse_ucq() {
        let c = cat();
        let u = parse_query(c.schema(), "U(x) :- R(x); U(x) :- S(x, y)").unwrap();
        assert_eq!(u.disjuncts().len(), 2);
        let u = parse_query(c.schema(), "U(x) :- R(x)\nU(x) :- T(x)").unwrap();
        assert_eq!(u.disjuncts().len(), 2);
        assert!(parse_query(c.schema(), "A(x) :- R(x); B(x) :- R(x)").is_err());
        assert!(parse_query(c.schema(), "  ").is_err());
    }

    #[test]
    fn quoted_strings_with_commas() {
        let col = Column::texts(["a,b", "c"]);
        let c = CatalogBuilder::new()
            .relation("N", &[("X", col)])
            .build()
            .unwrap();
        let q = parse_rule(c.schema(), "Q(x) :- N(x), x != 'a,b'").unwrap();
        assert_eq!(q.preds()[0].pred, Pred::Ne(Value::text("a,b")));
    }

    #[test]
    fn parsed_query_evaluates() {
        let c = cat();
        let mut d = c.empty_instance();
        let s = c.schema().rel_id("S").unwrap();
        let r = c.schema().rel_id("R").unwrap();
        d.insert_all(r, [tuple![1], tuple![2]]).unwrap();
        d.insert_all(s, [tuple![1, 5], tuple![2, 9], tuple![3, 1]])
            .unwrap();
        let q = parse_rule(c.schema(), "Q(x, y) :- R(x), S(x, y), y > 6").unwrap();
        let ans = eval_cq(&q, &d).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple![2, 9]));
    }
}
