//! Join-based evaluation of conjunctive queries, UCQs, and bundles.
//!
//! The evaluator is a backtracking join with greedy atom ordering and
//! index-backed candidate generation: at every step it picks the atom with
//! the most bound terms and scans it through the per-attribute hash index
//! when possible. This gives PTIME data complexity for every fixed query,
//! which is all the pricing framework needs (Theorem 3.3 assumes queries
//! with PTIME data complexity).

use crate::ast::{Atom, ConjunctiveQuery, Term, Ucq, Var};
use crate::bundle::Bundle;
use crate::error::QueryError;
use qbdp_catalog::{AttrId, FxHashSet, Instance, RelId, Tuple, Value};

/// A set of answer tuples.
pub type AnswerSet = FxHashSet<Tuple>;

/// Evaluate `Q(D)` for a conjunctive query: the set of head projections of
/// all satisfying assignments.
pub fn eval_cq(q: &ConjunctiveQuery, d: &Instance) -> Result<AnswerSet, QueryError> {
    let mut out = AnswerSet::default();
    for_each_assignment(q, d, |binding| {
        #[allow(clippy::expect_used)]
        let tuple = Tuple::new(q.head().iter().map(|v| {
            // audit: allow(R2: the callback fires only on fully bound assignments)
            binding[v.0 as usize].clone().expect("head var bound")
        }));
        out.insert(tuple);
        true
    })?;
    Ok(out)
}

/// Evaluate a UCQ: the union of its disjuncts' answers.
pub fn eval_ucq(q: &Ucq, d: &Instance) -> Result<AnswerSet, QueryError> {
    let mut out = AnswerSet::default();
    for cq in q.disjuncts() {
        out.extend(eval_cq(cq, d)?);
    }
    Ok(out)
}

/// Evaluate a bundle: one answer set per member query, in bundle order.
pub fn eval_bundle(b: &Bundle, d: &Instance) -> Result<Vec<AnswerSet>, QueryError> {
    b.queries().iter().map(|q| eval_ucq(q, d)).collect()
}

/// Whether `Q(D)` is non-empty, short-circuiting on the first assignment.
pub fn is_satisfiable(q: &ConjunctiveQuery, d: &Instance) -> Result<bool, QueryError> {
    let mut found = false;
    for_each_assignment(q, d, |_| {
        found = true;
        false
    })?;
    Ok(found)
}

/// All distinct satisfying assignments, each as a tuple of values aligned
/// with `q.body_vars()` order. Used by the boolean-query pricer, which must
/// reason about *witnesses* rather than head projections.
pub fn satisfying_assignments(
    q: &ConjunctiveQuery,
    d: &Instance,
) -> Result<Vec<Tuple>, QueryError> {
    let vars = q.body_vars();
    let mut seen = AnswerSet::default();
    let mut out = Vec::new();
    for_each_assignment(q, d, |binding| {
        #[allow(clippy::expect_used)]
        let t = Tuple::new(vars.iter().map(|v| {
            // audit: allow(R2: the callback fires only on fully bound assignments)
            binding[v.0 as usize].clone().expect("body var bound")
        }));
        if seen.insert(t.clone()) {
            out.push(t);
        }
        true
    })?;
    Ok(out)
}

/// For a **full** CQ, the witness of an answer tuple is unique: every body
/// variable appears in the head, so the answer pins down every atom's base
/// tuple. Returns the instantiated `(relation, tuple)` facts, one per atom.
///
/// Returns `None` if the query is not full, if the answer's arity is wrong,
/// or if a repeated head variable is assigned two different values.
pub fn witness_of(q: &ConjunctiveQuery, answer: &Tuple) -> Option<Vec<(RelId, Tuple)>> {
    if answer.arity() != q.head().len() {
        return None;
    }
    let mut binding: Vec<Option<&Value>> = vec![None; q.num_vars()];
    for (i, &v) in q.head().iter().enumerate() {
        let val = answer.get(i);
        match binding[v.0 as usize] {
            Some(prev) if prev != val => return None,
            _ => binding[v.0 as usize] = Some(val),
        }
    }
    let mut out = Vec::with_capacity(q.atoms().len());
    for atom in q.atoms() {
        let mut vals = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            match t {
                Term::Const(c) => vals.push(c.clone()),
                Term::Var(v) => vals.push(binding[v.0 as usize]?.clone()),
            }
        }
        out.push((atom.rel, Tuple::new(vals)));
    }
    Some(out)
}

/// Drive `f` over every satisfying assignment of `q` on `d` (with possible
/// duplicates if join paths repeat — callers dedup as needed). `f` returns
/// `false` to stop early.
fn for_each_assignment(
    q: &ConjunctiveQuery,
    d: &Instance,
    mut f: impl FnMut(&[Option<Value>]) -> bool,
) -> Result<(), QueryError> {
    // Predicates indexed by variable for eager filtering.
    let mut preds_by_var: Vec<Vec<usize>> = vec![Vec::new(); q.num_vars()];
    for (i, p) in q.preds().iter().enumerate() {
        preds_by_var[p.var.0 as usize].push(i);
    }
    let mut binding: Vec<Option<Value>> = vec![None; q.num_vars()];
    let mut remaining: Vec<usize> = (0..q.atoms().len()).collect();
    recurse(q, d, &mut binding, &mut remaining, &preds_by_var, &mut f)?;
    Ok(())
}

/// Returns `Ok(false)` when the driver asked to stop.
fn recurse(
    q: &ConjunctiveQuery,
    d: &Instance,
    binding: &mut Vec<Option<Value>>,
    remaining: &mut Vec<usize>,
    preds_by_var: &[Vec<usize>],
    f: &mut impl FnMut(&[Option<Value>]) -> bool,
) -> Result<bool, QueryError> {
    let Some(pick_pos) = pick_atom(q, d, binding, remaining) else {
        return Ok(f(binding));
    };
    let atom_idx = remaining.swap_remove(pick_pos);
    let atom = &q.atoms()[atom_idx];
    let rel = d.relation(atom.rel);

    // Candidate tuples: through the index if some term is bound.
    let probe = atom.terms.iter().enumerate().find_map(|(pos, t)| match t {
        Term::Const(c) => Some((pos, c.clone())),
        Term::Var(v) => binding[v.0 as usize].clone().map(|val| (pos, val)),
    });
    let candidates: Vec<&Tuple> = match &probe {
        Some((pos, val)) => rel.select(AttrId(*pos as u32), val).collect(),
        None => rel.iter().collect(),
    };

    'tuples: for t in candidates {
        // Unify, tracking which vars this frame binds.
        let mut newly_bound: Vec<Var> = Vec::new();
        let mut ok = true;
        for (pos, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if t.get(pos) != c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => {
                    let slot = &mut binding[v.0 as usize];
                    match slot {
                        Some(existing) => {
                            if existing != t.get(pos) {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            *slot = Some(t.get(pos).clone());
                            newly_bound.push(*v);
                        }
                    }
                }
            }
        }
        if ok {
            // Eagerly check predicates on newly bound variables.
            for &v in &newly_bound {
                for &pi in &preds_by_var[v.0 as usize] {
                    // A var is in newly_bound exactly when its slot was just
                    // filled; if that ever breaks, reject the assignment.
                    let Some(val) = binding[v.0 as usize].as_ref() else {
                        ok = false;
                        break;
                    };
                    match q.preds()[pi].pred.eval(val) {
                        Ok(true) => {}
                        Ok(false) => {
                            ok = false;
                            break;
                        }
                        Err(e) => {
                            for &v in &newly_bound {
                                binding[v.0 as usize] = None;
                            }
                            remaining.push(atom_idx);
                            let last = remaining.len() - 1;
                            remaining.swap(pick_pos.min(last), last);
                            return Err(e);
                        }
                    }
                }
                if !ok {
                    break;
                }
            }
        }
        if ok && !recurse(q, d, binding, remaining, preds_by_var, f)? {
            for &v in &newly_bound {
                binding[v.0 as usize] = None;
            }
            remaining.push(atom_idx);
            return Ok(false);
        }
        for &v in &newly_bound {
            binding[v.0 as usize] = None;
        }
        if !ok {
            continue 'tuples;
        }
    }
    remaining.push(atom_idx);
    Ok(true)
}

/// Greedy atom choice: most bound terms, then smallest relation.
fn pick_atom(
    q: &ConjunctiveQuery,
    d: &Instance,
    binding: &[Option<Value>],
    remaining: &[usize],
) -> Option<usize> {
    remaining
        .iter()
        .enumerate()
        .max_by_key(|(_, &ai)| {
            let atom: &Atom = &q.atoms()[ai];
            let bound = atom
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => binding[v.0 as usize].is_some(),
                })
                .count();
            let size = d.relation(atom.rel).len();
            // Most bound terms first; among ties, smaller relations first.
            (bound, usize::MAX - size)
        })
        .map(|(pos, _)| pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CqBuilder, Pred};
    use qbdp_catalog::{tuple, Catalog, CatalogBuilder, Column};

    /// The Figure 1 / Example 3.8 database.
    fn figure1() -> (Catalog, Instance) {
        let ax = Column::texts(["a1", "a2", "a3", "a4"]);
        let by = Column::texts(["b1", "b2", "b3"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", ax.clone())])
            .relation("S", &[("X", ax), ("Y", by.clone())])
            .relation("T", &[("Y", by)])
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        let t = cat.schema().rel_id("T").unwrap();
        d.insert_all(r, [tuple!["a1"], tuple!["a2"]]).unwrap();
        d.insert_all(
            s,
            [
                tuple!["a1", "b1"],
                tuple!["a1", "b2"],
                tuple!["a2", "b2"],
                tuple!["a4", "b1"],
            ],
        )
        .unwrap();
        d.insert_all(t, [tuple!["b1"], tuple!["b3"]]).unwrap();
        (cat, d)
    }

    #[test]
    fn figure1_answer() {
        let (cat, d) = figure1();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", &["x"])
            .atom("S", &["x", "y"])
            .atom("T", &["y"])
            .build(cat.schema())
            .unwrap();
        let ans = eval_cq(&q, &d).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple!["a1", "b1"]));
        assert!(is_satisfiable(&q, &d).unwrap());
    }

    #[test]
    fn figure1_partial_queries() {
        let (cat, d) = figure1();
        // Q[0:1](x, y) = R(x), S(x, y) — paper Figure 1(b): three tuples.
        let q01 = CqBuilder::new("Q01")
            .head_vars(["x", "y"])
            .atom("R", &["x"])
            .atom("S", &["x", "y"])
            .build(cat.schema())
            .unwrap();
        let ans = eval_cq(&q01, &d).unwrap();
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&tuple!["a1", "b1"]));
        assert!(ans.contains(&tuple!["a1", "b2"]));
        assert!(ans.contains(&tuple!["a2", "b2"]));
        // Q[1:2](x, y) = S(x, y), T(y) — two tuples.
        let q12 = CqBuilder::new("Q12")
            .head_vars(["x", "y"])
            .atom("S", &["x", "y"])
            .atom("T", &["y"])
            .build(cat.schema())
            .unwrap();
        let ans = eval_cq(&q12, &d).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&tuple!["a1", "b1"]));
        assert!(ans.contains(&tuple!["a4", "b1"]));
    }

    #[test]
    fn projection_and_boolean() {
        let (cat, d) = figure1();
        let proj = CqBuilder::new("P")
            .head_var("x")
            .atom("S", &["x", "y"])
            .build(cat.schema())
            .unwrap();
        let ans = eval_cq(&proj, &d).unwrap();
        assert_eq!(ans.len(), 3); // a1, a2, a4
        let boolean = CqBuilder::new("B")
            .atom("S", &["x", "y"])
            .build(cat.schema())
            .unwrap();
        let ans = eval_cq(&boolean, &d).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Tuple::new([])));
    }

    #[test]
    fn constants_and_predicates() {
        let col = Column::int_range(0, 10);
        let cat = CatalogBuilder::new()
            .uniform_relation("E", &["X", "Y"], &col)
            .build()
            .unwrap();
        let e = cat.schema().rel_id("E").unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(e, (0..10).map(|i| tuple![i, (i * 2) % 10]))
            .unwrap();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("E", &["x", "y"])
            .pred("x", Pred::Ge(5))
            .pred("y", Pred::Lt(5))
            .build(cat.schema())
            .unwrap();
        let ans = eval_cq(&q, &d).unwrap();
        // x in 5..10 with y = 2x mod 10 < 5: x=5 (y=0), x=6 (y=2), x=7 (y=4).
        assert_eq!(ans.len(), 3);
        let qc = CqBuilder::new("Qc")
            .head_var("y")
            .atom_terms("E", [Err(Value::Int(3)), Ok("y".into())])
            .build(cat.schema())
            .unwrap();
        let ans = eval_cq(&qc, &d).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple![6]));
    }

    #[test]
    fn self_join_repeated_var() {
        let col = Column::int_range(0, 5);
        let cat = CatalogBuilder::new()
            .uniform_relation("E", &["X", "Y"], &col)
            .build()
            .unwrap();
        let e = cat.schema().rel_id("E").unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(e, [tuple![1, 2], tuple![2, 1], tuple![3, 3]])
            .unwrap();
        // Triangle-ish: E(x,y), E(y,x).
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("E", &["x", "y"])
            .atom("E", &["y", "x"])
            .build(cat.schema())
            .unwrap();
        let ans = eval_cq(&q, &d).unwrap();
        assert_eq!(ans.len(), 3); // (1,2), (2,1), (3,3)
                                  // Repeated var within an atom: E(x, x).
        let q = CqBuilder::new("Q")
            .head_var("x")
            .atom("E", &["x", "x"])
            .build(cat.schema())
            .unwrap();
        let ans = eval_cq(&q, &d).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple![3]));
    }

    #[test]
    fn witness_of_full_query() {
        let (cat, _) = figure1();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", &["x"])
            .atom("S", &["x", "y"])
            .atom("T", &["y"])
            .build(cat.schema())
            .unwrap();
        let w = witness_of(&q, &tuple!["a1", "b1"]).unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        assert_eq!(w.len(), 3);
        assert!(w.contains(&(s, tuple!["a1", "b1"])));
        // Wrong arity answer.
        assert!(witness_of(&q, &tuple!["a1"]).is_none());
    }

    #[test]
    fn witness_rejects_inconsistent_repeated_head() {
        let col = Column::int_range(0, 5);
        let cat = CatalogBuilder::new()
            .uniform_relation("E", &["X", "Y"], &col)
            .build()
            .unwrap();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "x"])
            .atom("E", &["x", "y"])
            .build(cat.schema())
            .unwrap();
        // Not full (y missing from head): witness on y is unresolvable.
        assert!(witness_of(&q, &tuple![1, 1]).is_none());
        assert!(witness_of(&q, &tuple![1, 2]).is_none());
    }

    #[test]
    fn satisfying_assignments_dedup() {
        let (cat, d) = figure1();
        let q = CqBuilder::new("B")
            .atom("S", &["x", "y"])
            .build(cat.schema())
            .unwrap();
        let assignments = satisfying_assignments(&q, &d).unwrap();
        assert_eq!(assignments.len(), 4); // the four S tuples
    }

    #[test]
    fn ucq_union() {
        let (cat, d) = figure1();
        let q1 = CqBuilder::new("U")
            .head_var("x")
            .atom("R", &["x"])
            .build(cat.schema())
            .unwrap();
        let q2 = CqBuilder::new("U")
            .head_var("y")
            .atom("T", &["y"])
            .build(cat.schema())
            .unwrap();
        let u = Ucq::new(vec![q1, q2]).unwrap();
        let ans = eval_ucq(&u, &d).unwrap();
        assert_eq!(ans.len(), 4); // a1, a2, b1, b3
    }

    #[test]
    fn empty_relation_gives_empty_answer() {
        let (cat, _) = figure1();
        let d = cat.empty_instance();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("S", &["x", "y"])
            .build(cat.schema())
            .unwrap();
        assert!(eval_cq(&q, &d).unwrap().is_empty());
        assert!(!is_satisfiable(&q, &d).unwrap());
    }
}
