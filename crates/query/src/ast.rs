//! Query ASTs: conjunctive queries (CQ), unions of conjunctive queries
//! (UCQ), and interpreted unary predicates.
//!
//! Following the paper (§2.1, §3.1) we consider monotone queries only. A
//! conjunctive query is written `Q(x̄) :- R_1(t̄_1), ..., R_k(t̄_k), C_1, ...`
//! where each `C_j` is an interpreted *unary* predicate over one variable
//! (`x > 10`, `x in {…}`) — binary comparisons like `x < y` are excluded,
//! exactly as in the paper.

use crate::error::QueryError;
use qbdp_catalog::{RelId, Schema, Value};
use std::fmt;

/// A query variable, interned per query (index into the query's name table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term in an atom: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A query variable.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v:?}"),
            Term::Const(c) => write!(f, "{c:?}"),
        }
    }
}

/// A relational atom `R(t_1, ..., t_m)`.
#[derive(Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation.
    pub rel: RelId,
    /// The terms, one per attribute position.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(rel: RelId, terms: impl IntoIterator<Item = Term>) -> Self {
        Atom {
            rel,
            terms: terms.into_iter().collect(),
        }
    }

    /// The distinct variables of the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Positions (0-based) at which `v` occurs.
    pub fn positions_of(&self, v: Var) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, Term::Var(w) if *w == v))
            .map(|(i, _)| i)
            .collect()
    }
}

/// An interpreted unary predicate, evaluable in constant time per value
/// (the paper's `C(x)`: "interpreted unary predicates that can be computed
/// in PTIME", §3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pred {
    /// `x = c`.
    Eq(Value),
    /// `x != c`.
    Ne(Value),
    /// `x < c` (integers only).
    Lt(i64),
    /// `x <= c` (integers only).
    Le(i64),
    /// `x > c` (integers only).
    Gt(i64),
    /// `x >= c` (integers only).
    Ge(i64),
    /// `x in {c_1, ..., c_m}`.
    InSet(Vec<Value>),
}

impl Pred {
    /// Evaluate the predicate on a value. Integer comparisons on text values
    /// are a type error (rather than silently false), surfacing workload
    /// bugs early.
    pub fn eval(&self, v: &Value) -> Result<bool, QueryError> {
        let int = |v: &Value| {
            v.as_int().ok_or_else(|| QueryError::PredicateType {
                pred: format!("{self:?}"),
                value: v.to_string(),
            })
        };
        Ok(match self {
            Pred::Eq(c) => v == c,
            Pred::Ne(c) => v != c,
            Pred::Lt(c) => int(v)? < *c,
            Pred::Le(c) => int(v)? <= *c,
            Pred::Gt(c) => int(v)? > *c,
            Pred::Ge(c) => int(v)? >= *c,
            Pred::InSet(cs) => cs.contains(v),
        })
    }
}

/// A predicate applied to a variable, e.g. `x > 10`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredAtom {
    /// The constrained variable.
    pub var: Var,
    /// The predicate.
    pub pred: Pred,
}

/// A conjunctive query with interpreted unary predicates.
///
/// Invariants (checked at construction):
/// * every head variable occurs in some relational atom (safety),
/// * every predicate variable occurs in some relational atom,
/// * every atom matches its relation's arity in the given schema.
#[derive(Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    name: String,
    head: Vec<Var>,
    atoms: Vec<Atom>,
    preds: Vec<PredAtom>,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Construct and validate a CQ against a schema.
    pub fn new(
        name: impl Into<String>,
        head: Vec<Var>,
        atoms: Vec<Atom>,
        preds: Vec<PredAtom>,
        var_names: Vec<String>,
        schema: &Schema,
    ) -> Result<Self, QueryError> {
        let q = ConjunctiveQuery {
            name: name.into(),
            head,
            atoms,
            preds,
            var_names,
        };
        q.validate(schema)?;
        Ok(q)
    }

    fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        for atom in &self.atoms {
            let rs = schema.relation(atom.rel);
            if atom.terms.len() != rs.arity() {
                return Err(QueryError::ArityMismatch {
                    relation: rs.name().to_string(),
                    expected: rs.arity(),
                    got: atom.terms.len(),
                });
            }
        }
        let body_vars = self.body_vars();
        for &v in &self.head {
            if !body_vars.contains(&v) {
                return Err(QueryError::UnsafeHeadVar(self.var_name(v).to_string()));
            }
        }
        for p in &self.preds {
            if !body_vars.contains(&p.var) {
                return Err(QueryError::UnsafePredVar(self.var_name(p.var).to_string()));
            }
        }
        Ok(())
    }

    /// The query name (head symbol).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Head variables (may repeat).
    pub fn head(&self) -> &[Var] {
        &self.head
    }

    /// Relational atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Interpreted predicates.
    pub fn preds(&self) -> &[PredAtom] {
        &self.preds
    }

    /// Name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// The variable name table (index = `Var` id).
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// Number of interned variables (including ones no longer used).
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Distinct variables occurring in relational atoms, in first-occurrence
    /// order. (`Var(Q)` in the paper.)
    pub fn body_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for a in &self.atoms {
            for v in a.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Head arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// A boolean query has an empty head.
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Rebuild with a different head over the same body (used to "fullify"
    /// boolean queries, dichotomy case 3). The caller must keep the head
    /// safe; this re-checks nothing schema-related since the body is
    /// unchanged.
    pub fn with_head(&self, head: Vec<Var>) -> Result<ConjunctiveQuery, QueryError> {
        let body = self.body_vars();
        for &v in &head {
            if !body.contains(&v) {
                let name = self
                    .var_names
                    .get(v.0 as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("?{}", v.0));
                return Err(QueryError::UnsafeHeadVar(name));
            }
        }
        Ok(ConjunctiveQuery {
            head,
            ..self.clone()
        })
    }

    /// Rebuild with different atoms/predicates over the same variable table.
    /// Used by the normalization steps; re-validates against the schema.
    pub fn with_body(
        &self,
        atoms: Vec<Atom>,
        preds: Vec<PredAtom>,
        schema: &Schema,
    ) -> Result<ConjunctiveQuery, QueryError> {
        ConjunctiveQuery::new(
            self.name.clone(),
            self.head.clone(),
            atoms,
            preds,
            self.var_names.clone(),
            schema,
        )
    }
}

/// A union of conjunctive queries. All disjuncts share the head arity.
#[derive(Clone, PartialEq, Eq)]
pub struct Ucq {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl Ucq {
    /// Build a UCQ; requires ≥1 disjunct and uniform arity.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Result<Self, QueryError> {
        let first = disjuncts.first().ok_or(QueryError::EmptyUnion)?;
        let arity = first.arity();
        if disjuncts.iter().any(|d| d.arity() != arity) {
            return Err(QueryError::MixedArity);
        }
        Ok(Ucq { disjuncts })
    }

    /// A single-disjunct UCQ.
    pub fn single(cq: ConjunctiveQuery) -> Self {
        Ucq {
            disjuncts: vec![cq],
        }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// If this UCQ is a single CQ, borrow it.
    pub fn as_single_cq(&self) -> Option<&ConjunctiveQuery> {
        match self.disjuncts.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }

    /// Head arity.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].arity()
    }

    /// Name (taken from the first disjunct).
    pub fn name(&self) -> &str {
        self.disjuncts[0].name()
    }
}

impl From<ConjunctiveQuery> for Ucq {
    fn from(cq: ConjunctiveQuery) -> Self {
        Ucq::single(cq)
    }
}

/// Incremental CQ builder interning variables by name.
///
/// ```
/// use qbdp_catalog::{CatalogBuilder, Column};
/// use qbdp_query::ast::CqBuilder;
/// let catalog = CatalogBuilder::new()
///     .uniform_relation("R", &["X", "Y"], &Column::int_range(0, 3))
///     .build()
///     .unwrap();
/// let q = CqBuilder::new("Q")
///     .head_var("x")
///     .atom("R", &["x", "y"])
///     .build(catalog.schema())
///     .unwrap();
/// assert_eq!(q.arity(), 1);
/// ```
pub struct CqBuilder {
    name: String,
    head: Vec<String>,
    atoms: Vec<(String, Vec<TermSpec>)>,
    preds: Vec<(String, Pred)>,
}

enum TermSpec {
    Var(String),
    Const(Value),
}

impl CqBuilder {
    /// Start a builder for head symbol `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CqBuilder {
            name: name.into(),
            head: Vec::new(),
            atoms: Vec::new(),
            preds: Vec::new(),
        }
    }

    /// Append a head variable.
    pub fn head_var(mut self, v: impl Into<String>) -> Self {
        self.head.push(v.into());
        self
    }

    /// Append several head variables.
    pub fn head_vars<'a>(mut self, vs: impl IntoIterator<Item = &'a str>) -> Self {
        self.head.extend(vs.into_iter().map(String::from));
        self
    }

    /// Append an atom whose terms are all variables.
    pub fn atom(mut self, rel: impl Into<String>, vars: &[&str]) -> Self {
        self.atoms.push((
            rel.into(),
            vars.iter().map(|v| TermSpec::Var(v.to_string())).collect(),
        ));
        self
    }

    /// Append an atom with mixed variable/constant terms: variables as
    /// `Ok(name)`, constants as `Err(value)`.
    pub fn atom_terms(
        mut self,
        rel: impl Into<String>,
        terms: impl IntoIterator<Item = Result<String, Value>>,
    ) -> Self {
        self.atoms.push((
            rel.into(),
            terms
                .into_iter()
                .map(|t| match t {
                    Ok(v) => TermSpec::Var(v),
                    Err(c) => TermSpec::Const(c),
                })
                .collect(),
        ));
        self
    }

    /// Append an interpreted predicate on a variable.
    pub fn pred(mut self, var: impl Into<String>, pred: Pred) -> Self {
        self.preds.push((var.into(), pred));
        self
    }

    /// Finish, validating against the schema.
    pub fn build(self, schema: &Schema) -> Result<ConjunctiveQuery, QueryError> {
        let mut var_names: Vec<String> = Vec::new();
        let intern = |name: &str, var_names: &mut Vec<String>| -> Var {
            if let Some(i) = var_names.iter().position(|n| n == name) {
                Var(i as u32)
            } else {
                var_names.push(name.to_string());
                Var((var_names.len() - 1) as u32)
            }
        };
        let mut atoms = Vec::with_capacity(self.atoms.len());
        for (rel_name, terms) in &self.atoms {
            let rel = schema
                .rel_id(rel_name)
                .ok_or_else(|| QueryError::UnknownRelation(rel_name.clone()))?;
            let terms = terms
                .iter()
                .map(|t| match t {
                    TermSpec::Var(v) => Term::Var(intern(v, &mut var_names)),
                    TermSpec::Const(c) => Term::Const(c.clone()),
                })
                .collect();
            atoms.push(Atom { rel, terms });
        }
        let head = self
            .head
            .iter()
            .map(|v| intern(v, &mut var_names))
            .collect();
        let preds = self
            .preds
            .iter()
            .map(|(v, p)| PredAtom {
                var: intern(v, &mut var_names),
                pred: p.clone(),
            })
            .collect();
        ConjunctiveQuery::new(self.name, head, atoms, preds, var_names, schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{CatalogBuilder, Column};

    fn schema() -> qbdp_catalog::Catalog {
        let col = Column::int_range(0, 4);
        CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("T", &["Y"], &col)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_interns_vars() {
        let cat = schema();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", &["x"])
            .atom("S", &["x", "y"])
            .atom("T", &["y"])
            .build(cat.schema())
            .unwrap();
        assert_eq!(q.num_vars(), 2);
        assert_eq!(q.body_vars().len(), 2);
        assert_eq!(q.var_name(Var(0)), "x");
        assert!(!q.is_boolean());
    }

    #[test]
    fn safety_enforced() {
        let cat = schema();
        let err = CqBuilder::new("Q")
            .head_var("z")
            .atom("R", &["x"])
            .build(cat.schema());
        assert!(matches!(err, Err(QueryError::UnsafeHeadVar(_))));
        let err = CqBuilder::new("Q")
            .atom("R", &["x"])
            .pred("w", Pred::Gt(0))
            .build(cat.schema());
        assert!(matches!(err, Err(QueryError::UnsafePredVar(_))));
    }

    #[test]
    fn arity_enforced() {
        let cat = schema();
        let err = CqBuilder::new("Q").atom("S", &["x"]).build(cat.schema());
        assert!(matches!(err, Err(QueryError::ArityMismatch { .. })));
    }

    #[test]
    fn unknown_relation() {
        let cat = schema();
        let err = CqBuilder::new("Q").atom("Zed", &["x"]).build(cat.schema());
        assert!(matches!(err, Err(QueryError::UnknownRelation(_))));
    }

    #[test]
    fn predicates_evaluate() {
        assert!(Pred::Gt(3).eval(&Value::Int(4)).unwrap());
        assert!(!Pred::Gt(3).eval(&Value::Int(3)).unwrap());
        assert!(Pred::Ne(Value::text("a")).eval(&Value::text("b")).unwrap());
        assert!(Pred::InSet(vec![Value::Int(1), Value::Int(2)])
            .eval(&Value::Int(2))
            .unwrap());
        assert!(Pred::Lt(3).eval(&Value::text("a")).is_err());
        assert!(Pred::Eq(Value::Int(1)).eval(&Value::Int(1)).unwrap());
        assert!(Pred::Le(2).eval(&Value::Int(2)).unwrap());
        assert!(Pred::Ge(2).eval(&Value::Int(2)).unwrap());
    }

    #[test]
    fn ucq_arity_checked() {
        let cat = schema();
        let q1 = CqBuilder::new("Q")
            .head_var("x")
            .atom("R", &["x"])
            .build(cat.schema())
            .unwrap();
        let q2 = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("S", &["x", "y"])
            .build(cat.schema())
            .unwrap();
        assert!(Ucq::new(vec![q1.clone(), q2]).is_err());
        assert!(Ucq::new(vec![]).is_err());
        let u = Ucq::new(vec![q1.clone(), q1.clone()]).unwrap();
        assert_eq!(u.arity(), 1);
        assert!(u.as_single_cq().is_none());
        assert!(Ucq::single(q1).as_single_cq().is_some());
    }

    #[test]
    fn with_head_fullifies() {
        let cat = schema();
        let boolean = CqBuilder::new("Q")
            .atom("S", &["x", "y"])
            .build(cat.schema())
            .unwrap();
        assert!(boolean.is_boolean());
        let full = boolean.with_head(boolean.body_vars()).unwrap();
        assert_eq!(full.arity(), 2);
        assert!(boolean.with_head(vec![Var(99)]).is_err());
    }

    #[test]
    fn atom_helpers() {
        let cat = schema();
        let q = CqBuilder::new("Q")
            .head_vars(["x"])
            .atom_terms("S", [Ok("x".to_string()), Err(Value::Int(2))])
            .build(cat.schema())
            .unwrap();
        let atom = &q.atoms()[0];
        assert_eq!(atom.vars(), vec![Var(0)]);
        assert_eq!(atom.positions_of(Var(0)), vec![0]);
        assert!(matches!(atom.terms[1], Term::Const(Value::Int(2))));
    }
}
