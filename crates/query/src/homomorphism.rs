//! Classical CQ homomorphisms and containment (Chandra–Merlin).
//!
//! The pricing paper uses containment only negatively: §4 argues that an
//! arbitrage-free pricing function must **not** be monotone w.r.t.
//! containment (otherwise all boolean queries get the same price). This
//! module lets the experiment harness and tests demonstrate `Q1 ⊆ Q2` while
//! `price(Q1) > price(Q2)` (Example 4.1).
//!
//! Containment here is for CQs without interpreted predicates; predicates
//! would need a theory solver and the paper never compares priced queries
//! through them.

use crate::ast::{ConjunctiveQuery, Term, Var};
use qbdp_catalog::Value;

/// A variable mapping from one query into another's terms.
type Mapping = Vec<Option<Term>>;

/// Search for a homomorphism `h : from → to`: a mapping of `from`'s
/// variables to `to`'s terms such that every atom of `from` maps to an atom
/// of `to` and the head of `from` maps to the head of `to` position-wise.
/// Returns the mapping (indexed by `from`'s variable ids) if one exists.
///
/// `Q1 ⊆ Q2` iff a homomorphism `Q2 → Q1` exists (Chandra–Merlin).
pub fn find_homomorphism(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> Option<Mapping> {
    if !from.preds().is_empty() || !to.preds().is_empty() {
        return None; // containment with interpreted predicates unsupported
    }
    if from.head().len() != to.head().len() {
        return None;
    }
    let mut mapping: Mapping = vec![None; from.num_vars()];
    // Head constraint: h(from.head[i]) = to.head[i].
    for (hv, tv) in from.head().iter().zip(to.head()) {
        let target = Term::Var(*tv);
        match &mapping[hv.0 as usize] {
            Some(existing) if *existing != target => return None,
            _ => mapping[hv.0 as usize] = Some(target),
        }
    }
    if map_atoms(from, to, 0, &mut mapping) {
        Some(mapping)
    } else {
        None
    }
}

/// `Q1 ⊆ Q2` (as query results on all databases).
pub fn is_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    find_homomorphism(q2, q1).is_some()
}

/// `Q1 ≡ Q2`.
pub fn is_equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    is_contained_in(q1, q2) && is_contained_in(q2, q1)
}

fn map_atoms(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    atom_idx: usize,
    mapping: &mut Mapping,
) -> bool {
    let Some(atom) = from.atoms().get(atom_idx) else {
        return true;
    };
    for target in to.atoms() {
        if target.rel != atom.rel || target.terms.len() != atom.terms.len() {
            continue;
        }
        // Try mapping `atom` onto `target`.
        let mut bound_here: Vec<Var> = Vec::new();
        let mut ok = true;
        for (t_from, t_to) in atom.terms.iter().zip(&target.terms) {
            match t_from {
                Term::Const(c) => {
                    if !term_equals_const(t_to, c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match &mapping[v.0 as usize] {
                    Some(existing) => {
                        if existing != t_to {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        mapping[v.0 as usize] = Some(t_to.clone());
                        bound_here.push(*v);
                    }
                },
            }
        }
        if ok && map_atoms(from, to, atom_idx + 1, mapping) {
            return true;
        }
        for v in bound_here {
            mapping[v.0 as usize] = None;
        }
    }
    false
}

fn term_equals_const(t: &Term, c: &Value) -> bool {
    matches!(t, Term::Const(d) if d == c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use qbdp_catalog::{Catalog, CatalogBuilder, Column};

    fn cat() -> Catalog {
        let col = Column::int_range(0, 5);
        CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .build()
            .unwrap()
    }

    #[test]
    fn example_4_1_containment() {
        // Q1(x,y) = R(x), S(x,y) ⊆ Q2(x,y) = S(x,y).
        let c = cat();
        let q1 = parse_rule(c.schema(), "Q(x, y) :- R(x), S(x, y)").unwrap();
        let q2 = parse_rule(c.schema(), "Q(x, y) :- S(x, y)").unwrap();
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
        assert!(!is_equivalent(&q1, &q2));
    }

    #[test]
    fn equivalence_up_to_renaming_and_redundancy() {
        let c = cat();
        let q1 = parse_rule(c.schema(), "Q(a) :- R(a)").unwrap();
        let q2 = parse_rule(c.schema(), "Q(z) :- R(z)").unwrap();
        assert!(is_equivalent(&q1, &q2));
        // Redundant atom: S(x,y), S(x,z) ≡ S(x,y) as a projection query.
        let q3 = parse_rule(c.schema(), "Q(x) :- S(x, y), S(x, z)").unwrap();
        let q4 = parse_rule(c.schema(), "Q(x) :- S(x, y)").unwrap();
        assert!(is_equivalent(&q3, &q4));
    }

    #[test]
    fn constants_must_match() {
        let c = cat();
        let q1 = parse_rule(c.schema(), "Q(y) :- S(3, y)").unwrap();
        let q2 = parse_rule(c.schema(), "Q(y) :- S(x, y)").unwrap();
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
        let q3 = parse_rule(c.schema(), "Q(y) :- S(4, y)").unwrap();
        assert!(!is_contained_in(&q1, &q3));
    }

    #[test]
    fn arity_mismatch_not_contained() {
        let c = cat();
        let q1 = parse_rule(c.schema(), "Q(x) :- R(x)").unwrap();
        let q2 = parse_rule(c.schema(), "Q(x, y) :- S(x, y)").unwrap();
        assert!(!is_contained_in(&q1, &q2));
    }

    #[test]
    fn predicates_unsupported() {
        let c = cat();
        let q1 = parse_rule(c.schema(), "Q(x) :- R(x), x > 2").unwrap();
        let q2 = parse_rule(c.schema(), "Q(x) :- R(x)").unwrap();
        assert!(find_homomorphism(&q1, &q2).is_none());
    }
}
