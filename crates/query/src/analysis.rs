//! Structural analysis of conjunctive queries: the properties that drive the
//! dichotomy theorem (Theorem 3.16) and the GChQ algorithm.

use crate::ast::{ConjunctiveQuery, Term, Var};
use qbdp_catalog::FxHashMap;

/// A full conjunctive query has no projections: every variable of the body
/// occurs in the head.
pub fn is_full(q: &ConjunctiveQuery) -> bool {
    let head = q.head();
    q.body_vars().iter().all(|v| head.contains(v))
}

/// A query has a self-join if some relation name occurs in two atoms.
pub fn has_self_join(q: &ConjunctiveQuery) -> bool {
    let atoms = q.atoms();
    for (i, a) in atoms.iter().enumerate() {
        if atoms[..i].iter().any(|b| b.rel == a.rel) {
            return true;
        }
    }
    false
}

/// Whether any atom contains a constant term.
pub fn has_constants(q: &ConjunctiveQuery) -> bool {
    q.atoms()
        .iter()
        .any(|a| a.terms.iter().any(|t| matches!(t, Term::Const(_))))
}

/// Whether any atom contains the same variable at two positions
/// (e.g. `R(x, x, z)` — removed by Step 2 of the GChQ algorithm).
pub fn has_repeated_var_in_atom(q: &ConjunctiveQuery) -> bool {
    q.atoms().iter().any(|a| {
        let vars: Vec<Var> = a.terms.iter().filter_map(Term::as_var).collect();
        (1..vars.len()).any(|i| vars[..i].contains(&vars[i]))
    })
}

/// Occurrences of each variable as `(atom index, position)` pairs.
pub fn var_occurrences(q: &ConjunctiveQuery) -> FxHashMap<Var, Vec<(usize, usize)>> {
    let mut out: FxHashMap<Var, Vec<(usize, usize)>> = FxHashMap::default();
    for (ai, atom) in q.atoms().iter().enumerate() {
        for (pos, t) in atom.terms.iter().enumerate() {
            if let Term::Var(v) = t {
                out.entry(*v).or_default().push((ai, pos));
            }
        }
    }
    out
}

/// Hanging variables: variables occurring in exactly one atom (paper §3.1,
/// Step 3; after Step 2 they occur at exactly one position).
pub fn hanging_vars(q: &ConjunctiveQuery) -> Vec<Var> {
    let mut out: Vec<Var> = var_occurrences(q)
        .into_iter()
        .filter(|(_, occ)| {
            let first_atom = occ[0].0;
            occ.iter().all(|(ai, _)| *ai == first_atom)
        })
        .map(|(v, _)| v)
        .collect();
    out.sort();
    out
}

/// Connected components of the query's atom graph (atoms sharing a variable
/// are connected). Returns groups of atom indices. Atoms without variables
/// (all-constant) form singleton components.
pub fn connected_components(q: &ConjunctiveQuery) -> Vec<Vec<usize>> {
    let n = q.atoms().len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let occ = var_occurrences(q);
    for (_, occs) in occ {
        for w in occs.windows(2) {
            let (a, b) = (find(&mut parent, w[0].0), find(&mut parent, w[1].0));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// Whether the query's atom graph is connected (or has ≤ 1 atom).
pub fn is_connected(q: &ConjunctiveQuery) -> bool {
    connected_components(q).len() <= 1
}

/// Search for a **generalized chain order** of the atoms (Definition 3.6):
/// a sequence such that for every split point `i`, the prefix and suffix
/// share exactly **one** variable. Returns atom indices in chain order, or
/// `None` if no such order exists. Interpreted predicates are ignored, as
/// in the paper.
///
/// Exponential only in the number of atoms (fixed for data complexity);
/// memoizes failing prefixes by their atom-set bitmask.
pub fn find_gchq_order(q: &ConjunctiveQuery) -> Option<Vec<usize>> {
    let n = q.atoms().len();
    if n == 0 {
        return Some(Vec::new());
    }
    assert!(n <= 64, "GChQ search supports at most 64 atoms");
    if n == 1 {
        return Some(vec![0]);
    }
    // Precompute variable sets as bitmasks over interned vars.
    let nv = q.num_vars();
    assert!(nv <= 128, "GChQ search supports at most 128 variables");
    let var_mask = |ai: usize| -> u128 {
        q.atoms()[ai]
            .vars()
            .iter()
            .fold(0u128, |m, v| m | (1u128 << v.0))
    };
    let masks: Vec<u128> = (0..n).map(var_mask).collect();

    let mut dead: qbdp_catalog::FxHashSet<u64> = qbdp_catalog::FxHashSet::default();
    let mut order: Vec<usize> = Vec::with_capacity(n);

    fn rec(
        n: usize,
        masks: &[u128],
        used: u64,
        prefix_vars: u128,
        order: &mut Vec<usize>,
        dead: &mut qbdp_catalog::FxHashSet<u64>,
    ) -> bool {
        if order.len() == n {
            return true;
        }
        if dead.contains(&used) {
            return false;
        }
        for next in 0..n {
            if used & (1 << next) != 0 {
                continue;
            }
            let new_used = used | (1 << next);
            let new_prefix = prefix_vars | masks[next];
            // Suffix variable set: union of masks of unused atoms.
            let mut suffix = 0u128;
            for (j, m) in masks.iter().enumerate() {
                if new_used & (1 << j) == 0 {
                    suffix |= m;
                }
            }
            // Condition: if the suffix is nonempty, prefix ∩ suffix must be a
            // single variable. (When suffix is empty we are done.)
            let ok = if new_used.count_ones() as usize == n {
                true
            } else {
                (new_prefix & suffix).count_ones() == 1
            };
            // Additionally the very first split (before the new atom) was
            // already checked at the previous level; nothing more to do.
            if ok {
                order.push(next);
                if rec(n, masks, new_used, new_prefix, order, dead) {
                    return true;
                }
                order.pop();
            }
        }
        dead.insert(used);
        false
    }

    if rec(n, &masks, 0, 0, &mut order, &mut dead) {
        Some(order)
    } else {
        None
    }
}

/// Whether the query is a generalized chain query: full, without self-joins,
/// and admitting a chain order (Definition 3.6).
pub fn is_gchq(q: &ConjunctiveQuery) -> bool {
    is_full(q) && !has_self_join(q) && find_gchq_order(q).is_some()
}

/// Whether the query (ignoring unary predicates) is the cycle query
/// `C_k(x_1..x_k) = R_1(x_1,x_2), ..., R_k(x_k,x_1)` for some `k ≥ 2`
/// (Theorem 3.15), up to atom order, variable names, **and per-relation
/// attribute orientation** (flipping one relation's two columns is an
/// isomorphism of the pricing problem, so `A(u,v), C(u,v)` counts as `C_2`).
///
/// Returns the atoms in cycle order together with each atom's orientation:
/// `(atom index, flipped)` where `flipped` means the atom is traversed from
/// its second attribute to its first.
pub fn cycle_order(q: &ConjunctiveQuery) -> Option<Vec<(usize, bool)>> {
    let atoms = q.atoms();
    let k = atoms.len();
    if k < 2 || has_self_join(q) || !is_full(q) {
        return None;
    }
    // Every atom binary with two distinct variables; every variable in
    // exactly two atoms.
    for a in atoms {
        if a.terms.len() != 2 || a.vars().len() != 2 {
            return None;
        }
    }
    let occ = var_occurrences(q);
    if occ.len() != k || occ.values().any(|o| o.len() != 2) {
        return None;
    }
    // Walk the cycle by shared variables, recording orientation.
    let mut order: Vec<(usize, bool)> = Vec::with_capacity(k);
    let mut seen = 1u64;
    // Start at atom 0, entering through its first variable.
    let entry0 = atoms[0].terms[0].as_var()?;
    let mut cur = 0usize;
    let mut entry = entry0;
    loop {
        let vs = atoms[cur].vars();
        let flipped = vs[1] == entry;
        let exit = if flipped { vs[0] } else { vs[1] };
        order.push((cur, flipped));
        if order.len() == k {
            // Close the cycle.
            return (exit == entry0).then_some(order);
        }
        let next = occ[&exit].iter().map(|&(ai, _)| ai).find(|&ai| ai != cur)?;
        if seen & (1 << next) != 0 {
            return None;
        }
        seen |= 1 << next;
        entry = exit;
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CqBuilder;
    use qbdp_catalog::{Catalog, CatalogBuilder, Column};

    fn cat() -> Catalog {
        let col = Column::int_range(0, 3);
        CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .uniform_relation("S", &["X", "Y", "Z"], &col)
            .uniform_relation("T", &["X"], &col)
            .uniform_relation("U", &["X", "Y"], &col)
            .uniform_relation("P", &["X", "Y"], &col)
            .uniform_relation("W", &["X", "Y"], &col)
            .build()
            .unwrap()
    }

    #[test]
    fn fullness() {
        let c = cat();
        let full = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", &["x", "y"])
            .build(c.schema())
            .unwrap();
        assert!(is_full(&full));
        let proj = CqBuilder::new("Q")
            .head_var("x")
            .atom("R", &["x", "y"])
            .build(c.schema())
            .unwrap();
        assert!(!is_full(&proj));
        let boolean = CqBuilder::new("Q")
            .atom("R", &["x", "y"])
            .build(c.schema())
            .unwrap();
        assert!(!is_full(&boolean) && boolean.is_boolean());
    }

    #[test]
    fn self_joins() {
        let c = cat();
        // H3(x, y) = R(x), S(x, y), R(y) shape (self-join on T here).
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("T", &["x"])
            .atom("R", &["x", "y"])
            .atom("T", &["y"])
            .build(c.schema())
            .unwrap();
        assert!(has_self_join(&q));
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", &["x", "y"])
            .build(c.schema())
            .unwrap();
        assert!(!has_self_join(&q));
    }

    #[test]
    fn repeated_vars_and_constants() {
        let c = cat();
        let q = CqBuilder::new("Q")
            .head_var("x")
            .atom("R", &["x", "x"])
            .build(c.schema())
            .unwrap();
        assert!(has_repeated_var_in_atom(&q));
        let q = CqBuilder::new("Q")
            .head_var("x")
            .atom_terms("R", [Ok("x".into()), Err(qbdp_catalog::Value::Int(1))])
            .build(c.schema())
            .unwrap();
        assert!(has_constants(&q));
        assert!(!has_repeated_var_in_atom(&q));
    }

    #[test]
    fn hanging() {
        let c = cat();
        // Q(x,y,z) = R(x,y), U(y,z): x and z hang, y joins.
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y", "z"])
            .atom("R", &["x", "y"])
            .atom("U", &["y", "z"])
            .build(c.schema())
            .unwrap();
        let mut h: Vec<&str> = hanging_vars(&q).iter().map(|&v| q.var_name(v)).collect();
        h.sort();
        assert_eq!(h, ["x", "z"]);
    }

    #[test]
    fn components() {
        let c = cat();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y", "u", "v"])
            .atom("R", &["x", "y"])
            .atom("U", &["u", "v"])
            .build(c.schema())
            .unwrap();
        assert_eq!(connected_components(&q).len(), 2);
        assert!(!is_connected(&q));
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y", "z"])
            .atom("R", &["x", "y"])
            .atom("U", &["y", "z"])
            .build(c.schema())
            .unwrap();
        assert!(is_connected(&q));
    }

    #[test]
    fn gchq_path_and_star() {
        let c = cat();
        // Path join: R(x,y), U(y,z), P(z,u).
        let path = CqBuilder::new("Q")
            .head_vars(["x", "y", "z", "u"])
            .atom("R", &["x", "y"])
            .atom("U", &["y", "z"])
            .atom("P", &["z", "u"])
            .build(c.schema())
            .unwrap();
        assert!(is_gchq(&path));
        // Star join: R(x,y), S(x,z,u), U(x,v) — GChQ per the paper.
        let star = CqBuilder::new("Q")
            .head_vars(["x", "y", "z", "u", "v"])
            .atom("R", &["x", "y"])
            .atom("S", &["x", "z", "u"])
            .atom("U", &["x", "v"])
            .build(c.schema())
            .unwrap();
        assert!(is_gchq(&star));
    }

    #[test]
    fn gchq_rejects_h1_h2_shapes() {
        let c = cat();
        // H1(x,y,z) = S(x,y,z), T(x), T'(y), T''(z) — use distinct unary rels
        // via R/U/P as stand-ins with dummy second var? Instead build exactly:
        // S(x,y,z), T(x), and pretend two more unaries by W(y,y)? Keep it
        // faithful with what the schema has: S(x,y,z), T(x) has order; add
        // R(y, y2)? Simplest honest check: H2(x,y) = T(x), R(x,y), U(x,y):
        // prefix/suffix cuts share two variables.
        let h2 = CqBuilder::new("H2")
            .head_vars(["x", "y"])
            .atom("T", &["x"])
            .atom("R", &["x", "y"])
            .atom("U", &["x", "y"])
            .build(c.schema())
            .unwrap();
        assert!(find_gchq_order(&h2).is_none());
        assert!(!is_gchq(&h2));
    }

    #[test]
    fn gchq_example_q2_from_paper() {
        // Q3(x,y,z,u,v,w) = R(x,y), S(y,u,v,z), U(z,w), T(w) — paper's Q3.
        let col = Column::int_range(0, 3);
        let c = CatalogBuilder::new()
            .uniform_relation("R", &["A", "B"], &col)
            .uniform_relation("S", &["A", "B", "C", "D"], &col)
            .uniform_relation("U", &["A", "B"], &col)
            .uniform_relation("T", &["A"], &col)
            .build()
            .unwrap();
        let q3 = CqBuilder::new("Q3")
            .head_vars(["x", "y", "z", "u", "v", "w"])
            .atom("R", &["x", "y"])
            .atom("S", &["y", "u", "v", "z"])
            .atom("U", &["z", "w"])
            .atom("T", &["w"])
            .build(c.schema())
            .unwrap();
        assert!(is_gchq(&q3));
    }

    #[test]
    fn single_atom_is_gchq() {
        let c = cat();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y", "z"])
            .atom("S", &["x", "y", "z"])
            .build(c.schema())
            .unwrap();
        assert!(is_gchq(&q));
    }

    #[test]
    fn cycles() {
        let c = cat();
        // C2: R(x,y), U(y,x).
        let c2 = CqBuilder::new("C2")
            .head_vars(["x", "y"])
            .atom("R", &["x", "y"])
            .atom("U", &["y", "x"])
            .build(c.schema())
            .unwrap();
        let order = cycle_order(&c2).unwrap();
        assert_eq!(order.len(), 2);
        // C3: R(x,y), U(y,z), P(z,x).
        let c3 = CqBuilder::new("C3")
            .head_vars(["x", "y", "z"])
            .atom("R", &["x", "y"])
            .atom("U", &["y", "z"])
            .atom("P", &["z", "x"])
            .build(c.schema())
            .unwrap();
        assert_eq!(cycle_order(&c3).unwrap().len(), 3);
        // A path is not a cycle.
        let path = CqBuilder::new("Q")
            .head_vars(["x", "y", "z"])
            .atom("R", &["x", "y"])
            .atom("U", &["y", "z"])
            .build(c.schema())
            .unwrap();
        assert!(cycle_order(&path).is_none());
        // C2 is not a GChQ (cut shares two variables).
        assert!(!is_gchq(&c2));
        // C3 is not a GChQ either.
        assert!(!is_gchq(&c3));
    }

    #[test]
    fn var_occurrence_counts() {
        let c = cat();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", &["x", "y"])
            .atom("U", &["y", "x"])
            .build(c.schema())
            .unwrap();
        let occ = var_occurrences(&q);
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[&Var(0)].len(), 2);
    }

    use crate::ast::Var;
}
