//! Property test: the join-based evaluator agrees with a brute-force
//! reference evaluator (enumerate every assignment over the active domain ∪
//! columns) on randomized queries and databases.

use proptest::prelude::*;
use qbdp_catalog::{Catalog, CatalogBuilder, Column, FxHashSet, Instance, Tuple, Value};
use qbdp_query::ast::{ConjunctiveQuery, Term};
use qbdp_query::eval::eval_cq;
use qbdp_query::parser::parse_rule;

/// Brute-force evaluation: try every assignment of body variables to
/// column values.
fn eval_naive(catalog: &Catalog, q: &ConjunctiveQuery, d: &Instance) -> FxHashSet<Tuple> {
    let vars = q.body_vars();
    // Candidate values per variable: union of the columns at its positions
    // (a superset of the intersection — harmless for evaluation, since
    // atoms filter).
    let mut candidates: Vec<Vec<Value>> = Vec::new();
    for &v in &vars {
        let mut vals: Vec<Value> = Vec::new();
        for (ai, atom) in q.atoms().iter().enumerate() {
            for pos in atom.positions_of(v) {
                let attr = qbdp_catalog::AttrRef::new(q.atoms()[ai].rel, pos as u32);
                for value in catalog.column(attr).iter() {
                    if !vals.contains(value) {
                        vals.push(value.clone());
                    }
                }
            }
        }
        candidates.push(vals);
    }
    let mut out = FxHashSet::default();
    let mut idx = vec![0usize; vars.len()];
    'outer: loop {
        // Check the assignment.
        let value_of = |v| {
            let i = vars.iter().position(|&w| w == v).unwrap();
            candidates[i][idx[i]].clone()
        };
        let mut ok = true;
        for atom in q.atoms() {
            let t = Tuple::new(atom.terms.iter().map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => value_of(*v),
            }));
            if !d.relation(atom.rel).contains(&t) {
                ok = false;
                break;
            }
        }
        if ok {
            for p in q.preds() {
                if !p.pred.eval(&value_of(p.var)).unwrap_or(false) {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            out.insert(Tuple::new(q.head().iter().map(|&v| value_of(v))));
        }
        // Odometer.
        let mut pos = vars.len();
        loop {
            if pos == 0 {
                break 'outer;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < candidates[pos].len() {
                break;
            }
            idx[pos] = 0;
        }
        if vars.is_empty() {
            break;
        }
    }
    // No variables: single empty assignment handled by the loop body once.
    out
}

fn catalog3() -> Catalog {
    let col = Column::int_range(0, 3);
    CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["X", "Y"], &col)
        .build()
        .unwrap()
}

#[derive(Debug, Clone)]
struct Db {
    r: Vec<i64>,
    s: Vec<(i64, i64)>,
    t: Vec<(i64, i64)>,
}

fn db_strategy() -> impl Strategy<Value = Db> {
    (
        proptest::collection::vec(0..3i64, 0..4),
        proptest::collection::vec((0..3i64, 0..3i64), 0..7),
        proptest::collection::vec((0..3i64, 0..3i64), 0..7),
    )
        .prop_map(|(r, s, t)| Db { r, s, t })
}

fn build(cat: &Catalog, db: &Db) -> Instance {
    let mut d = cat.empty_instance();
    for &x in &db.r {
        let _ = d.insert(cat.schema().rel_id("R").unwrap(), qbdp_catalog::tuple![x]);
    }
    for &(x, y) in &db.s {
        let _ = d.insert(
            cat.schema().rel_id("S").unwrap(),
            qbdp_catalog::tuple![x, y],
        );
    }
    for &(x, y) in &db.t {
        let _ = d.insert(
            cat.schema().rel_id("T").unwrap(),
            qbdp_catalog::tuple![x, y],
        );
    }
    d
}

const QUERIES: &[&str] = &[
    "Q(x, y) :- R(x), S(x, y)",
    "Q(x, y, z) :- S(x, y), T(y, z)",
    "Q(x) :- S(x, y), T(y, x)",
    "Q(x, y) :- S(x, y), T(x, y)",
    "Q() :- S(x, y), R(y)",
    "Q(x) :- S(x, x)",
    "Q(y) :- S(1, y), R(y)",
    "Q(x, y) :- S(x, y), x > 0, y != 2",
    "Q(x, y, z, w) :- S(x, y), T(z, w)",
    "Q(x, y) :- S(x, y), S(y, x)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn evaluator_matches_naive_reference(db in db_strategy()) {
        let cat = catalog3();
        let d = build(&cat, &db);
        for src in QUERIES {
            let q = parse_rule(cat.schema(), src).unwrap();
            let fast = eval_cq(&q, &d).unwrap();
            let slow = eval_naive(&cat, &q, &d);
            prop_assert_eq!(&fast, &slow, "query `{}` on {:?}", src, db);
        }
    }

    #[test]
    fn satisfiable_iff_nonempty(db in db_strategy()) {
        let cat = catalog3();
        let d = build(&cat, &db);
        for src in QUERIES {
            let q = parse_rule(cat.schema(), src).unwrap();
            let nonempty = !eval_cq(&q, &d).unwrap().is_empty();
            prop_assert_eq!(qbdp_query::eval::is_satisfiable(&q, &d).unwrap(), nonempty);
        }
    }
}
