//! Property tests for the query surface syntax: randomly generated CQs
//! render to text that re-parses to the identical query.

use proptest::prelude::*;
use qbdp_catalog::{Catalog, CatalogBuilder, Column, Value};
use qbdp_query::ast::{CqBuilder, Pred};
use qbdp_query::parser::parse_rule;
use qbdp_query::pretty::render;

fn catalog() -> Catalog {
    let col = Column::int_range(0, 5);
    CatalogBuilder::new()
        .uniform_relation("R0", &["X"], &col)
        .uniform_relation("R1", &["X", "Y"], &col)
        .uniform_relation("R2", &["X", "Y"], &col)
        .uniform_relation("R3", &["X", "Y", "Z"], &col)
        .build()
        .unwrap()
}

#[derive(Debug, Clone)]
struct RandomQuery {
    /// Per atom: (relation index 0..4, variable indices into a pool).
    atoms: Vec<(usize, Vec<usize>)>,
    /// Predicate choices: (variable pool index, predicate tag, constant).
    preds: Vec<(usize, usize, i64)>,
    /// Which pool variables go into the head.
    head: Vec<usize>,
}

fn query_strategy() -> impl Strategy<Value = RandomQuery> {
    let arities = [1usize, 2, 2, 3];
    let atom = (0usize..4).prop_flat_map(move |rel| {
        proptest::collection::vec(0usize..6, arities[rel]..=arities[rel])
            .prop_map(move |vars| (rel, vars))
    });
    (
        proptest::collection::vec(atom, 1..4),
        proptest::collection::vec((0usize..6, 0usize..5, 0i64..5), 0..3),
        proptest::collection::vec(0usize..6, 0..4),
    )
        .prop_map(|(atoms, preds, head)| RandomQuery { atoms, preds, head })
}

fn build(cat: &Catalog, rq: &RandomQuery) -> Option<qbdp_query::ast::ConjunctiveQuery> {
    let names = ["R0", "R1", "R2", "R3"];
    let pool = ["v0", "v1", "v2", "v3", "v4", "v5"];
    // Head vars must occur in the body (safety): filter.
    let body_vars: Vec<usize> = rq
        .atoms
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .collect();
    let mut b = CqBuilder::new("Q");
    for &h in &rq.head {
        if body_vars.contains(&h) {
            b = b.head_var(pool[h]);
        }
    }
    for (rel, vs) in &rq.atoms {
        let args: Vec<&str> = vs.iter().map(|&v| pool[v]).collect();
        b = b.atom(names[*rel], &args);
    }
    for &(v, tag, c) in &rq.preds {
        if !body_vars.contains(&v) {
            continue;
        }
        let pred = match tag {
            0 => Pred::Gt(c),
            1 => Pred::Lt(c),
            2 => Pred::Ne(Value::Int(c)),
            3 => Pred::InSet(vec![Value::Int(c), Value::Int(c + 1)]),
            _ => Pred::Eq(Value::Int(c)),
        };
        b = b.pred(pool[v], pred);
    }
    b.build(cat.schema()).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn render_reparse_roundtrip(rq in query_strategy()) {
        let cat = catalog();
        let Some(q) = build(&cat, &rq) else { return Ok(()) };
        let text = render(&q, cat.schema());
        let reparsed = parse_rule(cat.schema(), &text)
            .unwrap_or_else(|e| panic!("rendered `{text}` failed to parse: {e}"));
        // Structural equality up to variable ids: compare by re-rendering.
        prop_assert_eq!(render(&reparsed, cat.schema()), text);
        // And semantics: same answers on a fixed instance.
        let mut d = cat.empty_instance();
        for (rid, rel) in cat.schema().iter() {
            let arity = rel.arity();
            for k in 0..3i64 {
                let t = qbdp_catalog::Tuple::new((0..arity).map(|i| Value::Int((k + i as i64) % 5)));
                let _ = d.insert(rid, t);
            }
        }
        let a1 = qbdp_query::eval::eval_cq(&q, &d).unwrap();
        let a2 = qbdp_query::eval::eval_cq(&reparsed, &d).unwrap();
        prop_assert_eq!(a1, a2);
    }
}
