//! Pricing schemes for generated catalogs.

use qbdp_catalog::{AttrRef, Catalog};
use qbdp_core::price_points::PriceList;
use qbdp_core::Price;
use qbdp_determinacy::selection::SelectionView;
use rand::Rng;

/// Every selection view at one price (Example 3.8 uses $1 everywhere).
pub fn uniform(catalog: &Catalog, price: Price) -> PriceList {
    PriceList::uniform(catalog, price)
}

/// Random per-view prices in `[lo, hi]` dollars. Always fully covering, so
/// every query stays finitely priced.
pub fn random(catalog: &Catalog, rng: &mut impl Rng, lo: u64, hi: u64) -> PriceList {
    let mut pl = PriceList::new();
    for attr in catalog.schema().all_attrs() {
        for v in catalog.column(attr).iter() {
            pl.set(
                SelectionView::new(attr, v.clone()),
                Price::dollars(rng.gen_range(lo..=hi)),
            );
        }
    }
    pl
}

/// Tiered prices: attribute 0 of every relation is "retail" (expensive),
/// later attributes are discounted — a shape that makes full covers of
/// different attributes genuinely compete, like CustomLists' state-vs-email
/// subsets.
pub fn tiered(catalog: &Catalog, retail: Price, discount: Price) -> PriceList {
    let mut pl = PriceList::new();
    for (rid, rel) in catalog.schema().iter() {
        for pos in 0..rel.arity() {
            let attr = AttrRef::new(rid, pos as u32);
            let price = if pos == 0 { retail } else { discount };
            for v in catalog.column(attr).iter() {
                pl.set(SelectionView::new(attr, v.clone()), price);
            }
        }
    }
    pl
}

/// A price list with deliberate arbitrage (for the consistency
/// experiments): one selection priced above the full cover of the other
/// attribute of a binary relation. Returns `None` if the catalog has no
/// binary-or-wider relation.
pub fn with_arbitrage(catalog: &Catalog, base: Price) -> Option<PriceList> {
    let mut pl = PriceList::uniform(catalog, base);
    let (rid, rel) = catalog.schema().iter().find(|(_, r)| r.arity() >= 2)?;
    let other_cover: Price = (0..catalog.column(AttrRef::new(rid, 1)).len())
        .map(|_| base)
        .sum();
    let overpriced = other_cover.saturating_add(Price::dollars(1));
    let attr0 = AttrRef::new(rid, 0);
    let value = catalog.column(attr0).iter().next()?.clone();
    let _ = rel;
    pl.set(SelectionView::new(attr0, value), overpriced);
    Some(pl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::chain_schema;
    use qbdp_core::consistency::list_is_consistent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_and_random_are_consistent() {
        let qs = chain_schema(2, 4).unwrap();
        assert!(list_is_consistent(
            &qs.catalog,
            &uniform(&qs.catalog, Price::dollars(2))
        ));
        let mut rng = StdRng::seed_from_u64(5);
        // Random prices may violate Prop 3.2 when a view exceeds a full
        // cover; with lo=hi they cannot.
        assert!(list_is_consistent(
            &qs.catalog,
            &random(&qs.catalog, &mut rng, 3, 3)
        ));
    }

    #[test]
    fn tiered_covers_everything() {
        let qs = chain_schema(2, 4).unwrap();
        let pl = tiered(&qs.catalog, Price::dollars(10), Price::dollars(2));
        assert!(pl.sells_identity(&qs.catalog));
    }

    #[test]
    fn engineered_arbitrage_detected() {
        let qs = chain_schema(1, 4).unwrap();
        let pl = with_arbitrage(&qs.catalog, Price::dollars(1)).unwrap();
        assert!(!list_is_consistent(&qs.catalog, &pl));
    }
}
