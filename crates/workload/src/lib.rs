#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! # qbdp-workload — generators and named scenarios
//!
//! Deterministic (seeded) generators for databases, query families, and
//! pricing schemes, plus two realistic scenarios modeled on the
//! marketplaces the paper cites:
//!
//! * [`scenarios::business`] — a CustomLists-style USA business directory
//!   (per-state and per-county selection prices, the paper's §1 example);
//! * [`scenarios::sports`] — an Infochimps-style MLB data market
//!   (Team/Game selection APIs).
//!
//! All randomness flows through [`rand`] with caller-provided seeds so
//! benches and property tests are reproducible.

pub mod dbgen;
pub mod error;
pub mod prices;
pub mod queries;
pub mod scenarios;
pub mod zipf;

pub use dbgen::{populate_random, populate_zipf};
pub use error::WorkloadError;
pub use queries::{
    chain_schema, cycle_schema, h1_schema, h2_schema, h4_schema, star_schema, QuerySet,
};
pub use zipf::Zipf;
