//! Named, realistic scenarios modeled on the data markets the paper cites.

use crate::error::WorkloadError;
use qbdp_catalog::{Catalog, CatalogError, RelId};

pub mod business;
pub mod sports;
pub mod webgraph;

/// Resolve a relation the generator itself declared a few lines up.
pub(crate) fn lookup(catalog: &Catalog, name: &str) -> Result<RelId, WorkloadError> {
    catalog
        .schema()
        .rel_id(name)
        .ok_or_else(|| WorkloadError::Catalog(CatalogError::UnknownRelation(name.to_string())))
}
