//! Named, realistic scenarios modeled on the data markets the paper cites.

pub mod business;
pub mod sports;
pub mod webgraph;
