//! The USA business directory of the paper's introduction, modeled on
//! CustomLists: `Business(name, state, county)` plus a `Restaurant(name)`
//! tag relation, with per-state selection prices (the "$199 per state"
//! model) and per-county prices.
//!
//! The arbitrage anecdote of §1 reproduces directly: when some fraction of
//! a state's counties hold no businesses, buying the remaining counties is
//! cheaper than buying the state yet yields the same information.

use super::lookup;
use crate::error::WorkloadError;
use qbdp_catalog::{Catalog, CatalogBuilder, Column, Instance, Tuple, Value};
use qbdp_core::price_points::PriceList;
use qbdp_core::Price;
use qbdp_determinacy::selection::SelectionView;
use rand::Rng;

/// A generated business-directory market.
pub struct BusinessMarket {
    /// Schema + columns: `Business(Name, State, County)`, `Restaurant(Name)`.
    pub catalog: Catalog,
    /// The data.
    pub instance: Instance,
    /// Selection prices: per-state, per-county, per-name (cheap).
    pub prices: PriceList,
    /// The state codes, `S0..`.
    pub states: Vec<String>,
    /// County names per state, `S3_C2`-style.
    pub counties: Vec<String>,
}

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct BusinessConfig {
    /// Number of states (CustomLists sells 50).
    pub states: usize,
    /// Counties per state.
    pub counties_per_state: usize,
    /// Businesses to draw.
    pub businesses: usize,
    /// Fraction of counties left empty (drives the §1 arbitrage).
    pub empty_county_fraction: f64,
    /// Price per state view.
    pub state_price: Price,
    /// Price per county view.
    pub county_price: Price,
    /// Price per single-business (name) lookup. Must be high enough that
    /// the full name cover does not undercut a state view (Prop 3.2) —
    /// `generate` bumps it automatically if not.
    pub name_price: Price,
}

impl Default for BusinessConfig {
    fn default() -> Self {
        BusinessConfig {
            states: 10,
            counties_per_state: 6,
            businesses: 400,
            empty_county_fraction: 0.3,
            state_price: Price::dollars(199),
            county_price: Price::dollars(49),
            name_price: Price::dollars(2),
        }
    }
}

/// Generate the market.
pub fn generate(
    rng: &mut impl Rng,
    config: BusinessConfig,
) -> Result<BusinessMarket, WorkloadError> {
    let states: Vec<String> = (0..config.states).map(|i| format!("S{i}")).collect();
    let counties: Vec<String> = (0..config.states)
        .flat_map(|s| (0..config.counties_per_state).map(move |c| format!("S{s}_C{c}")))
        .collect();
    let names: Vec<String> = (0..config.businesses).map(|i| format!("biz{i}")).collect();

    let name_col = Column::texts(names.iter().map(String::as_str));
    let state_col = Column::texts(states.iter().map(String::as_str));
    let county_col = Column::texts(counties.iter().map(String::as_str));

    let catalog = CatalogBuilder::new()
        .relation(
            "Business",
            &[
                ("Name", name_col.clone()),
                ("State", state_col),
                ("County", county_col),
            ],
        )
        .relation("Restaurant", &[("Name", name_col)])
        .build()?;

    // Mark a deterministic subset of counties empty.
    let live_counties: Vec<Vec<usize>> = (0..config.states)
        .map(|_| {
            (0..config.counties_per_state)
                .filter(|_| !rng.gen_bool(config.empty_county_fraction))
                .collect()
        })
        .collect();

    let mut instance = catalog.empty_instance();
    let business = lookup(&catalog, "Business")?;
    let restaurant = lookup(&catalog, "Restaurant")?;
    for name in &names {
        let s = rng.gen_range(0..config.states);
        let live = &live_counties[s];
        if live.is_empty() {
            continue; // a state whose every county is empty holds nothing
        }
        let c = live[rng.gen_range(0..live.len())];
        instance.insert(
            business,
            Tuple::new([
                Value::text(name.as_str()),
                Value::text(format!("S{s}")),
                Value::text(format!("S{s}_C{c}")),
            ]),
        )?;
        if rng.gen_bool(0.25) {
            instance.insert(restaurant, Tuple::new([Value::text(name.as_str())]))?;
        }
    }

    // Prices: states $199 by default, counties $49, names per config (the
    // "buy one business record" API), restaurant tags 10¢. Proposition 3.2
    // constrains the name price: the full Name cover must not undercut any
    // state or county selection, so bump it if the config is too low.
    let covers_needed = config.state_price.max(config.county_price);
    let min_name_cents = covers_needed.as_cents() / (config.businesses as u64).max(1) + 1;
    let name_price = config.name_price.max(Price::cents(min_name_cents));
    let mut prices = PriceList::new();
    let name_attr = catalog.schema().resolve_attr("Business.Name")?;
    let state_attr = catalog.schema().resolve_attr("Business.State")?;
    let county_attr = catalog.schema().resolve_attr("Business.County")?;
    let rest_attr = catalog.schema().resolve_attr("Restaurant.Name")?;
    for v in catalog.column(name_attr).iter() {
        prices.set(SelectionView::new(name_attr, v.clone()), name_price);
    }
    for v in catalog.column(state_attr).iter() {
        prices.set(
            SelectionView::new(state_attr, v.clone()),
            config.state_price,
        );
    }
    for v in catalog.column(county_attr).iter() {
        prices.set(
            SelectionView::new(county_attr, v.clone()),
            config.county_price,
        );
    }
    for v in catalog.column(rest_attr).iter() {
        prices.set(SelectionView::new(rest_attr, v.clone()), Price::cents(10));
    }

    Ok(BusinessMarket {
        catalog,
        instance,
        prices,
        states,
        counties,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_valid_market() {
        let mut rng = StdRng::seed_from_u64(2012);
        let m = generate(&mut rng, BusinessConfig::default()).unwrap();
        assert!(m.catalog.check_instance(&m.instance).is_ok());
        assert!(m.prices.sells_identity(&m.catalog));
        assert!(qbdp_core::consistency::list_is_consistent(
            &m.catalog, &m.prices
        ));
        let business = m.catalog.schema().rel_id("Business").unwrap();
        assert!(m.instance.relation(business).len() > 100);
    }

    #[test]
    fn some_counties_are_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = generate(&mut rng, BusinessConfig::default()).unwrap();
        let county_attr = m.catalog.schema().resolve_attr("Business.County").unwrap();
        let business = county_attr.rel;
        let empty = m
            .catalog
            .column(county_attr)
            .iter()
            .filter(|c| {
                m.instance
                    .relation(business)
                    .select_count(county_attr.attr, c)
                    == 0
            })
            .count();
        assert!(empty > 0, "expected some empty counties");
    }
}
