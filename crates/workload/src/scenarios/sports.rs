//! An Infochimps-style MLB data market (paper §3, "The Views"): selection
//! APIs keyed by team name, team id, and game id.
//!
//! Schema:
//! * `Team(name, team_id)` — the MLB Baseball API ("given an MLB team name,
//!   retrieve … team ids");
//! * `Stats(team_id, wins, losses)` — the Team API;
//! * `Game(game_id, team_id, attendance)` — the Game API.
//!
//! Chain queries join the three ("attendance of every game of the team
//! named T"), which the GChQ algorithm prices in PTIME.

use super::lookup;
use crate::error::WorkloadError;
use qbdp_catalog::{Catalog, CatalogBuilder, Column, Instance, Tuple, Value};
use qbdp_core::price_points::PriceList;
use qbdp_core::Price;
use qbdp_determinacy::selection::SelectionView;
use rand::Rng;

/// A generated sports market.
pub struct SportsMarket {
    /// Schema + columns.
    pub catalog: Catalog,
    /// The data.
    pub instance: Instance,
    /// Per-API selection prices.
    pub prices: PriceList,
}

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SportsConfig {
    /// Number of teams (MLB has 30).
    pub teams: usize,
    /// Games to draw.
    pub games: usize,
    /// Price of one team-name lookup.
    pub team_api_price: Price,
    /// Price of one team-id stats lookup.
    pub stats_api_price: Price,
    /// Price of one game lookup.
    pub game_api_price: Price,
}

impl Default for SportsConfig {
    fn default() -> Self {
        SportsConfig {
            teams: 12,
            games: 60,
            team_api_price: Price::dollars(2),
            stats_api_price: Price::dollars(3),
            game_api_price: Price::dollars(1),
        }
    }
}

/// Generate the market.
pub fn generate(rng: &mut impl Rng, config: SportsConfig) -> Result<SportsMarket, WorkloadError> {
    let team_names: Vec<String> = (0..config.teams).map(|i| format!("team{i}")).collect();
    let name_col = Column::texts(team_names.iter().map(String::as_str));
    let team_id_col = Column::int_range(100, 100 + config.teams as i64);
    let game_id_col = Column::int_range(0, config.games as i64);
    // Counts are bucketed (wins, losses, attendance-in-thousands) to keep
    // column products — and thus determinacy max-worlds — demo-sized.
    let count_col = Column::int_range(0, 30);

    let catalog = CatalogBuilder::new()
        .relation(
            "Team",
            &[("Name", name_col), ("TeamId", team_id_col.clone())],
        )
        .relation(
            "Stats",
            &[
                ("TeamId", team_id_col.clone()),
                ("Wins", count_col.clone()),
                ("Losses", count_col.clone()),
            ],
        )
        .relation(
            "Game",
            &[
                ("GameId", game_id_col),
                ("TeamId", team_id_col),
                ("Attendance", count_col),
            ],
        )
        .build()?;

    let mut instance = catalog.empty_instance();
    let team = lookup(&catalog, "Team")?;
    let stats = lookup(&catalog, "Stats")?;
    let game = lookup(&catalog, "Game")?;
    for (i, name) in team_names.iter().enumerate() {
        let id = 100 + i as i64;
        instance.insert(
            team,
            Tuple::new([Value::text(name.as_str()), Value::Int(id)]),
        )?;
        instance.insert(
            stats,
            Tuple::new([
                Value::Int(id),
                Value::Int(rng.gen_range(0..30)),
                Value::Int(rng.gen_range(0..30)),
            ]),
        )?;
    }
    for g in 0..config.games {
        instance.insert(
            game,
            Tuple::new([
                Value::Int(g as i64),
                Value::Int(100 + rng.gen_range(0..config.teams) as i64),
                Value::Int(rng.gen_range(0..30)),
            ]),
        )?;
    }

    // API prices: selections on the key attribute of each relation; the
    // non-key attributes are not directly sellable (∞), exactly like the
    // real APIs (you cannot ask "all games with attendance 37").
    let mut prices = PriceList::new();
    for (attr_name, price) in [
        ("Team.Name", config.team_api_price),
        ("Stats.TeamId", config.stats_api_price),
        ("Game.GameId", config.game_api_price),
        // Game lookups by team id are also sold (the Team API returns
        // game ids), a bit dearer.
        (
            "Game.TeamId",
            config.game_api_price.saturating_add(Price::dollars(1)),
        ),
    ] {
        let attr = catalog.schema().resolve_attr(attr_name)?;
        for v in catalog.column(attr).iter() {
            prices.set(SelectionView::new(attr, v.clone()), price);
        }
    }

    Ok(SportsMarket {
        catalog,
        instance,
        prices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn market_is_valid_and_sellable() {
        let mut rng = StdRng::seed_from_u64(1908);
        let m = generate(&mut rng, SportsConfig::default()).unwrap();
        assert!(m.catalog.check_instance(&m.instance).is_ok());
        // Every relation reachable through some fully-priced attribute.
        assert!(m.prices.sells_identity(&m.catalog));
        // Attendance-by-value is not for sale.
        let att = m.catalog.schema().resolve_attr("Game.Attendance").unwrap();
        assert!(m.prices.get_at(att, &Value::Int(0)).is_infinite());
    }
}
