//! A WebScaled-style web-crawl market (paper §5 cites WebScaled: "social
//! graphs, lists of sites using particular advertising platforms, …").
//!
//! Schema:
//! * `Links(Src, Dst)` — crawled hyperlinks between domains;
//! * `Backlinks(Src, Dst)` — the reverse-index product (sold separately, as
//!   crawl products often are);
//! * `Ads(Domain)` — domains running a given ad platform.
//!
//! The natural "mutual links" query `M(x,y) = Links(x,y), Backlinks(x,y)`
//! is — up to flipping `Backlinks`' columns — the **cycle query C₂**
//! (Theorem 3.15), making this the realistic home of the cycle experiments.

use super::lookup;
use crate::error::WorkloadError;
use qbdp_catalog::{Catalog, CatalogBuilder, Column, Instance, Tuple, Value};
use qbdp_core::price_points::PriceList;
use qbdp_core::Price;
use qbdp_determinacy::selection::SelectionView;
use rand::Rng;

/// A generated web-crawl market.
pub struct WebGraphMarket {
    /// Schema + columns.
    pub catalog: Catalog,
    /// The data. `Backlinks` mirrors `Links` with columns swapped.
    pub instance: Instance,
    /// Per-domain selection prices on `Links.Src`, `Backlinks.Src`, and
    /// `Ads.Domain`.
    pub prices: PriceList,
}

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct WebGraphConfig {
    /// Number of domains.
    pub domains: usize,
    /// Hyperlinks to draw (Zipf-skewed sources: hubs link a lot).
    pub links: usize,
    /// Zipf exponent for link sources.
    pub theta: f64,
    /// Price of one domain's outlink list.
    pub outlink_price: Price,
    /// Price of one domain's backlink list.
    pub backlink_price: Price,
    /// Price of one ad-platform membership check.
    pub ads_price: Price,
}

impl Default for WebGraphConfig {
    fn default() -> Self {
        WebGraphConfig {
            domains: 10,
            links: 40,
            theta: 1.1,
            outlink_price: Price::dollars(3),
            backlink_price: Price::dollars(5),
            ads_price: Price::dollars(1),
        }
    }
}

/// Generate the market.
pub fn generate(
    rng: &mut impl Rng,
    config: WebGraphConfig,
) -> Result<WebGraphMarket, WorkloadError> {
    let domains: Vec<String> = (0..config.domains).map(|i| format!("site{i}")).collect();
    let col = Column::texts(domains.iter().map(String::as_str));
    let catalog = CatalogBuilder::new()
        .relation("Links", &[("Src", col.clone()), ("Dst", col.clone())])
        .relation("Backlinks", &[("Src", col.clone()), ("Dst", col.clone())])
        .relation("Ads", &[("Domain", col)])
        .build()?;

    let mut instance = catalog.empty_instance();
    let links = lookup(&catalog, "Links")?;
    let backlinks = lookup(&catalog, "Backlinks")?;
    let ads = lookup(&catalog, "Ads")?;
    let zipf = crate::zipf::Zipf::new(config.domains, config.theta);
    for _ in 0..config.links {
        let s = zipf.sample(rng);
        let d = rng.gen_range(0..config.domains);
        if s == d {
            continue;
        }
        let src = Value::text(domains[s].as_str());
        let dst = Value::text(domains[d].as_str());
        instance.insert(links, Tuple::new([src.clone(), dst.clone()]))?;
        // The backlink product indexes the same edge from the target side.
        instance.insert(backlinks, Tuple::new([dst, src]))?;
    }
    for domain in &domains {
        if rng.gen_bool(0.3) {
            instance.insert(ads, Tuple::new([Value::text(domain.as_str())]))?;
        }
    }

    let mut prices = PriceList::new();
    for (attr_name, price) in [
        ("Links.Src", config.outlink_price),
        ("Backlinks.Src", config.backlink_price),
        ("Ads.Domain", config.ads_price),
    ] {
        let attr = catalog.schema().resolve_attr(attr_name)?;
        for v in catalog.column(attr).iter() {
            prices.set(SelectionView::new(attr, v.clone()), price);
        }
    }
    Ok(WebGraphMarket {
        catalog,
        instance,
        prices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_core::dichotomy::{classify, QueryClass};
    use qbdp_query::parser::parse_rule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mutual_links_is_a_cycle_query() {
        let mut rng = StdRng::seed_from_u64(2026);
        let m = generate(&mut rng, WebGraphConfig::default()).unwrap();
        assert!(m.catalog.check_instance(&m.instance).is_ok());
        assert!(m.prices.sells_identity(&m.catalog));
        // M(x, y) = Links(x, y), Backlinks(x, y): C2 up to orientation.
        let q = parse_rule(
            m.catalog.schema(),
            "M(x, y) :- Links(x, y), Backlinks(x, y)",
        )
        .unwrap();
        assert_eq!(classify(&q), QueryClass::Cycle(2));
    }

    #[test]
    fn backlinks_mirror_links() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = generate(&mut rng, WebGraphConfig::default()).unwrap();
        let links = m.catalog.schema().rel_id("Links").unwrap();
        let backlinks = m.catalog.schema().rel_id("Backlinks").unwrap();
        assert_eq!(
            m.instance.relation(links).len(),
            m.instance.relation(backlinks).len()
        );
        for t in m.instance.relation(links).iter() {
            let mirrored = t.project(&[1, 0]);
            assert!(m.instance.relation(backlinks).contains(&mirrored));
        }
    }

    #[test]
    fn cycle_query_priced_on_small_crawl() {
        let mut rng = StdRng::seed_from_u64(99);
        let m = generate(
            &mut rng,
            WebGraphConfig {
                domains: 3,
                links: 6,
                ..WebGraphConfig::default()
            },
        )
        .unwrap();
        let pricer =
            qbdp_core::Pricer::new(m.catalog.clone(), m.instance.clone(), m.prices.clone())
                .unwrap();
        let quote = pricer
            .price_rule("M(x, y) :- Links(x, y), Backlinks(x, y)")
            .unwrap();
        assert!(quote.price.is_finite());
        // The quote survives independent audit.
        let q = parse_rule(
            m.catalog.schema(),
            "M(x, y) :- Links(x, y), Backlinks(x, y)",
        )
        .unwrap();
        assert!(pricer.verify_quote(&q, &quote).unwrap());
    }
}
