//! Schema + query builders for the paper's query families.

use crate::error::WorkloadError;
use qbdp_catalog::{Catalog, CatalogBuilder, Column};
use qbdp_query::ast::ConjunctiveQuery;
use qbdp_query::parser::parse_rule;

/// A catalog together with the family query over it.
pub struct QuerySet {
    /// The catalog.
    pub catalog: Catalog,
    /// The family query.
    pub query: ConjunctiveQuery,
}

/// Chain (path-join) schema with `k` binary hops and unary caps, all over
/// the integer column `{0..n}`:
/// `Q(x0..xk) = A(x0), E1(x0,x1), …, Ek(x_{k-1},x_k), B(x_k)`.
pub fn chain_schema(k: usize, n: i64) -> Result<QuerySet, WorkloadError> {
    assert!(k >= 1);
    let col = Column::int_range(0, n);
    let mut builder = CatalogBuilder::new().uniform_relation("A", &["X"], &col);
    for i in 1..=k {
        builder = builder.uniform_relation(format!("E{i}"), &["X", "Y"], &col);
    }
    builder = builder.uniform_relation("B", &["X"], &col);
    let catalog = builder.build()?;
    let head: Vec<String> = (0..=k).map(|i| format!("x{i}")).collect();
    let mut body = vec![format!("A(x0)")];
    for i in 1..=k {
        body.push(format!("E{i}(x{}, x{})", i - 1, i));
    }
    body.push(format!("B(x{k})"));
    let src = format!("Q({}) :- {}", head.join(", "), body.join(", "));
    let query = parse_rule(catalog.schema(), &src)?;
    Ok(QuerySet { catalog, query })
}

/// Star schema: `Q(x, y1..yk) = C(x), S1(x,y1), …, Sk(x,yk)` — a GChQ with
/// `k` hanging variables, exercising Step 3's `2^k` branches.
pub fn star_schema(k: usize, n: i64) -> Result<QuerySet, WorkloadError> {
    assert!(k >= 1);
    let col = Column::int_range(0, n);
    let mut builder = CatalogBuilder::new().uniform_relation("C", &["X"], &col);
    for i in 1..=k {
        builder = builder.uniform_relation(format!("S{i}"), &["X", "Y"], &col);
    }
    let catalog = builder.build()?;
    let mut head = vec!["x".to_string()];
    let mut body = vec!["C(x)".to_string()];
    for i in 1..=k {
        head.push(format!("y{i}"));
        body.push(format!("S{i}(x, y{i})"));
    }
    let src = format!("Q({}) :- {}", head.join(", "), body.join(", "));
    let query = parse_rule(catalog.schema(), &src)?;
    Ok(QuerySet { catalog, query })
}

/// Cycle schema: `C_k(x1..xk) = R1(x1,x2), …, Rk(xk,x1)` (Theorem 3.15).
pub fn cycle_schema(k: usize, n: i64) -> Result<QuerySet, WorkloadError> {
    assert!(k >= 2);
    let col = Column::int_range(0, n);
    let mut builder = CatalogBuilder::new();
    for i in 1..=k {
        builder = builder.uniform_relation(format!("R{i}"), &["X", "Y"], &col);
    }
    let catalog = builder.build()?;
    let head: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
    let mut body = Vec::with_capacity(k);
    for i in 1..=k {
        let j = if i == k { 1 } else { i + 1 };
        body.push(format!("R{i}(x{i}, x{j})"));
    }
    let src = format!("C{k}({}) :- {}", head.join(", "), body.join(", "));
    let query = parse_rule(catalog.schema(), &src)?;
    Ok(QuerySet { catalog, query })
}

/// The NP-complete `H1(x,y,z) = R(x,y,z), S(x), T(y), U(z)` (Theorem 3.5).
pub fn h1_schema(n: i64) -> Result<QuerySet, WorkloadError> {
    let col = Column::int_range(0, n);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X", "Y", "Z"], &col)
        .uniform_relation("S", &["X"], &col)
        .uniform_relation("T", &["X"], &col)
        .uniform_relation("U", &["X"], &col)
        .build()?;
    let query = parse_rule(
        catalog.schema(),
        "H1(x, y, z) :- R(x, y, z), S(x), T(y), U(z)",
    )?;
    Ok(QuerySet { catalog, query })
}

/// The NP-complete `H2(x,y) = P(x), R(x,y), S(x,y)` (Theorem 3.5; `C_2`
/// plus one unary atom — the cycle class's brittleness).
pub fn h2_schema(n: i64) -> Result<QuerySet, WorkloadError> {
    let col = Column::int_range(0, n);
    let catalog = CatalogBuilder::new()
        .uniform_relation("P", &["X"], &col)
        .uniform_relation("R", &["X", "Y"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .build()?;
    let query = parse_rule(catalog.schema(), "H2(x, y) :- P(x), R(x, y), S(x, y)")?;
    Ok(QuerySet { catalog, query })
}

/// The NP-complete projection query `H4(x) = R(x, y)` (Theorem 3.5): the
/// simplest non-full CQ, priced by the exact subset engine — the
/// adversarial workload for budget/deadline tests.
pub fn h4_schema(n: i64) -> Result<QuerySet, WorkloadError> {
    let col = Column::int_range(0, n);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X", "Y"], &col)
        .build()?;
    let query = parse_rule(catalog.schema(), "H4(x) :- R(x, y)")?;
    Ok(QuerySet { catalog, query })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_core::dichotomy::{classify, QueryClass};

    #[test]
    fn families_classify_as_expected() {
        assert_eq!(
            classify(&chain_schema(3, 4).unwrap().query),
            QueryClass::GeneralizedChain
        );
        assert_eq!(
            classify(&star_schema(3, 4).unwrap().query),
            QueryClass::GeneralizedChain
        );
        assert_eq!(
            classify(&cycle_schema(3, 4).unwrap().query),
            QueryClass::Cycle(3)
        );
        assert!(matches!(
            classify(&h1_schema(3).unwrap().query),
            QueryClass::NpComplete(_)
        ));
        assert!(matches!(
            classify(&h2_schema(3).unwrap().query),
            QueryClass::NpComplete(_)
        ));
    }

    #[test]
    fn sizes_scale() {
        let qs = chain_schema(4, 8).unwrap();
        assert_eq!(qs.catalog.schema().len(), 6); // A, E1..E4, B
        assert_eq!(qs.query.atoms().len(), 6);
        let qs = cycle_schema(5, 3).unwrap();
        assert_eq!(qs.query.atoms().len(), 5);
    }
}
