//! Random database population.

use crate::zipf::Zipf;
use qbdp_catalog::{Catalog, CatalogError, Instance, RelId, Tuple};
use rand::Rng;

/// Populate every relation with `tuples_per_relation` random tuples drawn
/// uniformly from its column product (duplicates collapse, so the final
/// count can be lower). Returns the instance.
pub fn populate_random(
    catalog: &Catalog,
    rng: &mut impl Rng,
    tuples_per_relation: usize,
) -> Result<Instance, CatalogError> {
    let mut d = catalog.empty_instance();
    for rid in catalog.schema().rel_ids() {
        insert_random(catalog, &mut d, rid, rng, tuples_per_relation, None)?;
    }
    Ok(d)
}

/// Like [`populate_random`] but values are drawn Zipf(θ)-skewed within each
/// column (index 0 most popular), mimicking real marketplace data.
pub fn populate_zipf(
    catalog: &Catalog,
    rng: &mut impl Rng,
    tuples_per_relation: usize,
    theta: f64,
) -> Result<Instance, CatalogError> {
    let mut d = catalog.empty_instance();
    for rid in catalog.schema().rel_ids() {
        insert_random(catalog, &mut d, rid, rng, tuples_per_relation, Some(theta))?;
    }
    Ok(d)
}

/// Insert `count` random tuples into one relation (uniform, or Zipf when
/// `theta` is given). Exposed for incremental-update workloads.
pub fn insert_random(
    catalog: &Catalog,
    d: &mut Instance,
    rel: RelId,
    rng: &mut impl Rng,
    count: usize,
    theta: Option<f64>,
) -> Result<usize, CatalogError> {
    let cols = catalog.relation_columns(rel);
    if cols.iter().any(|c| c.is_empty()) {
        return Ok(0);
    }
    let samplers: Vec<Option<Zipf>> = cols
        .iter()
        .map(|c| theta.map(|t| Zipf::new(c.len(), t)))
        .collect();
    let mut added = 0;
    for _ in 0..count {
        let vals = cols
            .iter()
            .zip(&samplers)
            .map(|(c, z)| {
                let i = match z {
                    Some(z) => z.sample(rng) as u32,
                    None => rng.gen_range(0..c.len() as u32),
                };
                c.value_at(i).clone()
            })
            .collect::<Vec<_>>();
        if d.insert(rel, Tuple::new(vals))? {
            added += 1;
        }
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::chain_schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn populate_respects_columns() {
        let qs = chain_schema(2, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let d = populate_random(&qs.catalog, &mut rng, 20).unwrap();
        assert!(qs.catalog.check_instance(&d).is_ok());
        assert!(d.total_tuples() > 0);
    }

    #[test]
    fn zipf_population_is_skewed() {
        let qs = chain_schema(1, 20).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let d = populate_zipf(&qs.catalog, &mut rng, 400, 1.3).unwrap();
        let e1 = qs.catalog.schema().rel_id("E1").unwrap();
        let popular = d
            .relation(e1)
            .select_count(qbdp_catalog::AttrId(0), &qbdp_catalog::Value::Int(0));
        let rare = d
            .relation(e1)
            .select_count(qbdp_catalog::AttrId(0), &qbdp_catalog::Value::Int(19));
        assert!(popular > rare, "popular {popular} rare {rare}");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let qs = chain_schema(2, 5).unwrap();
        let d1 = populate_random(&qs.catalog, &mut StdRng::seed_from_u64(99), 30).unwrap();
        let d2 = populate_random(&qs.catalog, &mut StdRng::seed_from_u64(99), 30).unwrap();
        assert!(d1.same_extension(&d2));
    }
}
