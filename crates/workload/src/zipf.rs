//! A hand-rolled Zipf(θ) sampler over `{0, …, n-1}` (inverse-CDF over the
//! precomputed harmonic weights). Real marketplace data is skewed — a few
//! states hold most businesses — and the pricing benchmarks need that shape.

use rand::Rng;

/// Zipfian distribution with exponent `theta` over `n` items; item 0 is the
/// most frequent.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. `theta = 0` degenerates to uniform; common
    /// skewed settings use `theta ≈ 1`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample one item index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero items (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_when_theta_positive() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
        assert!(counts[0] > 5 * counts[9]);
    }

    #[test]
    fn all_indices_reachable() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
