//! The workload error type: generators parse rule text and resolve
//! schema names, so both catalog and query errors can surface.

use qbdp_catalog::CatalogError;
use qbdp_query::QueryError;
use std::fmt;

/// Anything a generator can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// Schema construction or name resolution failed.
    Catalog(CatalogError),
    /// A family query failed to parse against its schema.
    Query(QueryError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Catalog(e) => write!(f, "catalog: {e}"),
            WorkloadError::Query(e) => write!(f, "query: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<CatalogError> for WorkloadError {
    fn from(e: CatalogError) -> Self {
        WorkloadError::Catalog(e)
    }
}

impl From<QueryError> for WorkloadError {
    fn from(e: QueryError) -> Self {
        WorkloadError::Query(e)
    }
}
