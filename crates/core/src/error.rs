//! Error type for pricing operations.

use qbdp_catalog::CatalogError;
use qbdp_determinacy::bruteforce::BruteforceError;
use qbdp_query::QueryError;
use std::fmt;

/// Errors raised by the pricing engines.
#[derive(Debug)]
pub enum PricingError {
    /// Query construction / evaluation failed.
    Query(QueryError),
    /// Catalog manipulation failed (normalization rebuilds catalogs).
    Catalog(CatalogError),
    /// The requested engine does not apply to this query; the message names
    /// the violated requirement.
    NotApplicable(String),
    /// An exact engine hit its configured size limit.
    LimitExceeded(String),
    /// The seller's price points are inconsistent (admit arbitrage among
    /// themselves), so no valid pricing function exists (Theorem 2.15).
    Inconsistent(String),
    /// A pricing-engine invariant broke (a bug, not a user error) — kept a
    /// typed error so buyer-reachable paths never panic the market.
    Internal(String),
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::Query(e) => write!(f, "{e}"),
            PricingError::Catalog(e) => write!(f, "{e}"),
            PricingError::NotApplicable(m) => write!(f, "{m}"),
            PricingError::LimitExceeded(m) => write!(f, "size limit exceeded: {m}"),
            PricingError::Inconsistent(m) => write!(f, "inconsistent price points: {m}"),
            PricingError::Internal(m) => write!(f, "internal pricing invariant broke: {m}"),
        }
    }
}

impl std::error::Error for PricingError {}

impl From<QueryError> for PricingError {
    fn from(e: QueryError) -> Self {
        PricingError::Query(e)
    }
}

impl From<CatalogError> for PricingError {
    fn from(e: CatalogError) -> Self {
        PricingError::Catalog(e)
    }
}

impl From<BruteforceError> for PricingError {
    fn from(e: BruteforceError) -> Self {
        match e {
            BruteforceError::TooLarge(l) => PricingError::LimitExceeded(l.to_string()),
            BruteforceError::Query(q) => PricingError::Query(q),
        }
    }
}
