//! Generalized chain queries (Definition 3.6): recognition and atom
//! reordering for the main PTIME algorithm.

use qbdp_query::analysis;
use qbdp_query::ast::ConjunctiveQuery;

/// Reorder the query's atoms into a generalized-chain order, if one exists.
/// Interpreted predicates and constants are ignored by the order search
/// (they are handled by Steps 1–2 and do not affect variable sharing).
pub fn reorder_to_gchq(q: &ConjunctiveQuery) -> Option<ConjunctiveQuery> {
    let order = analysis::find_gchq_order(q)?;
    let atoms = order.iter().map(|&i| q.atoms()[i].clone()).collect();
    // Rebuilding with permuted atoms cannot fail validation: the schema
    // constraints are order-independent. `with_body` needs a schema, which
    // queries do not carry — so rebuild through the public constructor via
    // the crate-internal pieces.
    ConjunctiveQuery::new(
        q.name().to_string(),
        q.head().to_vec(),
        atoms,
        q.preds().to_vec(),
        q.var_names().to_vec(),
        // Validation needs arities; reuse a permissive check by building a
        // throwaway schema is impossible here — instead rely on the fact
        // that `ConjunctiveQuery::new` only consults the schema for atom
        // arities, which the caller has already validated. We therefore
        // validate against a schema reconstructed from the atoms.
        &schema_for(q),
    )
    .ok()
}

/// A minimal schema consistent with the query's atoms (names `R#i`,
/// arities from the atom terms). Used only to re-validate permutations of
/// an already-valid query.
pub(crate) fn schema_for(q: &ConjunctiveQuery) -> qbdp_catalog::Schema {
    let mut schema = qbdp_catalog::Schema::new();
    let max_rel = q.atoms().iter().map(|a| a.rel.0).max().unwrap_or(0);
    for rid in 0..=max_rel {
        let arity = q
            .atoms()
            .iter()
            .find(|a| a.rel.0 == rid)
            .map(|a| a.terms.len())
            .unwrap_or(1);
        let attrs: Vec<String> = (0..arity).map(|i| format!("A{i}")).collect();
        #[allow(clippy::expect_used)]
        schema
            .add_relation(
                qbdp_catalog::RelationSchema::new(format!("N{rid}"), attrs)
                    // audit: allow(R2: A{i} attrs are fresh and nonempty)
                    .expect("normalization attrs are fresh"),
            )
            // audit: allow(R2: N{rid} relation names are fresh)
            .expect("normalization relation names are fresh");
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{CatalogBuilder, Column};
    use qbdp_query::chain::ChainQuery;
    use qbdp_query::parser::parse_rule;

    #[test]
    fn reorders_scrambled_chain() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("A", &["X"], &col)
            .uniform_relation("B", &["X", "Y"], &col)
            .uniform_relation("C", &["Y"], &col)
            .build()
            .unwrap();
        // Atoms given out of chain order (binary atom first).
        let q = parse_rule(cat.schema(), "Q(x, y) :- B(x, y), A(x), C(y)").unwrap();
        assert!(ChainQuery::from_cq(&q).is_err());
        let reordered = reorder_to_gchq(&q).unwrap();
        assert!(ChainQuery::from_cq(&reordered).is_ok());
    }

    #[test]
    fn rejects_non_gchq() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("A", &["X"], &col)
            .uniform_relation("B", &["X", "Y"], &col)
            .uniform_relation("C", &["X", "Y"], &col)
            .build()
            .unwrap();
        // H2 shape: A(x), B(x,y), C(x,y) — every cut shares two variables.
        let q = parse_rule(cat.schema(), "Q(x, y) :- A(x), B(x, y), C(x, y)").unwrap();
        assert!(reorder_to_gchq(&q).is_none());
    }
}
