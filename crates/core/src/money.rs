//! Exact fixed-point money.
//!
//! Prices are `u64` **cents**. The paper allows prices in ℝ⁺; everything it
//! does with them is `min` and `+`, which fixed-point preserves exactly —
//! and exactness is load-bearing here, because prices become Min-Cut
//! capacities and consistency checks compare sums for equality.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// A non-negative price in cents, or [`Price::INFINITE`] ("not for sale").
///
/// Addition saturates at `INFINITE`, so a sum involving an unavailable view
/// stays unavailable instead of wrapping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Price(u64);

impl Price {
    /// Zero — the price of the empty bundle (Proposition 2.8, item 3).
    pub const ZERO: Price = Price(0);

    /// "Not for sale." Matches the flow layer's uncuttable-capacity
    /// sentinel so unpriced views become ∞-capacity edges verbatim.
    pub const INFINITE: Price = Price(qbdp_flow::INF);

    /// A price from whole cents. Values at or above the sentinel are
    /// clamped to `INFINITE`.
    pub const fn cents(c: u64) -> Price {
        if c >= qbdp_flow::INF {
            Price::INFINITE
        } else {
            Price(c)
        }
    }

    /// A price from whole dollars.
    pub const fn dollars(d: u64) -> Price {
        Price::cents(d * 100)
    }

    /// The raw cent count (the sentinel value for `INFINITE`).
    pub const fn as_cents(self) -> u64 {
        self.0
    }

    /// Whether this price is the `INFINITE` sentinel.
    pub const fn is_infinite(self) -> bool {
        self.0 >= qbdp_flow::INF
    }

    /// Whether this price is finite.
    pub const fn is_finite(self) -> bool {
        !self.is_infinite()
    }

    /// Checked addition: `None` if either operand is `INFINITE` or the
    /// sum would reach the sentinel. The durable-recovery path uses this
    /// so replaying a pathological purchase history surfaces a typed
    /// overflow error instead of silently saturating revenue to ∞.
    pub fn checked_add(self, other: Price) -> Option<Price> {
        if self.is_infinite() || other.is_infinite() {
            return None;
        }
        let sum = self.0.checked_add(other.0)?;
        if sum >= qbdp_flow::INF {
            None
        } else {
            Some(Price(sum))
        }
    }

    /// Saturating addition: any operand `INFINITE` ⇒ result `INFINITE`.
    pub fn saturating_add(self, other: Price) -> Price {
        if self.is_infinite() || other.is_infinite() {
            Price::INFINITE
        } else {
            Price::cents(self.0.saturating_add(other.0))
        }
    }

    /// Flow capacity for a view with this price (`INFINITE` ⇒ uncuttable).
    pub const fn as_capacity(self) -> u64 {
        if self.is_infinite() {
            qbdp_flow::INF
        } else {
            self.0
        }
    }

    /// A price from a min-cut value (≥ the flow ∞ scale ⇒ `INFINITE`).
    pub const fn from_cut_value(v: u64) -> Price {
        if v >= qbdp_flow::INF {
            Price::INFINITE
        } else {
            Price(v)
        }
    }
}

impl Add for Price {
    type Output = Price;
    fn add(self, rhs: Price) -> Price {
        self.saturating_add(rhs)
    }
}

impl Sum for Price {
    fn sum<I: Iterator<Item = Price>>(iter: I) -> Price {
        iter.fold(Price::ZERO, Price::saturating_add)
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "${}.{:02}", self.0 / 100, self.0 % 100)
        }
    }
}

impl fmt::Debug for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        assert_eq!(Price::dollars(3).as_cents(), 300);
        assert_eq!(Price::cents(199).to_string(), "$1.99");
        assert_eq!(Price::dollars(100).to_string(), "$100.00");
        assert_eq!(Price::INFINITE.to_string(), "∞");
        assert_eq!(Price::ZERO, Price::cents(0));
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(Price::cents(1) + Price::cents(2), Price::cents(3));
        assert_eq!(Price::INFINITE + Price::cents(5), Price::INFINITE);
        assert_eq!(Price::cents(5) + Price::INFINITE, Price::INFINITE);
        assert!(Price::INFINITE.is_infinite());
        assert!(Price::cents(u64::MAX).is_infinite());
        let total: Price = [Price::cents(10), Price::cents(20)].into_iter().sum();
        assert_eq!(total, Price::cents(30));
        let total: Price = [Price::cents(10), Price::INFINITE].into_iter().sum();
        assert!(total.is_infinite());
    }

    #[test]
    fn checked_arithmetic() {
        assert_eq!(
            Price::cents(1).checked_add(Price::cents(2)),
            Some(Price::cents(3))
        );
        assert_eq!(Price::INFINITE.checked_add(Price::cents(1)), None);
        assert_eq!(Price::cents(1).checked_add(Price::INFINITE), None);
        // Two finite prices whose sum crosses the sentinel: checked
        // refuses where saturating would clamp to ∞.
        let big = Price::cents(qbdp_flow::INF - 1);
        assert!(big.is_finite());
        assert_eq!(big.checked_add(big), None);
        assert!(big.saturating_add(big).is_infinite());
    }

    #[test]
    fn ordering() {
        assert!(Price::cents(1) < Price::cents(2));
        assert!(Price::cents(u64::MAX / 32) < Price::INFINITE);
    }

    #[test]
    fn capacity_roundtrip() {
        assert_eq!(Price::cents(42).as_capacity(), 42);
        assert_eq!(Price::INFINITE.as_capacity(), qbdp_flow::INF);
        assert_eq!(Price::from_cut_value(42), Price::cents(42));
        assert!(Price::from_cut_value(qbdp_flow::INF).is_infinite());
    }
}
