//! Resource governance for pricing: work budgets, deadlines, cooperative
//! cancellation, and the quality tag on degraded quotes.
//!
//! The exact engines are exponential in the worst case (necessarily so —
//! Theorem 3.5), and even the PTIME pipeline can be pushed hard by large
//! instances. A [`Budget`] bounds a pricing computation by **fuel**
//! (abstract work units), a **wall-clock deadline**, and an explicit
//! **cancellation token**; engines check it cooperatively at their loop
//! boundaries.
//!
//! When a budget runs out mid-computation, the engines do not fail: they
//! return the best *sound interval* found so far. The returned price is an
//! **over-estimate** of the arbitrage-price (Equation 2) realized by a
//! concrete determining view set, which is safe to sell: charging at or
//! above the arbitrage-price cannot create arbitrage, because any bundle
//! of purchases that answers the query already costs at least the
//! arbitrage-price. [`QuoteQuality`] records which case a quote is in.

use crate::money::Price;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fuel sentinel meaning "not metered".
const UNLIMITED_FUEL: u64 = u64::MAX;

/// Re-check the wall clock every time this many charged units accumulate
/// (charges are much cheaper than `Instant::now`).
const DEADLINE_GRANULARITY_SHIFT: u32 = 10; // 1024 units

/// A charge at least this large checks the wall clock unconditionally
/// (coarse-grained charges stand for expensive operations).
const LARGE_CHARGE: u64 = 256;

struct Inner {
    fuel: AtomicU64,
    /// The tank's starting level, kept so telemetry can report consumed
    /// fuel (`initial - remaining`) without touching the charge path.
    initial_fuel: u64,
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    charged: AtomicU64,
    /// Set on sub-budgets made by [`Budget::split`]: the parent's state is
    /// observed (cancelling the parent stops every sub-budget) but its
    /// fuel tank is not shared — each job burns only its own share.
    parent: Option<Arc<Inner>>,
}

/// A shareable, cooperatively-checked resource budget.
///
/// Cloning is cheap and shares the same fuel tank, deadline, and
/// cancellation flag, so one budget can govern work spread across helper
/// structures (or threads). Once exhausted — by fuel, deadline, or
/// [`Budget::cancel`] — every subsequent [`Budget::charge`] fails.
#[derive(Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fuel = self.inner.fuel.load(Ordering::Relaxed);
        f.debug_struct("Budget")
            .field(
                "fuel",
                &if fuel == UNLIMITED_FUEL {
                    None
                } else {
                    Some(fuel)
                },
            )
            .field("deadline", &self.inner.deadline)
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .finish()
    }
}

impl Budget {
    fn build(fuel: u64, deadline: Option<Instant>) -> Budget {
        Budget {
            inner: Arc::new(Inner {
                fuel: AtomicU64::new(fuel),
                initial_fuel: fuel,
                deadline,
                cancelled: AtomicBool::new(false),
                charged: AtomicU64::new(0),
                parent: None,
            }),
        }
    }

    /// A budget that never runs out (cancellation still works).
    pub fn unlimited() -> Budget {
        Budget::build(UNLIMITED_FUEL, None)
    }

    /// Bound by fuel only.
    pub fn with_fuel(fuel: u64) -> Budget {
        Budget::build(fuel.min(UNLIMITED_FUEL - 1), None)
    }

    /// Bound by a wall-clock deadline only.
    pub fn with_deadline(timeout: Duration) -> Budget {
        Budget::build(UNLIMITED_FUEL, Some(Instant::now() + timeout))
    }

    /// Bound by both fuel and a deadline.
    pub fn with_fuel_and_deadline(fuel: u64, timeout: Duration) -> Budget {
        Budget::build(fuel.min(UNLIMITED_FUEL - 1), Some(Instant::now() + timeout))
    }

    /// Whether this budget can ever refuse work (fuel- or deadline-bound).
    /// Unlimited budgets let engines keep their hard-cap error behavior;
    /// limited ones switch the engines into degrade-instead-of-fail mode.
    pub fn is_limited(&self) -> bool {
        self.inner.fuel.load(Ordering::Relaxed) != UNLIMITED_FUEL || self.inner.deadline.is_some()
    }

    /// Cooperatively cancel: every in-flight computation sharing this
    /// budget stops at its next charge — including every sub-budget made
    /// by [`Budget::split`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Split the remaining budget into `jobs` independent per-job
    /// sub-budgets, for fanning one admission-controlled request out over
    /// a worker pool:
    ///
    /// * **fuel** is divided evenly — each sub-budget gets its own tank of
    ///   `remaining / jobs` units, so one pathological job cannot starve
    ///   its batch-mates (an unlimited tank splits into unlimited tanks);
    /// * the **deadline** is shared verbatim — wall clock is a collective
    ///   resource and all jobs race the same instant;
    /// * **cancellation** flows down — [`Budget::cancel`] on this budget
    ///   stops every sub-budget at its next charge (but a sub-budget
    ///   exhausting its own share does *not* cancel its siblings).
    ///
    /// The parent's fuel tank is left untouched; callers hand it out
    /// entirely via the split.
    pub fn split(&self, jobs: usize) -> Vec<Budget> {
        let jobs = jobs.max(1);
        let fuel = self.inner.fuel.load(Ordering::Relaxed);
        let share = if fuel == UNLIMITED_FUEL {
            UNLIMITED_FUEL
        } else {
            (fuel / jobs as u64).max(1)
        };
        (0..jobs)
            .map(|_| Budget {
                inner: Arc::new(Inner {
                    fuel: AtomicU64::new(share),
                    initial_fuel: share,
                    deadline: self.inner.deadline,
                    cancelled: AtomicBool::new(false),
                    charged: AtomicU64::new(0),
                    parent: Some(Arc::clone(&self.inner)),
                }),
            })
            .collect()
    }

    /// Charge `n` work units. Returns `false` — permanently, for every
    /// subsequent call too — once the budget is exhausted or cancelled.
    /// The wall clock is consulted only every ~1024 charged units (or on
    /// any single charge ≥ 256 units), so fine-grained charging stays
    /// cheap.
    pub fn charge(&self, n: u64) -> bool {
        let inner = &*self.inner;
        if inner.cancelled.load(Ordering::Relaxed) {
            return false;
        }
        if let Some(parent) = &inner.parent {
            if parent.cancelled.load(Ordering::Relaxed) {
                inner.cancelled.store(true, Ordering::Relaxed);
                return false;
            }
        }
        let mut cur = inner.fuel.load(Ordering::Relaxed);
        if cur != UNLIMITED_FUEL {
            loop {
                if cur < n {
                    inner.cancelled.store(true, Ordering::Relaxed);
                    return false;
                }
                match inner.fuel.compare_exchange_weak(
                    cur,
                    cur - n,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        if let Some(deadline) = inner.deadline {
            let n = n.max(1);
            let before = inner.charged.fetch_add(n, Ordering::Relaxed);
            let crossed = (before >> DEADLINE_GRANULARITY_SHIFT)
                != ((before + n) >> DEADLINE_GRANULARITY_SHIFT);
            if (crossed || n >= LARGE_CHARGE) && Instant::now() >= deadline {
                inner.cancelled.store(true, Ordering::Relaxed);
                return false;
            }
        }
        true
    }

    /// Fuel consumed so far: the tank's starting level minus what is
    /// left. `0` for unlimited budgets (nothing is metered there).
    /// Telemetry reads this to attach fuel costs to trace spans; it
    /// never touches the charge path.
    pub fn consumed_fuel(&self) -> u64 {
        if self.inner.initial_fuel == UNLIMITED_FUEL {
            0
        } else {
            self.inner
                .initial_fuel
                .saturating_sub(self.inner.fuel.load(Ordering::Relaxed))
        }
    }

    /// Whether the budget is already exhausted (without consuming fuel).
    /// Always consults the wall clock, so use at phase boundaries, not in
    /// inner loops.
    pub fn is_exhausted(&self) -> bool {
        let inner = &*self.inner;
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(parent) = &inner.parent {
            if parent.cancelled.load(Ordering::Relaxed) {
                inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }
}

impl qbdp_flow::Ticker for Budget {
    fn tick(&self, n: u64) -> bool {
        self.charge(n)
    }
}

/// How trustworthy a quoted price is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuoteQuality {
    /// The exact arbitrage-price (Equation 2).
    Exact,
    /// The budget ran out first: the price is a sound **over-estimate** of
    /// the arbitrage-price, realized by the quoted (genuinely determining)
    /// view set. Selling at this price cannot create arbitrage; the paired
    /// lower bound brackets the true price from below.
    UpperBound,
}

impl QuoteQuality {
    /// `true` for [`QuoteQuality::Exact`].
    pub fn is_exact(self) -> bool {
        matches!(self, QuoteQuality::Exact)
    }
}

/// Outcome of a metered sub-computation that cannot return a partial
/// result of its own type (e.g. a min-cut with no cut extracted yet).
#[derive(Clone, Debug)]
pub enum Metered<T> {
    /// Finished within budget.
    Done(T),
    /// Ran out of budget; `lower_bound` soundly under-estimates the value
    /// the finished computation would have produced.
    Exhausted {
        /// Sound lower bound on the interrupted computation's result.
        lower_bound: Price,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_refuses() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        for _ in 0..10_000 {
            assert!(b.charge(u64::MAX / 4));
        }
        assert!(!b.is_exhausted());
    }

    #[test]
    fn fuel_runs_out_and_stays_out() {
        let b = Budget::with_fuel(100);
        assert!(b.is_limited());
        assert!(b.charge(60));
        assert!(b.charge(40));
        assert!(!b.charge(1));
        // Permanently exhausted, even for zero-cost charges.
        assert!(!b.charge(0));
        assert!(b.is_exhausted());
    }

    #[test]
    fn clones_share_the_tank() {
        let a = Budget::with_fuel(10);
        let b = a.clone();
        assert!(a.charge(6));
        assert!(!b.charge(6));
        assert!(a.is_exhausted());
    }

    #[test]
    fn expired_deadline_detected() {
        let b = Budget::with_deadline(Duration::ZERO);
        // Large charges check the clock unconditionally.
        assert!(!b.charge(LARGE_CHARGE));
        assert!(b.is_exhausted());
    }

    #[test]
    fn fine_charges_amortize_deadline_checks() {
        let b = Budget::with_deadline(Duration::ZERO);
        // A single 1-unit charge may pass (clock not consulted yet)…
        let _ = b.charge(1);
        // …but within one granularity window the deadline must bite.
        let mut refused = false;
        for _ in 0..2048 {
            if !b.charge(1) {
                refused = true;
                break;
            }
        }
        assert!(refused);
    }

    #[test]
    fn split_divides_fuel_without_sharing_tanks() {
        let parent = Budget::with_fuel(100);
        let subs = parent.split(4);
        assert_eq!(subs.len(), 4);
        // Each sub-budget owns 25 units; draining one leaves the others.
        assert!(subs[0].charge(25));
        assert!(!subs[0].charge(1));
        assert!(subs[1].charge(25));
        assert!(subs[2].charge(10));
        // A drained sibling does not poison the rest.
        assert!(subs[3].charge(25));
        assert!(!subs[3].charge(1));
    }

    #[test]
    fn split_of_unlimited_stays_unlimited() {
        let subs = Budget::unlimited().split(3);
        for sub in &subs {
            assert!(!sub.is_limited());
            assert!(sub.charge(u64::MAX / 4));
        }
    }

    #[test]
    fn parent_cancellation_reaches_sub_budgets() {
        let parent = Budget::with_fuel(1000);
        let subs = parent.split(2);
        assert!(subs[0].charge(1));
        parent.cancel();
        assert!(!subs[0].charge(1));
        assert!(subs[1].is_exhausted());
    }

    #[test]
    fn split_shares_the_deadline() {
        let parent = Budget::with_fuel_and_deadline(u64::MAX / 2, Duration::ZERO);
        let subs = parent.split(2);
        // Expired deadline is inherited: a large charge must refuse.
        assert!(!subs[0].charge(LARGE_CHARGE));
    }

    #[test]
    fn cancellation_is_cooperative() {
        let b = Budget::unlimited();
        let observer = b.clone();
        assert!(b.charge(1));
        observer.cancel();
        assert!(!b.charge(1));
        assert!(b.is_exhausted());
    }
}
