//! Pricing cycle queries `C_k(x_1..x_k) = R_1(x_1,x_2), …, R_k(x_k,x_1)`
//! (Theorem 3.15).
//!
//! The conference paper states that cycle pricing is PTIME but defers the
//! algorithm to the full version, noting it is "technically the most
//! difficult result" and "quite different" from the Min-Cut reduction.
//! This module prices cycles with a **polynomial sandwich + exact
//! fallback**:
//!
//! 1. unroll the cycle at the seam variable `x_1` into a chain
//!    ([`unrolled_problem`]); determinacy of the cycle is characterized by
//!    blocking every *diagonal* seam traversal `a → a` (a winding
//!    assignment returns to its starting value);
//! 2. the **upper bound** ([`global_cut_upper_bound`]) blocks *every* seam
//!    pair `a → b` with one Min-Cut — a valid determining set, possibly
//!    over-blocking;
//! 3. the **lower bound** ([`single_pair_lower_bound`]) observes that any
//!    solution must contain, for each seam value `a`, a cut blocking
//!    `a → a` alone, so `max_a minCut(a → a)` is a floor;
//! 4. when the bounds meet — the common case, measured by experiment E9 —
//!    the price is certified **in polynomial time**; otherwise
//!    [`cycle_price`] falls back to the exact certificate engine (the
//!    (a)/(b) hitting set, exponential worst case).
//!
//! The residual gap is real: blocking only the diagonal is a *directed
//! multicut* over the seam pairs, which the chain reduction cannot express
//! (its cuts block rectangles, not diagonals). The full version's
//! special-structure algorithm closes that gap; EXPERIMENTS.md records this
//! substitution and the measured gap frequency honestly.

use crate::budget::{Budget, Metered};
use crate::chain::graph::TupleEdgeMode;
use crate::chain::price::{chain_price, chain_price_within, FlowAlgo};
use crate::error::PricingError;
use crate::exact::certificates::{certificate_price_within, CertificateConfig};
use crate::exact::ExactResult;
use crate::money::Price;
use crate::normalize::Problem;
use qbdp_catalog::{AttrRef, CatalogBuilder, Column, Tuple, Value};
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::analysis;
use qbdp_query::ast::CqBuilder;

/// Price a cycle query: polynomial bounds first, exact fallback when they
/// disagree.
pub fn cycle_price(
    problem: &Problem,
    config: CertificateConfig,
) -> Result<ExactResult, PricingError> {
    cycle_price_within(problem, config, &Budget::unlimited())
}

/// [`cycle_price`] under a [`Budget`]. The polynomial sandwich runs on the
/// metered flow engine; if the bounds meet the price is exact as usual.
/// Otherwise the exact certificate fallback runs on whatever budget
/// remains, and a degraded fallback result is tightened with the
/// polynomial bounds: the global-cut purchase (when it completed) is a
/// genuine determining set, and every completed single-pair cut stays a
/// valid floor.
pub fn cycle_price_within(
    problem: &Problem,
    config: CertificateConfig,
    budget: &Budget,
) -> Result<ExactResult, PricingError> {
    if analysis::cycle_order(&problem.query).is_none() {
        return Err(PricingError::NotApplicable(
            "query is not a cycle C_k".into(),
        ));
    }
    // Upper bound: one global chain cut (a valid determining set).
    let unrolled = unrolled_problem(problem, None)?;
    let ub = match chain_price_within(&unrolled, TupleEdgeMode::Hub, FlowAlgo::Dinic, budget)? {
        Metered::Done(r) => Some(ExactResult::exact(r.price, r.original_views)),
        Metered::Exhausted { .. } => None,
    };
    // Lower bound: max over completed single-pair cuts (each is a floor).
    let mut lb = Price::ZERO;
    let mut lb_complete = true;
    for a in seam_column(problem)?.iter() {
        if budget.is_exhausted() {
            lb_complete = false;
            break;
        }
        let single = unrolled_problem(problem, Some(std::slice::from_ref(a)))?;
        match chain_price_within(&single, TupleEdgeMode::Hub, FlowAlgo::Dinic, budget)? {
            Metered::Done(r) => lb = lb.max(r.price),
            Metered::Exhausted { .. } => {
                lb_complete = false;
                break;
            }
        }
    }
    if let Some(ub) = &ub {
        if lb_complete && lb == ub.price {
            // Certified optimal in PTIME: the global-cut solution is a
            // valid determining set and no solution can beat the
            // single-pair floor.
            return Ok(ub.clone());
        }
    }
    let fallback = certificate_price_within(
        &problem.catalog,
        &problem.instance,
        &problem.prices,
        &problem.query,
        config,
        budget,
    )?;
    if fallback.quality.is_exact() {
        return Ok(fallback);
    }
    // Degraded fallback: tighten with the polynomial sandwich.
    let (price, views) = match ub {
        Some(ub) if ub.price < fallback.price => (ub.price, ub.views),
        _ => (fallback.price, fallback.views),
    };
    Ok(ExactResult::degraded(
        price,
        views,
        fallback.lower_bound.max(lb),
    ))
}

/// Both polynomial bounds: `(lower, upper-with-views)`.
pub fn cycle_bounds(problem: &Problem) -> Result<(Price, ExactResult), PricingError> {
    let ub = global_cut_result(problem)?;
    let lb = single_pair_lower_bound(problem)?;
    Ok((lb, ub))
}

/// Upper bound from a seam **partition**: block all intra-group windings of
/// each group with its own restricted chain cut and take the union of the
/// purchased views (pricing the union against the original list, so views
/// shared between group cuts are paid once). Every diagonal pair lies
/// inside some group, so the union determines the cycle — a valid upper
/// bound for any partition; the harness searches small partition families
/// for the tightest (experiment E9's structural probe).
pub fn partition_upper_bound(
    problem: &Problem,
    groups: &[Vec<Value>],
) -> Result<Price, PricingError> {
    let mut views: Vec<SelectionView> = Vec::new();
    for group in groups {
        if group.is_empty() {
            continue;
        }
        let unrolled = unrolled_problem(problem, Some(group))?;
        let r = chain_price(&unrolled, TupleEdgeMode::Hub, FlowAlgo::Dinic)?;
        if r.price.is_infinite() {
            return Ok(Price::INFINITE);
        }
        views.extend(r.original_views);
    }
    views.sort();
    views.dedup();
    Ok(views.iter().map(|v| problem.prices.get(v)).sum())
}

/// A polynomial **upper bound** on the cycle price: cut the cycle open at
/// `x_1` and block *every* seam pair `(a, b)` with one chain Min-Cut. The
/// unrolled chain determines the cycle (the cycle is a selection over it),
/// so its price upper-bounds the cycle's.
pub fn global_cut_upper_bound(problem: &Problem) -> Result<Price, PricingError> {
    Ok(global_cut_result(problem)?.price)
}

/// Upper bound plus the realizing (original) views.
pub fn global_cut_result(problem: &Problem) -> Result<ExactResult, PricingError> {
    let unrolled = unrolled_problem(problem, None)?;
    let r = chain_price(&unrolled, TupleEdgeMode::Hub, FlowAlgo::Dinic)?;
    // Map the unrolled views back (cap views are free and resolve to
    // nothing; cycle-relation views map by name and flip).
    Ok(ExactResult::exact(r.price, r.original_views))
}

/// A polynomial **lower bound**: any determining set contains, for every
/// seam value `a`, a cut blocking the winding assignments through `a`
/// alone, so each single-seam chain cut is a floor and so is their max.
pub fn single_pair_lower_bound(problem: &Problem) -> Result<Price, PricingError> {
    let seam = seam_column(problem)?;
    let mut best = Price::ZERO;
    for a in seam.iter() {
        let unrolled = unrolled_problem(problem, Some(std::slice::from_ref(a)))?;
        let r = chain_price(&unrolled, TupleEdgeMode::Hub, FlowAlgo::Dinic)?;
        best = best.max(r.price);
    }
    Ok(best)
}

/// The seam column `Col_{x_1}`: intersection of the first atom's entry
/// attribute and the last atom's exit attribute (in cycle order).
fn seam_column(problem: &Problem) -> Result<Column, PricingError> {
    let order = analysis::cycle_order(&problem.query)
        .ok_or_else(|| PricingError::NotApplicable("query is not a cycle C_k".into()))?;
    let q = &problem.query;
    let (first_ai, first_flip) = order[0];
    let (last_ai, last_flip) = *order
        .last()
        .ok_or_else(|| PricingError::Internal("cycle order is empty".into()))?;
    Ok(problem
        .catalog
        .column(AttrRef::new(q.atoms()[first_ai].rel, entry_pos(first_flip)))
        .intersect(
            problem
                .catalog
                .column(AttrRef::new(q.atoms()[last_ai].rel, exit_pos(last_flip))),
        ))
}

fn entry_pos(flipped: bool) -> u32 {
    if flipped {
        1
    } else {
        0
    }
}

fn exit_pos(flipped: bool) -> u32 {
    if flipped {
        0
    } else {
        1
    }
}

/// The unrolled chain problem: `capA(x_1), R_1(x_1, x_2), …, R_k(x_k, x_1'),
/// capB(x_1')` with free caps. `seam_restrict = Some(group)` shrinks both
/// cap columns to that subset, making the chain block exactly the winding
/// paths that start **and** end inside the group (singleton groups give the
/// single-pair subproblems of the lower bound; the full column gives the
/// global-cut upper bound).
///
/// Provenance on the cycle relations is preserved (cap views resolve to
/// nothing), so chain results map back to the seller's price list.
pub fn unrolled_problem(
    problem: &Problem,
    seam_restrict: Option<&[Value]>,
) -> Result<Problem, PricingError> {
    let order = analysis::cycle_order(&problem.query)
        .ok_or_else(|| PricingError::NotApplicable("query is not a cycle C_k".into()))?;
    let q = &problem.query;
    let schema = problem.catalog.schema();
    let col_x1 = match seam_restrict {
        None => seam_column(problem)?,
        Some(group) => {
            let full = seam_column(problem)?;
            full.filter(|v| group.contains(v))
        }
    };

    // Catalog: free caps + the cycle's relations with columns in traversal
    // order.
    let mut builder = CatalogBuilder::new();
    builder = builder.relation("__capA", &[("X", col_x1.clone())]);
    builder = builder.relation("__capB", &[("X", col_x1.clone())]);
    for &(ai, flipped) in &order {
        let rel = q.atoms()[ai].rel;
        let r = schema.relation(rel);
        builder = builder.relation(
            r.name(),
            &[
                (
                    "L",
                    problem
                        .catalog
                        .column(AttrRef::new(rel, entry_pos(flipped)))
                        .clone(),
                ),
                (
                    "R",
                    problem
                        .catalog
                        .column(AttrRef::new(rel, exit_pos(flipped)))
                        .clone(),
                ),
            ],
        );
    }
    let catalog = builder.build()?;

    // Data: caps full over their (possibly restricted) column; cycle
    // relations copied, flipped atoms reversed.
    let mut instance = catalog.empty_instance();
    let missing_cap = || PricingError::Internal("unrolled schema lost its cap relation".into());
    let cap_a = catalog.schema().rel_id("__capA").ok_or_else(missing_cap)?;
    let cap_b = catalog.schema().rel_id("__capB").ok_or_else(missing_cap)?;
    for v in col_x1.iter() {
        instance.insert(cap_a, Tuple::new([v.clone()]))?;
        instance.insert(cap_b, Tuple::new([v.clone()]))?;
    }
    for &(ai, flipped) in &order {
        let old_rel = q.atoms()[ai].rel;
        let new_rel = catalog
            .schema()
            .rel_id(schema.relation(old_rel).name())
            .ok_or_else(|| {
                PricingError::Internal("unrolled schema lost a cycle relation".into())
            })?;
        for t in problem.instance.relation(old_rel).iter() {
            let t = if flipped {
                t.project(&[1, 0])
            } else {
                t.clone()
            };
            instance.insert(new_rel, t)?;
        }
    }

    // Prices + provenance: caps free (resolve to nothing); cycle relations
    // keep their prices with positions remapped through the flip, resolving
    // to the original views.
    let mut prices = crate::price_points::PriceList::new();
    let mut provenance = crate::normalize::Provenance::identity();
    for v in col_x1.iter() {
        for cap in [cap_a, cap_b] {
            let attr = AttrRef::new(cap, 0);
            prices.set(SelectionView::new(attr, v.clone()), Price::ZERO);
            provenance.record(attr, v.clone(), Vec::new());
        }
    }
    for (view, price) in problem.prices.iter() {
        if let Some(&(ai, flipped)) = order
            .iter()
            .find(|&&(ai, _)| q.atoms()[ai].rel == view.attr.rel)
        {
            let name = schema.relation(q.atoms()[ai].rel).name();
            let Some(new_rel) = catalog.schema().rel_id(name) else {
                return Err(PricingError::Internal(
                    "unrolled schema lost a priced relation".into(),
                ));
            };
            let new_pos = if flipped {
                1 - view.attr.attr.0
            } else {
                view.attr.attr.0
            };
            let new_attr = AttrRef::new(new_rel, new_pos);
            prices.set(SelectionView::new(new_attr, view.value.clone()), price);
            provenance.record(
                new_attr,
                view.value.clone(),
                problem.provenance.resolve(&view),
            );
        }
    }

    // The unrolled chain query.
    let k = order.len();
    let head_names: Vec<String> = (0..=k).map(|i| format!("u{i}")).collect();
    let mut cq = CqBuilder::new("Unrolled").head_vars(head_names.iter().map(String::as_str));
    cq = cq.atom("__capA", &["u0"]);
    for (pos, &(ai, _)) in order.iter().enumerate() {
        let name = schema.relation(q.atoms()[ai].rel).name().to_string();
        let left = format!("u{pos}");
        let right = format!("u{}", pos + 1);
        cq = cq.atom(name, &[left.as_str(), right.as_str()]);
    }
    cq = cq.atom("__capB", &[format!("u{k}").as_str()]);
    let query = cq.build(catalog.schema())?;

    Ok(Problem {
        catalog,
        instance,
        prices,
        query,
        provenance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::certificates::certificate_price;
    use crate::price_points::PriceList;
    use qbdp_catalog::{tuple, Catalog};
    use qbdp_query::parser::parse_rule;

    fn c2_problem(tuples1: &[(i64, i64)], tuples2: &[(i64, i64)], n: i64) -> Problem {
        let col = Column::int_range(0, n);
        let cat = CatalogBuilder::new()
            .uniform_relation("R1", &["X", "Y"], &col)
            .uniform_relation("R2", &["X", "Y"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        for &(a, b) in tuples1 {
            d.insert(cat.schema().rel_id("R1").unwrap(), tuple![a, b])
                .unwrap();
        }
        for &(a, b) in tuples2 {
            d.insert(cat.schema().rel_id("R2").unwrap(), tuple![a, b])
                .unwrap();
        }
        let q = parse_rule(cat.schema(), "C2(x, y) :- R1(x, y), R2(y, x)").unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        Problem::new(cat, d, prices, q)
    }

    #[test]
    fn c2_exact_price_matches_subset_engine() {
        let p = c2_problem(&[(0, 1)], &[(1, 0)], 2);
        let exact = cycle_price(&p, CertificateConfig::default()).unwrap();
        let subset = crate::exact::subset::subset_price(
            &p.catalog,
            &p.instance,
            &p.prices,
            &qbdp_query::bundle::Bundle::from(p.query.clone()),
            crate::exact::subset::SubsetConfig::default(),
        )
        .unwrap();
        assert_eq!(exact.price, subset.price);
    }

    #[test]
    fn bounds_sandwich_the_exact_price() {
        for (t1, t2) in [
            (vec![(0, 1)], vec![(1, 0)]),
            (vec![(0, 0), (1, 1)], vec![(0, 0)]),
            (vec![], vec![(0, 1), (1, 0)]),
            (vec![(0, 0), (0, 1), (1, 0)], vec![(0, 0), (1, 1)]),
        ] {
            let p = c2_problem(&t1, &t2, 2);
            let exact = certificate_price(
                &p.catalog,
                &p.instance,
                &p.prices,
                &p.query,
                CertificateConfig::default(),
            )
            .unwrap()
            .price;
            let (lb, ub) = cycle_bounds(&p).unwrap();
            assert!(lb <= exact, "lb {lb} above exact {exact} for {t1:?}/{t2:?}");
            assert!(
                ub.price >= exact,
                "ub {} below exact {exact} for {t1:?}/{t2:?}",
                ub.price
            );
        }
    }

    #[test]
    fn cycle_price_is_exact_even_when_bounds_gap() {
        // Whatever the bounds do, cycle_price must equal the certificate
        // engine's answer.
        let mut found_gap = false;
        for seed in 0..20u64 {
            let mut state = 0x9e3779b9u64.wrapping_mul(seed + 1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let t1: Vec<(i64, i64)> = (0..4)
                .filter(|_| next() % 2 == 0)
                .map(|i| ((i / 2) as i64, (i % 2) as i64))
                .collect();
            let t2: Vec<(i64, i64)> = (0..4)
                .filter(|_| next() % 2 == 0)
                .map(|i| ((i / 2) as i64, (i % 2) as i64))
                .collect();
            let p = c2_problem(&t1, &t2, 2);
            let exact = certificate_price(
                &p.catalog,
                &p.instance,
                &p.prices,
                &p.query,
                CertificateConfig::default(),
            )
            .unwrap()
            .price;
            let via_cycle = cycle_price(&p, CertificateConfig::default()).unwrap().price;
            assert_eq!(via_cycle, exact, "seed {seed}");
            let (lb, ub) = cycle_bounds(&p).unwrap();
            if lb != ub.price {
                found_gap = true;
            }
        }
        // The sandwich is not always tight (that is the point of the
        // exact fallback); at least sanity-check we exercised both paths
        // OR none had gaps (both acceptable, but record it).
        let _ = found_gap;
    }

    #[test]
    fn upper_bound_views_resolve_to_originals() {
        let p = c2_problem(&[(0, 1)], &[(1, 0)], 2);
        let ub = global_cut_result(&p).unwrap();
        assert!(ub.price.is_finite());
        // Every returned view is a real view of the ORIGINAL catalog.
        for v in &ub.views {
            assert!(v.attr.rel.0 <= 1, "cap view leaked: {v:?}");
            assert!(p.prices.get(v).is_finite());
        }
        let total: Price = ub.views.iter().map(|v| p.prices.get(v)).sum();
        assert_eq!(total, ub.price);
    }

    #[test]
    fn non_cycle_rejected() {
        let col = Column::int_range(0, 2);
        let cat: Catalog = CatalogBuilder::new()
            .uniform_relation("R1", &["X", "Y"], &col)
            .uniform_relation("R2", &["X", "Y"], &col)
            .build()
            .unwrap();
        let d = cat.empty_instance();
        let q = parse_rule(cat.schema(), "Q(x, y, z) :- R1(x, y), R2(y, z)").unwrap();
        let p = Problem::new(
            cat.clone(),
            d,
            PriceList::uniform(&cat, Price::dollars(1)),
            q,
        );
        assert!(matches!(
            cycle_price(&p, CertificateConfig::default()),
            Err(PricingError::NotApplicable(_))
        ));
    }

    #[test]
    fn orientation_agnostic_cycles_priced() {
        // A(u,v), C(u,v) is C2 up to flipping C's attributes.
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("A", &["X", "Y"], &col)
            .uniform_relation("C", &["X", "Y"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("A").unwrap(), tuple![0, 1])
            .unwrap();
        d.insert(cat.schema().rel_id("C").unwrap(), tuple![0, 1])
            .unwrap();
        let q = parse_rule(cat.schema(), "Q(u, v) :- A(u, v), C(u, v)").unwrap();
        let p = Problem::new(
            cat.clone(),
            d.clone(),
            PriceList::uniform(&cat, Price::dollars(1)),
            q.clone(),
        );
        let via_cycle = cycle_price(&p, CertificateConfig::default()).unwrap().price;
        let exact = certificate_price(&cat, &d, &p.prices, &q, CertificateConfig::default())
            .unwrap()
            .price;
        assert_eq!(via_cycle, exact);
    }
}
