//! Dynamic pricing (§2.7): the database grows by insertions; the explicit
//! prices stay fixed.
//!
//! For selection views and full conjunctive queries, instance-based
//! determinacy is monotone (Proposition 2.20), hence the arbitrage-price is
//! monotone under insertions (Proposition 2.22) and consistency, once
//! established, survives every insertion (Proposition 2.23 — and for
//! selection-view *lists* consistency is instance-independent outright,
//! Proposition 3.2). With projections the guarantees fail: Example 2.18's
//! `$100 → $1` price drop is reproduced in experiment E6 through the
//! general schedule machinery of [`crate::support`].
//!
//! This module provides the measurement harness those experiments use.

use crate::error::PricingError;
use crate::money::Price;
use crate::pricer::Pricer;
use qbdp_catalog::{RelId, Tuple};
use qbdp_query::ast::ConjunctiveQuery;

/// The price of a query observed after each batch of insertions.
#[derive(Clone, Debug)]
pub struct PriceTrajectory {
    /// `(total tuples in the instance, price)` after each step; index 0 is
    /// the state before any insertion.
    pub steps: Vec<(usize, Price)>,
}

impl PriceTrajectory {
    /// Whether prices never decreased along the trajectory
    /// (Definition 2.21's monotonicity, observed).
    pub fn is_monotone(&self) -> bool {
        self.steps.windows(2).all(|w| w[0].1 <= w[1].1)
    }

    /// The first violating step, if any: `(step index, before, after)`.
    pub fn first_violation(&self) -> Option<(usize, Price, Price)> {
        self.steps
            .windows(2)
            .enumerate()
            .find(|(_, w)| w[0].1 > w[1].1)
            .map(|(i, w)| (i + 1, w[0].1, w[1].1))
    }
}

/// Price `q` on the pricer's current instance, then after each insertion
/// batch, recording the trajectory. The pricer is advanced in place.
pub fn price_trajectory(
    pricer: &mut Pricer,
    batches: impl IntoIterator<Item = Vec<(RelId, Tuple)>>,
    q: &ConjunctiveQuery,
) -> Result<PriceTrajectory, PricingError> {
    let mut steps = Vec::new();
    steps.push((pricer.instance().total_tuples(), pricer.price_cq(q)?.price));
    for batch in batches {
        for (rel, t) in batch {
            pricer.insert(rel, [t])?;
        }
        steps.push((pricer.instance().total_tuples(), pricer.price_cq(q)?.price));
    }
    Ok(PriceTrajectory { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::price_points::PriceList;
    use qbdp_catalog::{tuple, CatalogBuilder, Column};
    use qbdp_query::parser::parse_rule;

    /// Proposition 2.20/2.22: selection views + full CQ ⇒ monotone prices.
    #[test]
    fn full_cq_prices_are_monotone_under_insertions() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("T", &["Y"], &col)
            .build()
            .unwrap();
        let d = cat.empty_instance();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let mut pricer = Pricer::new(cat, d, prices).unwrap();
        let q = parse_rule(pricer.catalog().schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let r = pricer.catalog().schema().rel_id("R").unwrap();
        let s = pricer.catalog().schema().rel_id("S").unwrap();
        let t = pricer.catalog().schema().rel_id("T").unwrap();
        let batches = vec![
            vec![(r, tuple![0])],
            vec![(s, tuple![0, 1])],
            vec![(t, tuple![1])],
            vec![(r, tuple![1]), (s, tuple![1, 2]), (t, tuple![2])],
            vec![(s, tuple![0, 0]), (s, tuple![2, 2])],
        ];
        let traj = price_trajectory(&mut pricer, batches, &q).unwrap();
        assert!(
            traj.is_monotone(),
            "violation: {:?}",
            traj.first_violation()
        );
        assert_eq!(traj.steps.len(), 6);
        // Prices strictly grew at least once (the query gained answers).
        assert!(traj.steps.first().unwrap().1 < traj.steps.last().unwrap().1);
    }

    /// With projections even selection views can yield non-monotone prices;
    /// the dichotomy marks such queries NP-complete and the exact engine
    /// exposes the drop (this mirrors the *spirit* of Example 2.18 in the
    /// §3 setting).
    #[test]
    fn projection_price_can_drop() {
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("S", &["X", "Y"], &col)
            .build()
            .unwrap();
        let d = cat.empty_instance();
        let mut prices = PriceList::new();
        // S.X views expensive, S.Y views cheap.
        let sx = cat.schema().resolve_attr("S.X").unwrap();
        let sy = cat.schema().resolve_attr("S.Y").unwrap();
        prices.set_attr_uniform(&cat, sx, Price::dollars(10));
        prices.set_attr_uniform(&cat, sy, Price::dollars(1));
        let mut pricer = Pricer::new(cat, d, prices).unwrap();
        let q = parse_rule(pricer.catalog().schema(), "H4(x) :- S(x, y)").unwrap();
        let s = pricer.catalog().schema().rel_id("S").unwrap();
        // On the empty instance, determining Π_X(S) needs real coverage; as
        // tuples arrive the knowledge structure shifts. We only assert the
        // harness records a trajectory; monotonicity is *not* guaranteed
        // and E6 reports what actually happens.
        let traj = price_trajectory(
            &mut pricer,
            vec![vec![(s, tuple![0, 0])], vec![(s, tuple![0, 1])]],
            &q,
        )
        .unwrap();
        assert_eq!(traj.steps.len(), 3);
        assert!(traj.steps.iter().all(|(_, p)| p.is_finite()));
    }
}
