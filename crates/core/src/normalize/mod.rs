//! The normalization pipeline of the GChQ pricing algorithm (§3.1).
//!
//! A [`Problem`] bundles everything the price depends on — catalog,
//! instance, price list, and the query — and each step rewrites it into an
//! equivalent, simpler problem:
//!
//! * **Step 1** ([`step1_predicates`]): interpreted predicates (and
//!   constants, first rewritten into fresh head variables with singleton
//!   columns) shrink columns, filter the database, and drop the affected
//!   price points;
//! * **Step 2** ([`step2_repeated`]): a variable occurring twice in one
//!   atom collapses the two attribute positions into one, priced at the
//!   minimum of the originals;
//! * **Step 3** ([`step3_hanging`]): each hanging variable branches into
//!   "buy the full cover of its attribute" vs "never touch that attribute",
//!   projecting the attribute away either way (Lemmas 3.10/3.11).
//!
//! Each reduced view keeps **provenance**: the original views a purchase of
//! it stands for, so quotes can always be expressed against the seller's
//! real price list.

pub mod step1_predicates;
pub mod step2_repeated;
pub mod step3_hanging;

use crate::error::PricingError;
use crate::price_points::PriceList;
use qbdp_catalog::{AttrRef, Catalog, Column, FxHashMap, Instance, RelationSchema, Schema, Value};
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::ast::ConjunctiveQuery;
use std::sync::Arc;

/// Maps a view of the *reduced* problem to the original views it stands
/// for. Absent keys map to themselves (the common case: untouched views).
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    map: FxHashMap<(AttrRef, Value), Vec<SelectionView>>,
}

impl Provenance {
    /// Identity provenance.
    pub fn identity() -> Self {
        Provenance::default()
    }

    /// Record that reduced view `(attr, value)` stands for `originals`
    /// (empty = "already paid for elsewhere", e.g. Step 3's free covers).
    pub fn record(&mut self, attr: AttrRef, value: Value, originals: Vec<SelectionView>) {
        self.map.insert((attr, value), originals);
    }

    /// Resolve a reduced view to original views.
    pub fn resolve(&self, view: &SelectionView) -> Vec<SelectionView> {
        match self.map.get(&(view.attr, view.value.clone())) {
            Some(orig) => orig.clone(),
            None => vec![view.clone()],
        }
    }
}

/// A self-contained pricing problem.
#[derive(Clone, Debug)]
pub struct Problem {
    /// Schema + columns.
    pub catalog: Catalog,
    /// The data.
    pub instance: Instance,
    /// The explicit selection-view prices.
    pub prices: PriceList,
    /// The query being priced (full CQ during the GChQ pipeline).
    pub query: ConjunctiveQuery,
    /// Reduced-view → original-view mapping.
    pub provenance: Provenance,
}

impl Problem {
    /// Wrap the inputs with identity provenance.
    pub fn new(
        catalog: Catalog,
        instance: Instance,
        prices: PriceList,
        query: ConjunctiveQuery,
    ) -> Self {
        Problem {
            catalog,
            instance,
            prices,
            query,
            provenance: Provenance::identity(),
        }
    }
}

/// Rebuild a problem's catalog/instance/prices with one attribute removed
/// from one relation (the projection underlying Step 3 and — via collapse —
/// Step 2). Returns the new pieces plus the [`AttrRef`] remap function's
/// data: all other relations keep their ids and positions; positions after
/// `drop_pos` within `rel` shift down by one.
///
/// The query is **not** rewritten here — callers rewrite atoms themselves,
/// because what replaces the dropped position differs per step.
pub fn drop_attribute(
    catalog: &Catalog,
    instance: &Instance,
    prices: &PriceList,
    provenance: &Provenance,
    rel: qbdp_catalog::RelId,
    drop_pos: usize,
) -> Result<(Catalog, Instance, PriceList, Provenance), PricingError> {
    let old_schema = catalog.schema();
    let mut schema = Schema::new();
    let mut columns: Vec<Vec<Column>> = Vec::with_capacity(old_schema.len());
    for (rid, r) in old_schema.iter() {
        if rid == rel {
            let attrs: Vec<String> = r
                .attrs()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop_pos)
                .map(|(_, a)| a.clone())
                .collect();
            schema.add_relation(RelationSchema::new(r.name(), attrs)?)?;
            columns.push(
                catalog
                    .relation_columns(rid)
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop_pos)
                    .map(|(_, c)| c.clone())
                    .collect(),
            );
        } else {
            schema.add_relation(RelationSchema::new(r.name(), r.attrs().to_vec())?)?;
            columns.push(catalog.relation_columns(rid).to_vec());
        }
    }
    let new_catalog = Catalog::new(Arc::new(schema), columns)?;

    // Project the instance.
    let mut new_instance = new_catalog.empty_instance();
    for (rid, _) in old_schema.iter() {
        for t in instance.relation(rid).iter() {
            let t = if rid == rel {
                t.without_position(drop_pos)
            } else {
                t.clone()
            };
            new_instance.insert(rid, t)?;
        }
    }

    // Remap prices and provenance: same relation ids; shifted positions.
    let remap = |attr: AttrRef| -> Option<AttrRef> {
        if attr.rel != rel {
            return Some(attr);
        }
        let pos = attr.attr.0 as usize;
        match pos.cmp(&drop_pos) {
            std::cmp::Ordering::Less => Some(attr),
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Greater => Some(AttrRef::new(rel, (pos - 1) as u32)),
        }
    };
    let mut new_prices = PriceList::new();
    for (view, price) in prices.iter() {
        if let Some(attr) = remap(view.attr) {
            new_prices.set(SelectionView::new(attr, view.value), price);
        }
    }
    let mut new_prov = Provenance::identity();
    for ((attr, value), originals) in &provenance.map {
        if let Some(attr) = remap(*attr) {
            new_prov.record(attr, value.clone(), originals.clone());
        }
    }
    // Shifted positions that had *identity* provenance must now point back
    // to their original (unshifted) selves explicitly.
    let r_arity = old_schema.relation(rel).arity();
    for pos in drop_pos + 1..r_arity {
        let old_attr = AttrRef::new(rel, pos as u32);
        let new_attr = AttrRef::new(rel, (pos - 1) as u32);
        for v in catalog.column(old_attr).iter() {
            if !provenance.map.contains_key(&(old_attr, v.clone())) {
                new_prov.record(
                    new_attr,
                    v.clone(),
                    vec![SelectionView::new(old_attr, v.clone())],
                );
            }
        }
    }

    Ok((new_catalog, new_instance, new_prices, new_prov))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Price;
    use qbdp_catalog::{tuple, CatalogBuilder};

    #[test]
    fn drop_attribute_projects_everything() {
        let cat = CatalogBuilder::new()
            .relation(
                "S",
                &[
                    ("X", Column::int_range(0, 2)),
                    ("Y", Column::int_range(10, 12)),
                    ("Z", Column::int_range(20, 22)),
                ],
            )
            .relation("R", &[("X", Column::int_range(0, 2))])
            .build()
            .unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(s, [tuple![0, 10, 20], tuple![0, 11, 20], tuple![1, 10, 21]])
            .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let (c2, d2, p2, prov) =
            drop_attribute(&cat, &d, &prices, &Provenance::identity(), s, 1).unwrap();
        // Schema: S(X, Z).
        assert_eq!(c2.schema().relation(s).arity(), 2);
        assert_eq!(c2.schema().relation(s).attrs(), &["X", "Z"]);
        // Instance projected with dedup: (0,20), (1,21).
        assert_eq!(d2.relation(s).len(), 2);
        assert!(d2.relation(s).contains(&tuple![0, 20]));
        // Prices: S.Y gone; S.Z now position 1.
        let new_sz = AttrRef::new(s, 1);
        assert_eq!(p2.get_at(new_sz, &Value::Int(20)), Price::dollars(1));
        assert_eq!(p2.views_on(AttrRef::new(s, 0)).count(), 2);
        // R untouched.
        let r = c2.schema().rel_id("R").unwrap();
        assert_eq!(p2.views_on(AttrRef::new(r, 0)).count(), 2);
        // Provenance: new S.Z=20 resolves to the original S.Z (position 2).
        let resolved = prov.resolve(&SelectionView::new(new_sz, Value::Int(20)));
        assert_eq!(
            resolved,
            vec![SelectionView::new(AttrRef::new(s, 2), Value::Int(20))]
        );
        // Untouched attributes resolve to themselves.
        let sx = SelectionView::new(AttrRef::new(s, 0), Value::Int(0));
        assert_eq!(prov.resolve(&sx), vec![sx.clone()]);
    }
}
