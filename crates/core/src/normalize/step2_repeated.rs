//! Step 2: remove multiple occurrences of a variable within one atom.
//!
//! For an atom `R(x, x, z)` over `R(X, Y, Z)`, introduce the reduced
//! relation `R'(X, Z)` with `Col_{R'.X} = Col_{R.X} ∩ Col_{R.Y}`, price
//! `p(σ_{R'.X=a}) = min(p(σ_{R.X=a}), p(σ_{R.Y=a}))`, and data
//! `R' = π_{X,Z}(σ_{X=Y}(R))`. The paper proves the price of the rewritten
//! query equals the original. Provenance records which original view the
//! min came from, so quotes resolve to real views.

use super::{drop_attribute, Problem};
use crate::error::PricingError;
use qbdp_catalog::{AttrRef, Column, Instance, RelationSchema, Schema};
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::ast::{Atom, Term};
use std::sync::Arc;

/// Apply Step 2 until no atom repeats a variable.
pub fn apply(mut problem: Problem) -> Result<Problem, PricingError> {
    loop {
        let Some((atom_idx, pos_a, pos_b)) = find_repeat(&problem) else {
            return Ok(problem);
        };
        problem = collapse(problem, atom_idx, pos_a, pos_b)?;
    }
}

/// First `(atom, earlier position, later position)` with a repeated var.
fn find_repeat(problem: &Problem) -> Option<(usize, usize, usize)> {
    for (ai, atom) in problem.query.atoms().iter().enumerate() {
        for i in 0..atom.terms.len() {
            let Term::Var(v) = atom.terms[i] else {
                continue;
            };
            for j in i + 1..atom.terms.len() {
                if matches!(atom.terms[j], Term::Var(w) if w == v) {
                    return Some((ai, i, j));
                }
            }
        }
    }
    None
}

/// Collapse positions `pos_a` and `pos_b` (same variable) of one atom:
/// restrict the relation to tuples with equal values at both positions,
/// intersect the columns into position `pos_a`, take per-value price
/// minima, then drop position `pos_b`.
fn collapse(
    problem: Problem,
    atom_idx: usize,
    pos_a: usize,
    pos_b: usize,
) -> Result<Problem, PricingError> {
    let rel = problem.query.atoms()[atom_idx].rel;
    let attr_a = AttrRef::new(rel, pos_a as u32);
    let attr_b = AttrRef::new(rel, pos_b as u32);

    // 1. New column for position a: the intersection.
    let col_ab: Column = problem
        .catalog
        .column(attr_a)
        .intersect(problem.catalog.column(attr_b));

    // Rebuild the catalog with position a's column replaced.
    let old_schema = problem.catalog.schema();
    let mut schema = Schema::new();
    let mut columns = Vec::with_capacity(old_schema.len());
    for (rid, r) in old_schema.iter() {
        schema.add_relation(RelationSchema::new(r.name(), r.attrs().to_vec())?)?;
        let mut cols = problem.catalog.relation_columns(rid).to_vec();
        if rid == rel {
            cols[pos_a] = col_ab.clone();
        }
        columns.push(cols);
    }
    let catalog = qbdp_catalog::Catalog::new(Arc::new(schema), columns)?;

    // 2. Restrict the relation to the diagonal (t[a] == t[b], within the
    //    intersected column).
    let mut instance = Instance::empty(catalog.schema().clone());
    for (rid, _) in old_schema.iter() {
        for t in problem.instance.relation(rid).iter() {
            if rid == rel && (t.get(pos_a) != t.get(pos_b) || !col_ab.contains(t.get(pos_a))) {
                continue;
            }
            instance.insert(rid, t.clone())?;
        }
    }

    // 3. Price minima on the merged position, with provenance to whichever
    //    original view is cheaper.
    let mut prices = problem.prices.clone();
    let mut provenance = problem.provenance.clone();
    prices.remove_attr(attr_a);
    prices.remove_attr(attr_b);
    for v in col_ab.iter() {
        let pa = problem.prices.get_at(attr_a, v);
        let pb = problem.prices.get_at(attr_b, v);
        let (min, chosen_attr) = if pa <= pb { (pa, attr_a) } else { (pb, attr_b) };
        if min.is_finite() {
            prices.set(SelectionView::new(attr_a, v.clone()), min);
            // Resolve through any existing provenance of the chosen view.
            let orig = problem
                .provenance
                .resolve(&SelectionView::new(chosen_attr, v.clone()));
            provenance.record(attr_a, v.clone(), orig);
        }
    }

    // 4. Rewrite the query: drop position b from the atom. (Other atoms on
    //    the same relation would break this — Step 2 is only used on
    //    self-join-free queries, enforced here.)
    if problem
        .query
        .atoms()
        .iter()
        .enumerate()
        .any(|(i, a)| i != atom_idx && a.rel == rel)
    {
        return Err(PricingError::NotApplicable(
            "Step 2 requires a self-join-free query".into(),
        ));
    }
    let interim = Problem {
        catalog,
        instance,
        prices,
        query: problem.query.clone(),
        provenance,
    };

    // 5. Physically drop position b (shifts later positions down).
    let (catalog, instance, prices, provenance) = drop_attribute(
        &interim.catalog,
        &interim.instance,
        &interim.prices,
        &interim.provenance,
        rel,
        pos_b,
    )?;

    // Rewrite the atom's terms without position b; keep other atoms.
    let mut atoms: Vec<Atom> = Vec::with_capacity(problem.query.atoms().len());
    for (i, a) in problem.query.atoms().iter().enumerate() {
        if i == atom_idx {
            let terms = a
                .terms
                .iter()
                .enumerate()
                .filter(|&(p, _)| p != pos_b)
                .map(|(_, t)| t.clone())
                .collect();
            atoms.push(Atom { rel, terms });
        } else {
            atoms.push(a.clone());
        }
    }
    let query = qbdp_query::ast::ConjunctiveQuery::new(
        problem.query.name().to_string(),
        problem.query.head().to_vec(),
        atoms,
        problem.query.preds().to_vec(),
        problem.query.var_names().to_vec(),
        catalog.schema(),
    )?;

    Ok(Problem {
        catalog,
        instance,
        prices,
        query,
        provenance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Price;
    use crate::price_points::PriceList;
    use qbdp_catalog::{tuple, CatalogBuilder, Value};
    use qbdp_query::analysis;
    use qbdp_query::parser::parse_rule;

    #[test]
    fn collapse_repeated_positions() {
        let cat = CatalogBuilder::new()
            .relation(
                "R",
                &[
                    ("X", Column::int_range(0, 4)),
                    ("Y", Column::int_range(2, 6)),
                    ("Z", Column::int_range(0, 2)),
                ],
            )
            .build()
            .unwrap();
        let r = cat.schema().rel_id("R").unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(
            r,
            [
                tuple![2, 2, 0],
                tuple![3, 3, 1],
                tuple![2, 5, 1],
                tuple![3, 2, 0],
            ],
        )
        .unwrap();
        let mut prices = PriceList::uniform(&cat, Price::dollars(10));
        // Make Y views cheaper so the min picks them.
        prices.set(
            SelectionView::new(AttrRef::new(r, 1), Value::Int(2)),
            Price::dollars(1),
        );
        let q = parse_rule(cat.schema(), "Q(x, z) :- R(x, x, z)").unwrap();
        let out = apply(Problem::new(cat, d, prices, q)).unwrap();
        // Schema: R(X, Z); column of X = {2, 3} (intersection of 0..4, 2..6).
        assert_eq!(out.catalog.schema().relation(r).arity(), 2);
        let new_x = AttrRef::new(r, 0);
        assert_eq!(out.catalog.column(new_x).len(), 2);
        // Data: diagonal tuples only, projected: (2,0), (3,1).
        assert_eq!(out.instance.relation(r).len(), 2);
        assert!(out.instance.relation(r).contains(&tuple![2, 0]));
        assert!(out.instance.relation(r).contains(&tuple![3, 1]));
        // Price of σ_{R'.X=2} = min($10 X, $1 Y) = $1, provenance → R.Y=2.
        assert_eq!(out.prices.get_at(new_x, &Value::Int(2)), Price::dollars(1));
        let resolved = out
            .provenance
            .resolve(&SelectionView::new(new_x, Value::Int(2)));
        assert_eq!(
            resolved,
            vec![SelectionView::new(AttrRef::new(r, 1), Value::Int(2))]
        );
        // σ_{R'.X=3} = $10 via X.
        assert_eq!(out.prices.get_at(new_x, &Value::Int(3)), Price::dollars(10));
        // The query atom is now binary.
        assert_eq!(out.query.atoms()[0].terms.len(), 2);
        assert!(!analysis::has_repeated_var_in_atom(&out.query));
    }

    #[test]
    fn triple_occurrence_collapses_fully() {
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y", "Z"], &Column::int_range(0, 3))
            .build()
            .unwrap();
        let r = cat.schema().rel_id("R").unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(r, [tuple![1, 1, 1], tuple![1, 2, 1], tuple![2, 2, 2]])
            .unwrap();
        let q = parse_rule(cat.schema(), "Q(x) :- R(x, x, x)").unwrap();
        let out = apply(Problem::new(
            cat.clone(),
            d,
            PriceList::uniform(&cat, Price::dollars(1)),
            q,
        ))
        .unwrap();
        assert_eq!(out.catalog.schema().relation(r).arity(), 1);
        assert_eq!(out.instance.relation(r).len(), 2); // (1), (2)
        assert_eq!(out.query.atoms()[0].terms.len(), 1);
    }

    #[test]
    fn no_op_without_repeats() {
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &Column::int_range(0, 3))
            .build()
            .unwrap();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x, y)").unwrap();
        let d = cat.empty_instance();
        let out = apply(Problem::new(
            cat.clone(),
            d,
            PriceList::uniform(&cat, Price::dollars(1)),
            q,
        ))
        .unwrap();
        assert_eq!(
            out.catalog
                .schema()
                .relation(qbdp_catalog::RelId(0))
                .arity(),
            2
        );
    }
}
