//! Step 1: remove interpreted predicates (and constants in atoms).
//!
//! For a predicate `C(x)`, shrink the column of every attribute position
//! that `x` occupies to the values satisfying `C`, filter the database
//! accordingly, drop the price points on removed values, and erase the
//! predicate from the query. The paper proves `p_{S'}^{D'}(Q') = p_S^D(Q)`.
//!
//! Constants are handled first by rewriting `R(…, c, …)` into `R(…, x_c, …)`
//! with a fresh variable `x_c` added to the **head** (keeping the query
//! full) and the predicate `x_c = c`; the singleton column then carries the
//! constant's effect. The extra head column is information-free (it is the
//! constant `c` on every answer), so the price is unchanged.

use super::Problem;
use crate::error::PricingError;
use crate::price_points::PriceList;
use qbdp_catalog::{AttrRef, Catalog, Column};
use qbdp_query::analysis;
use qbdp_query::ast::{Atom, ConjunctiveQuery, Pred, PredAtom, Term, Var};

/// Apply Step 1 until the query has neither constants nor predicates.
pub fn apply(problem: Problem) -> Result<Problem, PricingError> {
    let problem = constants_to_predicates(problem)?;
    shrink_by_predicates(problem)
}

/// Rewrite constants inside atoms into fresh head variables constrained by
/// `=` predicates.
fn constants_to_predicates(problem: Problem) -> Result<Problem, PricingError> {
    let q = &problem.query;
    if !analysis::has_constants(q) {
        return Ok(problem);
    }
    let mut var_names = q.var_names().to_vec();
    let mut head = q.head().to_vec();
    let mut preds = q.preds().to_vec();
    let mut atoms: Vec<Atom> = Vec::with_capacity(q.atoms().len());
    let mut fresh = 0usize;
    for atom in q.atoms() {
        let mut terms = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            match term {
                Term::Var(v) => terms.push(Term::Var(*v)),
                Term::Const(c) => {
                    let v = Var(var_names.len() as u32);
                    var_names.push(format!("_c{fresh}"));
                    fresh += 1;
                    head.push(v);
                    preds.push(PredAtom {
                        var: v,
                        pred: Pred::Eq(c.clone()),
                    });
                    terms.push(Term::Var(v));
                }
            }
        }
        atoms.push(Atom {
            rel: atom.rel,
            terms,
        });
    }
    let query = ConjunctiveQuery::new(
        q.name().to_string(),
        head,
        atoms,
        preds,
        var_names,
        problem.catalog.schema(),
    )?;
    Ok(Problem { query, ..problem })
}

/// Shrink columns / data / prices by each predicate, then drop predicates.
fn shrink_by_predicates(problem: Problem) -> Result<Problem, PricingError> {
    let q = &problem.query;
    if q.preds().is_empty() {
        return Ok(problem);
    }
    // Collect, per attribute position, the conjunction of predicates that
    // apply to it (through the variable occupying it).
    let occ = analysis::var_occurrences(q);
    let mut shrink: Vec<(AttrRef, Vec<Pred>)> = Vec::new();
    for p in q.preds() {
        let Some(positions) = occ.get(&p.var) else {
            continue; // validated at construction; defensive
        };
        for &(ai, pos) in positions {
            let attr = AttrRef::new(q.atoms()[ai].rel, pos as u32);
            match shrink.iter_mut().find(|(a, _)| *a == attr) {
                Some((_, preds)) => preds.push(p.pred.clone()),
                None => shrink.push((attr, vec![p.pred.clone()])),
            }
        }
    }

    // Rebuild the catalog with shrunk columns.
    let old_schema = problem.catalog.schema();
    let mut columns: Vec<Vec<Column>> = Vec::with_capacity(old_schema.len());
    for (rid, rel) in old_schema.iter() {
        let mut rel_cols = Vec::with_capacity(rel.arity());
        for pos in 0..rel.arity() {
            let attr = AttrRef::new(rid, pos as u32);
            let col = problem.catalog.column(attr);
            let col = match shrink.iter().find(|(a, _)| *a == attr) {
                None => col.clone(),
                Some((_, preds)) => {
                    let mut err: Option<PricingError> = None;
                    let filtered = col.filter(|v| {
                        preds.iter().all(|p| match p.eval(v) {
                            Ok(b) => b,
                            Err(e) => {
                                err = Some(e.into());
                                false
                            }
                        })
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                    filtered
                }
            };
            rel_cols.push(col);
        }
        columns.push(rel_cols);
    }
    let catalog = Catalog::new(old_schema.clone(), columns)?;

    // Filter the database to the new columns.
    let mut instance = catalog.empty_instance();
    for (rid, rel) in old_schema.iter() {
        'tuples: for t in problem.instance.relation(rid).iter() {
            for pos in 0..rel.arity() {
                if !catalog
                    .column(AttrRef::new(rid, pos as u32))
                    .contains(t.get(pos))
                {
                    continue 'tuples;
                }
            }
            instance.insert(rid, t.clone())?;
        }
    }

    // Drop prices on removed values.
    let mut prices = PriceList::new();
    for (view, price) in problem.prices.iter() {
        if catalog.column(view.attr).contains(&view.value) {
            prices.set(view, price);
        }
    }

    // Provenance: shrinking does not rename views.
    let provenance = problem.provenance.clone();

    // The query with predicates erased.
    let query =
        problem
            .query
            .with_body(problem.query.atoms().to_vec(), Vec::new(), catalog.schema())?;

    Ok(Problem {
        catalog,
        instance,
        prices,
        query,
        provenance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Price;
    use qbdp_catalog::Value;
    use qbdp_catalog::{tuple, CatalogBuilder};
    use qbdp_query::parser::parse_rule;

    fn setup(query: &str) -> Problem {
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", Column::int_range(0, 5))])
            .relation(
                "S",
                &[
                    ("X", Column::int_range(0, 5)),
                    ("Y", Column::int_range(0, 5)),
                ],
            )
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        d.insert_all(r, (0..5).map(|i| tuple![i])).unwrap();
        d.insert_all(s, [tuple![0, 1], tuple![3, 4], tuple![4, 4]])
            .unwrap();
        let q = parse_rule(cat.schema(), query).unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        Problem::new(cat, d, prices, q)
    }

    #[test]
    fn predicate_shrinks_column_data_and_prices() {
        let p = setup("Q(x, y) :- R(x), S(x, y), x > 2");
        let out = apply(p).unwrap();
        assert!(out.query.preds().is_empty());
        let rx = out.catalog.schema().resolve_attr("R.X").unwrap();
        let sx = out.catalog.schema().resolve_attr("S.X").unwrap();
        let sy = out.catalog.schema().resolve_attr("S.Y").unwrap();
        assert_eq!(out.catalog.column(rx).len(), 2); // {3, 4}
        assert_eq!(out.catalog.column(sx).len(), 2); // x occupies S.X too
        assert_eq!(out.catalog.column(sy).len(), 5); // y untouched
                                                     // R filtered to {3, 4}; S keeps (3,4), (4,4).
        assert_eq!(out.instance.relation(rx.rel).len(), 2);
        assert_eq!(out.instance.relation(sx.rel).len(), 2);
        // Prices on removed values are gone.
        assert!(out.prices.get_at(rx, &Value::Int(0)).is_infinite());
        assert_eq!(out.prices.get_at(rx, &Value::Int(3)), Price::dollars(1));
    }

    #[test]
    fn constants_become_singleton_columns() {
        let p = setup("Q(y) :- S(3, y)");
        let out = apply(p).unwrap();
        assert!(out.query.preds().is_empty());
        assert!(!analysis::has_constants(&out.query));
        // Query became full: head has the fresh variable.
        assert!(analysis::is_full(&out.query));
        let sx = out.catalog.schema().resolve_attr("S.X").unwrap();
        assert_eq!(out.catalog.column(sx).len(), 1);
        assert!(out.catalog.column(sx).contains(&Value::Int(3)));
        // Only the (3, 4) tuple survives.
        assert_eq!(out.instance.relation(sx.rel).len(), 1);
    }

    #[test]
    fn no_op_when_clean() {
        let p = setup("Q(x, y) :- R(x), S(x, y)");
        let before = p.catalog.sigma_size();
        let out = apply(p).unwrap();
        assert_eq!(out.catalog.sigma_size(), before);
    }
}
