//! Step 3: remove hanging variables (Lemmas 3.10 / 3.11).
//!
//! A hanging variable occurs in exactly one atom (at one position, after
//! Step 2). By Lemma 3.10 an optimal determining view set either **fully
//! covers** that attribute or **never touches it**, so each hanging
//! attribute branches the problem in two:
//!
//! * **cover**: pay `p(Σ_{R.X})` up front; the whole relation is then known,
//!   so in the reduced problem (attribute projected away) the relation is
//!   given out for free — all views of one surviving attribute get price 0;
//! * **skip**: project the attribute away and delete its price points.
//!
//! The final price is the minimum over the `2^h` reduced problems. Each
//! remaining problem has hanging variables only in unary atoms
//! (single-atom queries), which the chain reduction prices directly.

use super::{drop_attribute, Problem};
use crate::budget::Budget;
use crate::error::PricingError;
use crate::money::Price;
use qbdp_catalog::AttrRef;
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::analysis;
use qbdp_query::ast::{Atom, ConjunctiveQuery, Term, Var};

/// A fully reduced problem plus the cost and views already committed by the
/// cover branches taken on the way.
#[derive(Clone, Debug)]
pub struct ReducedBranch {
    /// The reduced problem (no hanging variables in non-unary atoms).
    pub problem: Problem,
    /// Price already paid for full covers.
    pub base_cost: Price,
    /// Original views bought by those full covers.
    pub base_views: Vec<SelectionView>,
}

/// Cap on the number of hanging attributes (the expansion is `2^h`, as the
/// paper notes).
pub const MAX_HANGING: usize = 12;

/// Expand a problem into its Step 3 branches.
pub fn branches(problem: Problem) -> Result<Vec<ReducedBranch>, PricingError> {
    let (out, complete) = branches_within(problem, &Budget::unlimited())?;
    debug_assert!(complete, "unlimited budgets never exhaust");
    Ok(out)
}

/// [`branches`] under a [`Budget`]. Returns the branches produced before
/// the budget ran out plus a completeness flag. Every returned branch is a
/// genuine purchase strategy, so the minimum over a *partial* branch list
/// still upper-bounds the true price; only the `complete = true` minimum
/// is exact. A limited budget also lifts the `2^h` cap error: too many
/// hanging attributes simply yield `(empty, false)` and the caller falls
/// back structurally.
pub fn branches_within(
    problem: Problem,
    budget: &Budget,
) -> Result<(Vec<ReducedBranch>, bool), PricingError> {
    let h = count_hanging(&problem.query);
    if h > MAX_HANGING {
        if budget.is_limited() {
            return Ok((Vec::new(), false));
        }
        return Err(PricingError::LimitExceeded(format!(
            "{h} hanging attributes exceed the 2^h branch cap (max {MAX_HANGING})"
        )));
    }
    let mut out = Vec::new();
    let complete = expand(problem, Price::ZERO, Vec::new(), &mut out, budget)?;
    Ok((out, complete))
}

fn count_hanging(q: &ConjunctiveQuery) -> usize {
    analysis::hanging_vars(q)
        .into_iter()
        .filter(|&v| hang_site(q, v).is_some())
        .count()
}

/// The (atom, position) of a hanging variable eligible for removal: its
/// atom must keep at least one other position (unary atoms are left alone —
/// they are whole single-atom queries, priced directly by the chain
/// reduction as a full cover).
fn hang_site(q: &ConjunctiveQuery, v: Var) -> Option<(usize, usize)> {
    let occ = analysis::var_occurrences(q);
    let sites = occ.get(&v)?;
    let (atom_idx, pos) = *sites.first()?;
    if sites.iter().any(|&(a, _)| a != atom_idx) {
        return None; // not hanging
    }
    if q.atoms()[atom_idx].terms.len() < 2 {
        return None; // unary atom: leave in place
    }
    Some((atom_idx, pos))
}

fn expand(
    problem: Problem,
    base_cost: Price,
    base_views: Vec<SelectionView>,
    out: &mut Vec<ReducedBranch>,
    budget: &Budget,
) -> Result<bool, PricingError> {
    // Projection copies the instance, so each expansion node costs about
    // one instance scan.
    if !budget.charge(16 + problem.instance.total_tuples() as u64) {
        return Ok(false);
    }
    // Find the next removable hanging variable.
    let next = analysis::hanging_vars(&problem.query)
        .into_iter()
        .find_map(|v| hang_site(&problem.query, v).map(|site| (v, site)));
    let Some((var, (atom_idx, pos))) = next else {
        out.push(ReducedBranch {
            problem,
            base_cost,
            base_views,
        });
        return Ok(true);
    };
    let rel = problem.query.atoms()[atom_idx].rel;
    let attr = AttrRef::new(rel, pos as u32);

    // ---- Branch A: buy the full cover Σ_{R.X}. ----
    let cover_price = problem.prices.full_cover_price(&problem.catalog, attr);
    if cover_price.is_finite() {
        let mut views = base_views.clone();
        for v in problem.catalog.column(attr).iter() {
            views.extend(
                problem
                    .provenance
                    .resolve(&SelectionView::new(attr, v.clone())),
            );
        }
        let mut reduced = project_out(&problem, rel, atom_idx, pos, var)?;
        // Give the relation out for free on one *surviving* attribute —
        // prefer a join position so later hanging-removals of this relation
        // don't erase the freebie.
        let free_pos = choose_free_position(&reduced.query, atom_idx);
        let free_attr = AttrRef::new(rel, free_pos as u32);
        reduced.prices.remove_attr(free_attr);
        for v in reduced.catalog.column(free_attr).iter() {
            reduced
                .prices
                .set(SelectionView::new(free_attr, v.clone()), Price::ZERO);
            reduced.provenance.record(free_attr, v.clone(), Vec::new());
        }
        if !expand(
            reduced,
            base_cost.saturating_add(cover_price),
            views,
            out,
            budget,
        )? {
            return Ok(false);
        }
    }

    // ---- Branch B: never touch R.X. ----
    let reduced = project_out(&problem, rel, atom_idx, pos, var)?;
    expand(reduced, base_cost, base_views, out, budget)
}

/// Position of the reduced atom whose variable is not hanging (a join
/// variable), falling back to 0.
fn choose_free_position(q: &ConjunctiveQuery, atom_idx: usize) -> usize {
    let hanging = analysis::hanging_vars(q);
    let atom = &q.atoms()[atom_idx];
    atom.terms
        .iter()
        .position(|t| matches!(t, Term::Var(v) if !hanging.contains(v)))
        .unwrap_or(0)
}

/// Project attribute `pos` of `rel` out of catalog/instance/prices and
/// rewrite the query: the atom loses the position; the head loses `var`.
fn project_out(
    problem: &Problem,
    rel: qbdp_catalog::RelId,
    atom_idx: usize,
    pos: usize,
    var: Var,
) -> Result<Problem, PricingError> {
    let (catalog, instance, prices, provenance) = drop_attribute(
        &problem.catalog,
        &problem.instance,
        &problem.prices,
        &problem.provenance,
        rel,
        pos,
    )?;
    let mut atoms: Vec<Atom> = Vec::with_capacity(problem.query.atoms().len());
    for (i, a) in problem.query.atoms().iter().enumerate() {
        if i == atom_idx {
            let terms = a
                .terms
                .iter()
                .enumerate()
                .filter(|&(p, _)| p != pos)
                .map(|(_, t)| t.clone())
                .collect();
            atoms.push(Atom { rel, terms });
        } else {
            atoms.push(a.clone());
        }
    }
    let head: Vec<Var> = problem
        .query
        .head()
        .iter()
        .copied()
        .filter(|&h| h != var)
        .collect();
    let query = ConjunctiveQuery::new(
        problem.query.name().to_string(),
        head,
        atoms,
        problem.query.preds().to_vec(),
        problem.query.var_names().to_vec(),
        catalog.schema(),
    )?;
    Ok(Problem {
        catalog,
        instance,
        prices,
        query,
        provenance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::price_points::PriceList;
    use qbdp_catalog::{tuple, CatalogBuilder, Column, Value};
    use qbdp_query::parser::parse_rule;

    /// Q(x, y, z) = R(x, y), S(y, z), T(z): x hangs on R.X.
    fn setup() -> Problem {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .uniform_relation("S", &["Y", "Z"], &col)
            .uniform_relation("T", &["Z"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("R").unwrap(), tuple![0, 1])
            .unwrap();
        d.insert(cat.schema().rel_id("S").unwrap(), tuple![1, 2])
            .unwrap();
        d.insert(cat.schema().rel_id("T").unwrap(), tuple![2])
            .unwrap();
        let q = parse_rule(cat.schema(), "Q(x, y, z) :- R(x, y), S(y, z), T(z)").unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        Problem::new(cat, d, prices, q)
    }

    #[test]
    fn one_hanging_var_gives_two_branches() {
        let p = setup();
        let bs = branches(p).unwrap();
        assert_eq!(bs.len(), 2);
        // Branch A: paid the $3 full cover of R.X, bought its 3 views, and
        // some attribute of R' is free.
        let a = bs
            .iter()
            .find(|b| b.base_cost == Price::dollars(3))
            .unwrap();
        assert_eq!(a.base_views.len(), 3);
        let r = a.problem.catalog.schema().rel_id("R").unwrap();
        assert_eq!(a.problem.catalog.schema().relation(r).arity(), 1);
        let free = AttrRef::new(r, 0);
        assert_eq!(a.problem.prices.get_at(free, &Value::Int(0)), Price::ZERO);
        // Free views resolve to nothing (already paid).
        assert!(a
            .problem
            .provenance
            .resolve(&SelectionView::new(free, Value::Int(0)))
            .is_empty());
        // Branch B: nothing paid; R' has no prices on the erased attr but
        // keeps Y's (now position 0) original prices.
        let b = bs.iter().find(|b| b.base_cost == Price::ZERO).unwrap();
        assert!(b.base_views.is_empty());
        let rb = b.problem.catalog.schema().rel_id("R").unwrap();
        assert_eq!(
            b.problem.prices.get_at(AttrRef::new(rb, 0), &Value::Int(1)),
            Price::dollars(1)
        );
        // Both branches: query is now R'(y), S(y, z), T(z) — a chain.
        for br in &bs {
            assert_eq!(br.problem.query.atoms()[0].terms.len(), 1);
            assert!(qbdp_query::chain::ChainQuery::from_cq(&br.problem.query).is_ok());
        }
    }

    #[test]
    fn star_query_reduces_to_unary_chain() {
        // Star: R(x,y), S(x,z), T(x): y and z hang.
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .uniform_relation("S", &["X", "Z"], &col)
            .uniform_relation("T", &["X"], &col)
            .build()
            .unwrap();
        let d = cat.empty_instance();
        let q = parse_rule(cat.schema(), "Q(x, y, z) :- R(x, y), S(x, z), T(x)").unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let bs = branches(Problem::new(cat, d, prices, q)).unwrap();
        assert_eq!(bs.len(), 4); // 2 hanging attrs ⇒ 4 branches
        for b in &bs {
            // All atoms unary: R'(x), S'(x), T(x) — a chain of unaries.
            assert!(b.problem.query.atoms().iter().all(|a| a.terms.len() == 1));
            assert!(qbdp_query::chain::ChainQuery::from_cq(&b.problem.query).is_ok());
        }
    }

    #[test]
    fn unpriced_cover_skips_branch_a() {
        let mut p = setup();
        // Unprice one R.X value: the full cover is impossible.
        let rx = p.catalog.schema().resolve_attr("R.X").unwrap();
        p.prices.remove(&SelectionView::new(rx, Value::Int(0)));
        let bs = branches(p).unwrap();
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].base_cost, Price::ZERO);
    }

    #[test]
    fn single_binary_atom_fully_branches() {
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .build()
            .unwrap();
        let d = cat.empty_instance();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x, y)").unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let bs = branches(Problem::new(cat, d, prices, q)).unwrap();
        // x removed (2 branches); the result R'(y) is unary so y stays.
        assert_eq!(bs.len(), 2);
        for b in &bs {
            assert_eq!(b.problem.query.atoms()[0].terms.len(), 1);
        }
    }
}
