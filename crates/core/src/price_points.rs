//! The seller's explicit price points.
//!
//! Two representations, mirroring the paper:
//!
//! * [`PriceSchedule`] — the general framework of §2.4: finitely many
//!   [`PricePoint`]s, each a *bundle of views* sold together at one price
//!   (views may be whole relations, selections, or arbitrary UCQ bundles);
//! * [`PriceList`] — the practical setting of §3: a partial function
//!   `p : Σ → ℝ⁺` pricing individual **selection views** `σ_{R.X=a}`.
//!   Views absent from the list are not for sale ([`Price::INFINITE`]).

use crate::money::Price;
use qbdp_catalog::{AttrRef, Catalog, FxHashMap, RelId, Value};
use qbdp_determinacy::selection::{SelectionView, ViewSet};
use qbdp_query::ast::Ucq;
use qbdp_query::bundle::Bundle;

/// The views sold by one price point.
#[derive(Clone, Debug)]
pub enum ViewDef {
    /// Selections and/or whole relations, priced as one bundle. Supports
    /// the PTIME determinacy oracle.
    Atomic(Vec<AtomicView>),
    /// An arbitrary bundle of UCQs (general §2 framework). Determinacy
    /// falls back to brute-force world enumeration — tiny instances only.
    Queries(Bundle),
}

/// An atomic view: a selection `σ_{R.X=a}` or a whole relation `R`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtomicView {
    /// `σ_{R.X=a}`.
    Selection(SelectionView),
    /// The full relation `R` (the building block of `ID`).
    Relation(RelId),
}

impl ViewDef {
    /// The entire dataset `ID` — every relation (paper §2.4 assumes
    /// `(ID, B) ∈ S`).
    pub fn identity(catalog: &Catalog) -> ViewDef {
        ViewDef::Atomic(
            catalog
                .schema()
                .rel_ids()
                .map(AtomicView::Relation)
                .collect(),
        )
    }

    /// Equivalent [`ViewSet`] coverage for atomic views: a whole-relation
    /// view fixes exactly the same tuples as the full cover of any one of
    /// its attributes over the declared column (possible worlds respect
    /// columns), so it is encoded as the full cover of attribute 0.
    pub fn as_viewset(&self, catalog: &Catalog) -> Option<ViewSet> {
        match self {
            ViewDef::Atomic(avs) => {
                let mut out = ViewSet::new();
                for av in avs {
                    match av {
                        AtomicView::Selection(s) => {
                            out.insert(s.clone());
                        }
                        AtomicView::Relation(r) => {
                            let attr = AttrRef::new(*r, 0);
                            for v in catalog.column(attr).iter() {
                                out.insert(SelectionView::new(attr, v.clone()));
                            }
                        }
                    }
                }
                Some(out)
            }
            ViewDef::Queries(_) => None,
        }
    }

    /// The views as a query bundle (always possible; used by the
    /// brute-force oracle and when the views themselves must be priced).
    pub fn as_bundle(&self, catalog: &Catalog) -> Bundle {
        match self {
            ViewDef::Queries(b) => b.clone(),
            ViewDef::Atomic(avs) => {
                let schema = catalog.schema();
                let mut queries = Vec::new();
                for av in avs {
                    match av {
                        AtomicView::Selection(s) => {
                            queries.push(Ucq::single(s.to_query(schema)));
                        }
                        AtomicView::Relation(r) => {
                            // The identity query for one relation.
                            #[allow(clippy::expect_used)]
                            let id = Bundle::identity(schema)
                                // audit: allow(R2: identity over a built schema is well-formed)
                                .expect("identity bundle is well-formed");
                            queries.push(id.queries()[r.0 as usize].clone());
                        }
                    }
                }
                Bundle::new(queries)
            }
        }
    }
}

/// One explicit price point `(V, p)`.
#[derive(Clone, Debug)]
pub struct PricePoint {
    /// A label for explanations ("WA businesses", "entire dataset").
    pub name: String,
    /// The views sold.
    pub views: ViewDef,
    /// The price.
    pub price: Price,
}

impl PricePoint {
    /// Construct a price point.
    pub fn new(name: impl Into<String>, views: ViewDef, price: Price) -> Self {
        PricePoint {
            name: name.into(),
            views,
            price,
        }
    }
}

/// A finite set of price points `S = {(V_1, p_1), …, (V_m, p_m)}` (§2.4).
#[derive(Clone, Debug, Default)]
pub struct PriceSchedule {
    points: Vec<PricePoint>,
}

impl PriceSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        PriceSchedule::default()
    }

    /// Append a price point.
    pub fn add(&mut self, point: PricePoint) -> &mut Self {
        self.points.push(point);
        self
    }

    /// The points.
    pub fn points(&self) -> &[PricePoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether every point is atomic (selections / whole relations), which
    /// enables the PTIME determinacy oracle.
    pub fn all_atomic(&self) -> bool {
        self.points
            .iter()
            .all(|p| matches!(p.views, ViewDef::Atomic(_)))
    }
}

/// The §3 price list: individual prices on selection views, `p : Σ → ℝ⁺`
/// (partial; missing ⇒ not for sale).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PriceList {
    prices: FxHashMap<AttrRef, FxHashMap<Value, Price>>,
    len: usize,
}

impl PriceList {
    /// An empty list (nothing for sale).
    pub fn new() -> Self {
        PriceList::default()
    }

    /// Price every selection view in `Σ` uniformly (common in synthetic
    /// workloads and in Example 3.8, where every view costs $1).
    pub fn uniform(catalog: &Catalog, price: Price) -> Self {
        let mut pl = PriceList::new();
        for attr in catalog.schema().all_attrs() {
            for v in catalog.column(attr).iter() {
                pl.set(SelectionView::new(attr, v.clone()), price);
            }
        }
        pl
    }

    /// Set the price of one view; replaces any previous price.
    pub fn set(&mut self, view: SelectionView, price: Price) -> &mut Self {
        let slot = self.prices.entry(view.attr).or_default();
        if slot.insert(view.value, price).is_none() {
            self.len += 1;
        }
        self
    }

    /// Remove a view from sale. Returns whether it was priced.
    pub fn remove(&mut self, view: &SelectionView) -> bool {
        let removed = self
            .prices
            .get_mut(&view.attr)
            .is_some_and(|m| m.remove(&view.value).is_some());
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Remove every price on an attribute (Step 3, branch "not covered").
    pub fn remove_attr(&mut self, attr: AttrRef) {
        if let Some(m) = self.prices.remove(&attr) {
            self.len -= m.len();
        }
    }

    /// Price of a view; [`Price::INFINITE`] when not for sale.
    pub fn get(&self, view: &SelectionView) -> Price {
        self.prices
            .get(&view.attr)
            .and_then(|m| m.get(&view.value))
            .copied()
            .unwrap_or(Price::INFINITE)
    }

    /// Price of `σ_{attr=value}`.
    pub fn get_at(&self, attr: AttrRef, value: &Value) -> Price {
        self.prices
            .get(&attr)
            .and_then(|m| m.get(value))
            .copied()
            .unwrap_or(Price::INFINITE)
    }

    /// Number of priced views.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is priced.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The price of the **full cover** `Σ_{R.X}` — the sum over all column
    /// values; `INFINITE` if any value is unpriced.
    pub fn full_cover_price(&self, catalog: &Catalog, attr: AttrRef) -> Price {
        catalog
            .column(attr)
            .iter()
            .map(|v| self.get_at(attr, v))
            .sum()
    }

    /// Whether relation `R` is (indirectly) for sale: some attribute's full
    /// cover is finite. By Lemma 3.1 this is exactly `D ⊢ S ։ R`.
    pub fn relation_sellable(&self, catalog: &Catalog, rel: RelId) -> bool {
        let arity = catalog.schema().relation(rel).arity();
        (0..arity).any(|pos| {
            self.full_cover_price(catalog, AttrRef::new(rel, pos as u32))
                .is_finite()
        })
    }

    /// Whether the whole dataset is for sale (`D ⊢ S ։ ID`): every relation
    /// is sellable. Required by the framework (§2.4 / §3).
    pub fn sells_identity(&self, catalog: &Catalog) -> bool {
        catalog
            .schema()
            .rel_ids()
            .all(|r| self.relation_sellable(catalog, r))
    }

    /// Price of the whole dataset bought view-by-view: sum over relations of
    /// the cheapest finite full cover.
    pub fn identity_price(&self, catalog: &Catalog) -> Price {
        catalog
            .schema()
            .rel_ids()
            .map(|r| {
                let arity = catalog.schema().relation(r).arity();
                (0..arity)
                    .map(|pos| self.full_cover_price(catalog, AttrRef::new(r, pos as u32)))
                    .min()
                    .unwrap_or(Price::INFINITE)
            })
            .sum()
    }

    /// Iterate over the priced views.
    pub fn iter(&self) -> impl Iterator<Item = (SelectionView, Price)> + '_ {
        self.prices.iter().flat_map(|(attr, m)| {
            m.iter().map(move |(v, p)| {
                (
                    SelectionView {
                        attr: *attr,
                        value: v.clone(),
                    },
                    *p,
                )
            })
        })
    }

    /// The priced views on one attribute.
    pub fn views_on(&self, attr: AttrRef) -> impl Iterator<Item = (&Value, Price)> + '_ {
        self.prices
            .get(&attr)
            .into_iter()
            .flat_map(|m| m.iter().map(|(v, p)| (v, *p)))
    }

    /// Set all views of an attribute (over the catalog's column) to a fixed
    /// price. `Price::ZERO` encodes "given out for free" in Step 3's
    /// full-cover branch.
    pub fn set_attr_uniform(&mut self, catalog: &Catalog, attr: AttrRef, price: Price) {
        for v in catalog.column(attr).iter() {
            self.set(SelectionView::new(attr, v.clone()), price);
        }
    }
}

impl FromIterator<(SelectionView, Price)> for PriceList {
    fn from_iter<T: IntoIterator<Item = (SelectionView, Price)>>(iter: T) -> Self {
        let mut pl = PriceList::new();
        for (v, p) in iter {
            pl.set(v, p);
        }
        pl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{CatalogBuilder, Column};

    fn cat() -> Catalog {
        CatalogBuilder::new()
            .relation("R", &[("X", Column::int_range(0, 3))])
            .relation(
                "S",
                &[
                    ("X", Column::int_range(0, 3)),
                    ("Y", Column::int_range(0, 2)),
                ],
            )
            .build()
            .unwrap()
    }

    fn sel(c: &Catalog, dotted: &str, v: i64) -> SelectionView {
        SelectionView::new(c.schema().resolve_attr(dotted).unwrap(), Value::Int(v))
    }

    #[test]
    fn get_set_remove() {
        let c = cat();
        let mut pl = PriceList::new();
        assert!(pl.get(&sel(&c, "R.X", 0)).is_infinite());
        pl.set(sel(&c, "R.X", 0), Price::dollars(5));
        assert_eq!(pl.get(&sel(&c, "R.X", 0)), Price::dollars(5));
        assert_eq!(pl.len(), 1);
        pl.set(sel(&c, "R.X", 0), Price::dollars(7)); // replace
        assert_eq!(pl.len(), 1);
        assert_eq!(pl.get(&sel(&c, "R.X", 0)), Price::dollars(7));
        assert!(pl.remove(&sel(&c, "R.X", 0)));
        assert!(pl.is_empty());
    }

    #[test]
    fn full_cover_and_identity() {
        let c = cat();
        let mut pl = PriceList::uniform(&c, Price::dollars(1));
        let rx = c.schema().resolve_attr("R.X").unwrap();
        let sx = c.schema().resolve_attr("S.X").unwrap();
        let sy = c.schema().resolve_attr("S.Y").unwrap();
        assert_eq!(pl.full_cover_price(&c, rx), Price::dollars(3));
        assert_eq!(pl.full_cover_price(&c, sy), Price::dollars(2));
        assert!(pl.sells_identity(&c));
        // Cheapest ID: R via X ($3) + S via Y ($2).
        assert_eq!(pl.identity_price(&c), Price::dollars(5));
        // Unprice one S.Y view: S still sellable via X.
        pl.remove(&sel(&c, "S.Y", 0));
        assert!(pl.full_cover_price(&c, sy).is_infinite());
        assert!(pl.relation_sellable(&c, sx.rel));
        assert_eq!(pl.identity_price(&c), Price::dollars(6));
        // Unprice S.X too: S no longer sellable.
        pl.remove_attr(sx);
        assert!(!pl.sells_identity(&c));
        assert!(pl.identity_price(&c).is_infinite());
    }

    #[test]
    fn set_attr_uniform_zero() {
        let c = cat();
        let mut pl = PriceList::new();
        let sy = c.schema().resolve_attr("S.Y").unwrap();
        pl.set_attr_uniform(&c, sy, Price::ZERO);
        assert_eq!(pl.full_cover_price(&c, sy), Price::ZERO);
        assert_eq!(pl.views_on(sy).count(), 2);
    }

    #[test]
    fn schedule_atomicity() {
        let c = cat();
        let mut s = PriceSchedule::new();
        s.add(PricePoint::new(
            "ID",
            ViewDef::identity(&c),
            Price::dollars(100),
        ));
        assert!(s.all_atomic());
        assert_eq!(s.len(), 1);
        let vs = s.points()[0].views.as_viewset(&c).unwrap();
        // ID via attr-0 covers: R.X (3 values) + S.X (3 values).
        assert_eq!(vs.len(), 6);
        let b = s.points()[0].views.as_bundle(&c);
        assert_eq!(b.len(), 2);
    }
}
