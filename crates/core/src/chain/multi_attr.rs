//! §4 extension: explicit prices on **multi-attribute selections**
//! `σ_{R.X=a, R.Y=b}` for chain queries.
//!
//! The paper notes that for chain queries this only requires re-weighting
//! the flow graph: the tuple edge `w_{R.X=a} → v_{R.Y=b}` gets capacity
//! `p(σ_{R.X=a,R.Y=b})` instead of ∞ (a pair view covers exactly the tuple
//! `(a, b)`). For *generalized* chain queries the extension is NP-hard even
//! for `Q(x,y,z) = R(x,y,z)` — demonstrated in experiment E10 with the
//! exact engine.

use crate::error::PricingError;
use crate::money::Price;
use crate::normalize::Problem;
use qbdp_catalog::{FxHashMap, RelId, Value};
use qbdp_determinacy::selection::SelectionView;
use qbdp_flow::dinic;
use qbdp_query::chain::ChainQuery;

/// A pair selection view `σ_{R.X=a, R.Y=b}` on a binary relation (the two
/// attributes are the relation's chain-left and chain-right positions).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairView {
    /// The relation.
    pub rel: RelId,
    /// Value at the chain-left attribute.
    pub left: Value,
    /// Value at the chain-right attribute.
    pub right: Value,
}

/// Prices for pair views; unpriced pairs are not for sale (∞ tuple edges,
/// exactly the plain construction).
#[derive(Clone, Debug, Default)]
pub struct PairPriceList {
    prices: FxHashMap<(RelId, Value, Value), Price>,
}

impl PairPriceList {
    /// An empty pair list.
    pub fn new() -> Self {
        PairPriceList::default()
    }

    /// Price a pair view.
    pub fn set(&mut self, rel: RelId, left: Value, right: Value, price: Price) -> &mut Self {
        self.prices.insert((rel, left, right), price);
        self
    }

    /// The price of a pair view (∞ when unpriced).
    pub fn get(&self, rel: RelId, left: &Value, right: &Value) -> Price {
        self.prices
            .get(&(rel, left.clone(), right.clone()))
            .copied()
            .unwrap_or(Price::INFINITE)
    }

    /// Number of priced pairs.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Whether no pair is priced.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }
}

/// Result of pricing a chain query with mixed single+pair price points.
#[derive(Clone, Debug)]
pub struct MultiAttrResult {
    /// The price.
    pub price: Price,
    /// Purchased single-attribute views.
    pub views: Vec<SelectionView>,
    /// Purchased pair views.
    pub pair_views: Vec<PairView>,
}

/// Price a chain query whose price points include both single selections
/// (in `problem.prices`) and pair selections (`pairs`). Uses the dense
/// construction with tuple-edge capacities set to the pair prices.
#[allow(clippy::needless_range_loop)] // parallel left/right block tables are clearer indexed
pub fn multi_attr_chain_price(
    problem: &Problem,
    pairs: &PairPriceList,
) -> Result<MultiAttrResult, PricingError> {
    let chain = ChainQuery::from_cq(&problem.query)
        .map_err(|e| PricingError::NotApplicable(e.to_string()))?;
    let pa = chain.partial_answers(&problem.catalog, &problem.instance);

    // Rebuild the dense graph by hand so tuple edges can carry pair prices.
    // (The plain builder is reused for everything except tuple edges by
    // constructing with Dense mode and zero pairs — simpler to just build
    // here; the construction mirrors `ChainGraph::build`.)
    use qbdp_flow::{FlowGraph, INF};
    let k = chain.k();
    let mut g = FlowGraph::new();
    let s = g.add_node();
    let t = g.add_node();

    struct Block {
        col: qbdp_catalog::Column,
        base: usize,
    }
    let mut left_blocks: Vec<Block> = Vec::new();
    let mut right_blocks: Vec<Option<Block>> = Vec::new();
    let mut view_edges: FxHashMap<usize, SelectionView> = FxHashMap::default();
    let mut pair_edges: FxHashMap<usize, PairView> = FxHashMap::default();

    for i in 0..=k {
        let attr = chain.left_attr(i);
        let col = problem.catalog.column(attr).clone();
        let base = g.add_nodes(2 * col.len());
        for (vi, value) in col.iter().enumerate() {
            let price = problem.prices.get_at(attr, value);
            let e = g.add_edge(base + 2 * vi, base + 2 * vi + 1, price.as_capacity());
            if price.is_finite() {
                view_edges.insert(e, SelectionView::new(attr, value.clone()));
            }
        }
        left_blocks.push(Block { col, base });
        if chain.atoms()[i].unary {
            right_blocks.push(None);
        } else {
            let attr = chain.right_attr(i);
            let col = problem.catalog.column(attr).clone();
            let base = g.add_nodes(2 * col.len());
            for (vi, value) in col.iter().enumerate() {
                let price = problem.prices.get_at(attr, value);
                let e = g.add_edge(base + 2 * vi, base + 2 * vi + 1, price.as_capacity());
                if price.is_finite() {
                    view_edges.insert(e, SelectionView::new(attr, value.clone()));
                }
            }
            right_blocks.push(Some(Block { col, base }));
        }
    }
    let right = |i: usize| -> &Block { right_blocks[i].as_ref().unwrap_or(&left_blocks[i]) };

    // Tuple edges with pair prices.
    for i in 0..=k {
        if chain.atoms()[i].unary {
            continue;
        }
        let rel = chain.atoms()[i].rel;
        let lb = &left_blocks[i];
        let rb = right(i);
        for (ai, a) in lb.col.iter().enumerate() {
            for (bi, b) in rb.col.iter().enumerate() {
                let price = pairs.get(rel, a, b);
                let e = g.add_edge(lb.base + 2 * ai + 1, rb.base + 2 * bi, price.as_capacity());
                if price.is_finite() {
                    pair_edges.insert(
                        e,
                        PairView {
                            rel,
                            left: a.clone(),
                            right: b.clone(),
                        },
                    );
                }
            }
        }
    }

    // Skip edges (identical to the plain construction).
    for i in 0..=k {
        let lb = &left_blocks[i];
        for a in pa.lt(i) {
            if let Some(vi) = lb.col.index_of(a) {
                g.add_edge(s, lb.base + 2 * vi as usize, INF);
            }
        }
    }
    for j in 0..=k {
        let rb = right(j);
        for b in pa.rt(j) {
            if let Some(vi) = rb.col.index_of(b) {
                g.add_edge(rb.base + 2 * vi as usize + 1, t, INF);
            }
        }
    }
    for i in 1..=k {
        for j in (i - 1)..=(k.saturating_sub(1)) {
            let from = right(i - 1);
            let to = &left_blocks[j + 1];
            for (b, a) in pa.md(i, j) {
                if let (Some(wb), Some(va)) = (from.col.index_of(b), to.col.index_of(a)) {
                    g.add_edge(
                        from.base + 2 * wb as usize + 1,
                        to.base + 2 * va as usize,
                        INF,
                    );
                }
            }
        }
    }

    let flow = dinic(&g, s, t);
    let price = Price::from_cut_value(flow.value);
    let mut views = Vec::new();
    let mut pair_views = Vec::new();
    if price.is_finite() {
        for e in flow.min_cut_edges(&g, s) {
            if let Some(v) = view_edges.get(&e) {
                views.push(v.clone());
            } else if let Some(p) = pair_edges.get(&e) {
                pair_views.push(p.clone());
            }
        }
    }
    Ok(MultiAttrResult {
        price,
        views,
        pair_views,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::price_points::PriceList;
    use qbdp_catalog::{tuple, CatalogBuilder, Column};
    use qbdp_query::parser::parse_rule;

    /// R(x), S(x,y), T(y) over tiny columns; a cheap pair view should beat
    /// single-attribute cuts where a single missing tuple must be excluded.
    #[test]
    fn pair_views_enable_cheaper_cuts() {
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("T", &["Y"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        // R and T full; S = {(0,0)}: answers {(0,0)}; non-answers need the
        // missing S tuples excluded or an R/T tuple excluded — but R/T are
        // full and (their tuples being present) can only be "secured", not
        // removed... pricing decides.
        d.insert_all(cat.schema().rel_id("R").unwrap(), [tuple![0], tuple![1]])
            .unwrap();
        d.insert_all(cat.schema().rel_id("T").unwrap(), [tuple![0], tuple![1]])
            .unwrap();
        d.insert(cat.schema().rel_id("S").unwrap(), tuple![0, 0])
            .unwrap();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let s_rel = cat.schema().rel_id("S").unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(10));
        let problem = Problem::new(cat, d, prices, q);

        // Without pairs.
        let base = multi_attr_chain_price(&problem, &PairPriceList::new()).unwrap();
        // With dirt-cheap pair views on every S cell.
        let mut pairs = PairPriceList::new();
        for a in 0..2 {
            for b in 0..2 {
                pairs.set(s_rel, Value::Int(a), Value::Int(b), Price::dollars(1));
            }
        }
        let with_pairs = multi_attr_chain_price(&problem, &pairs).unwrap();
        assert!(
            with_pairs.price < base.price,
            "{} !< {}",
            with_pairs.price,
            base.price
        );
        assert!(!with_pairs.pair_views.is_empty());
    }

    #[test]
    fn no_pairs_matches_plain_construction() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("T", &["Y"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(cat.schema().rel_id("R").unwrap(), [tuple![0]])
            .unwrap();
        d.insert_all(
            cat.schema().rel_id("S").unwrap(),
            [tuple![0, 1], tuple![2, 2]],
        )
        .unwrap();
        d.insert_all(cat.schema().rel_id("T").unwrap(), [tuple![1]])
            .unwrap();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let problem = Problem::new(cat, d, prices, q);
        let plain = crate::chain::price::chain_price(
            &problem,
            crate::chain::graph::TupleEdgeMode::Dense,
            crate::chain::price::FlowAlgo::Dinic,
        )
        .unwrap();
        let multi = multi_attr_chain_price(&problem, &PairPriceList::new()).unwrap();
        assert_eq!(plain.price, multi.price);
        assert!(multi.pair_views.is_empty());
    }

    use qbdp_catalog::Value;
}
