//! The flow graph of the Step 4 reduction.
//!
//! For a chain query `Q = R_0, …, R_k` the paper builds a graph whose
//! finite-capacity edges correspond one-to-one to the selection views in
//! `S`, and whose s–t cuts correspond to determining view sets:
//!
//! * **view edges** `v_{R.X=a} → w_{R.X=a}` with capacity `p(σ_{R.X=a})`
//!   (∞ when unpriced);
//! * **tuple edges** `w_{R.X=a} → v_{R.Y=b}` with capacity ∞ for **every**
//!   pair `(a, b)` of column values of a binary atom;
//! * **skip edges** (∞) jumping over partial answers:
//!   `s → v_{R_i.X=a}` for `a ∈ Lt_i`,
//!   `w_{R_{i-1}.Y=b} → v_{R_{j+1}.X=a}` for `(b, a) ∈ Md[i:j]`, and
//!   `w_{R_j.Y=b} → t` for `b ∈ Rt_j`.
//!
//! The minimum cut equals the price (Theorem 3.13), and the cut's view
//! edges are the views the savvy buyer purchases.
//!
//! ## Tuple-edge modes
//!
//! The literal construction creates `Θ(n²)` tuple edges per binary atom.
//! [`TupleEdgeMode::Hub`] replaces them with a relay node
//! (`w_{R.X=a} → hub_R → v_{R.Y=b}`, `Θ(n)` edges): all-infinite capacities
//! make the two constructions cut-equivalent, which is property-tested and
//! benchmarked as the `flow_ablation` experiment (E12).

use crate::money::Price;
use crate::price_points::PriceList;
use qbdp_catalog::{AttrRef, Catalog, Column, FxHashMap, Value};
use qbdp_determinacy::selection::SelectionView;
use qbdp_flow::{EdgeId, FlowGraph, NodeId, INF};
use qbdp_query::chain::{ChainQuery, PartialAnswers};

/// How tuple edges are materialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TupleEdgeMode {
    /// The paper's literal all-pairs construction: `Θ(n²)` ∞-edges.
    Dense,
    /// A relay node per binary atom: `Θ(n)` ∞-edges, same min-cut.
    Hub,
}

/// The constructed flow network plus the view-edge ↔ view correspondence.
pub struct ChainGraph {
    /// The network.
    pub graph: FlowGraph,
    /// Source node.
    pub s: NodeId,
    /// Sink node.
    pub t: NodeId,
    /// Forward edge id → the selection view it represents (finite-priced
    /// views only; unpriced views become ∞ edges and are not listed).
    pub view_edges: FxHashMap<EdgeId, SelectionView>,
}

/// One attribute block: node ids for `v_{attr=a}` / `w_{attr=a}` by the
/// dense index of `a` in the attribute's column.
struct AttrBlock {
    #[allow(dead_code)]
    attr: AttrRef,
    col: Column,
    /// `v` node of value index `i` is `base + 2i`; `w` is `base + 2i + 1`.
    base: NodeId,
}

impl AttrBlock {
    fn v(&self, value: &Value) -> Option<NodeId> {
        self.col.index_of(value).map(|i| self.base + 2 * i as usize)
    }
    fn w(&self, value: &Value) -> Option<NodeId> {
        self.col
            .index_of(value)
            .map(|i| self.base + 2 * i as usize + 1)
    }
}

impl ChainGraph {
    /// Build the Step 4 graph for a chain query.
    pub fn build(
        catalog: &Catalog,
        prices: &PriceList,
        chain: &ChainQuery,
        pa: &PartialAnswers,
        mode: TupleEdgeMode,
    ) -> ChainGraph {
        let k = chain.k();
        let mut g = FlowGraph::new();
        let s = g.add_node();
        let t = g.add_node();

        // One block per atom side. Unary atoms have a single block used for
        // both sides. Relations never repeat (no self-joins), so blocks are
        // uniquely owned by their atom side.
        let mut left_blocks: Vec<AttrBlock> = Vec::with_capacity(k + 1);
        let mut right_blocks: Vec<usize> = Vec::with_capacity(k + 1); // index into left or own
        let mut all_blocks: Vec<AttrBlock> = Vec::new();

        let mut view_edges: FxHashMap<EdgeId, SelectionView> = FxHashMap::default();
        let make_block = |g: &mut FlowGraph,
                          view_edges: &mut FxHashMap<EdgeId, SelectionView>,
                          attr: AttrRef|
         -> AttrBlock {
            let col = catalog.column(attr).clone();
            let base = g.add_nodes(2 * col.len());
            // View edges.
            for (i, value) in col.iter().enumerate() {
                let v = base + 2 * i;
                let w = base + 2 * i + 1;
                let price = prices.get_at(attr, value);
                let e = g.add_edge(v, w, price.as_capacity());
                if price.is_finite() {
                    view_edges.insert(e, SelectionView::new(attr, value.clone()));
                }
            }
            AttrBlock { attr, col, base }
        };

        for i in 0..=k {
            let left_attr = chain.left_attr(i);
            let block = make_block(&mut g, &mut view_edges, left_attr);
            left_blocks.push(block);
            if chain.atoms()[i].unary {
                right_blocks.push(usize::MAX); // same as left
            } else {
                let right_attr = chain.right_attr(i);
                let block = make_block(&mut g, &mut view_edges, right_attr);
                all_blocks.push(block);
                right_blocks.push(all_blocks.len() - 1);
            }
        }
        let left = |i: usize| -> &AttrBlock { &left_blocks[i] };
        let right = |i: usize| -> &AttrBlock {
            if chain.atoms()[i].unary {
                &left_blocks[i]
            } else {
                &all_blocks[right_blocks[i]]
            }
        };

        // Tuple edges for binary atoms.
        for i in 0..=k {
            if chain.atoms()[i].unary {
                continue;
            }
            let lb = left(i);
            let rb = right(i);
            match mode {
                TupleEdgeMode::Dense => {
                    for ai in 0..lb.col.len() {
                        let w = lb.base + 2 * ai + 1;
                        for bi in 0..rb.col.len() {
                            let v = rb.base + 2 * bi;
                            g.add_edge(w, v, INF);
                        }
                    }
                }
                TupleEdgeMode::Hub => {
                    let hub = g.add_node();
                    for ai in 0..lb.col.len() {
                        g.add_edge(lb.base + 2 * ai + 1, hub, INF);
                    }
                    for bi in 0..rb.col.len() {
                        g.add_edge(hub, rb.base + 2 * bi, INF);
                    }
                }
            }
        }

        // Skip edges from s: s → v_{R_i.X=a} for a ∈ Lt_i.
        for i in 0..=k {
            let lb = left(i);
            for a in pa.lt(i) {
                if let Some(v) = lb.v(a) {
                    g.add_edge(s, v, INF);
                }
            }
        }
        // Skip edges to t: w_{R_j.Y=b} → t for b ∈ Rt_j.
        for j in 0..=k {
            let rb = right(j);
            for b in pa.rt(j) {
                if let Some(w) = rb.w(b) {
                    g.add_edge(w, t, INF);
                }
            }
        }
        // Middle skips: w_{R_{i-1}.Y=b} → v_{R_{j+1}.X=a} for (b,a) ∈ Md[i:j].
        for i in 1..=k {
            for j in (i - 1)..=(k.saturating_sub(1)) {
                if j + 1 > k {
                    continue;
                }
                let from_block = right(i - 1);
                let to_block = left(j + 1);
                for (b, a) in pa.md(i, j) {
                    if let (Some(w), Some(v)) = (from_block.w(b), to_block.v(a)) {
                        g.add_edge(w, v, INF);
                    }
                }
            }
        }

        ChainGraph {
            graph: g,
            s,
            t,
            view_edges,
        }
    }

    /// Map min-cut edges to purchased views. Panics in debug builds if the
    /// cut contains an ∞ edge (that would contradict Theorem 3.13 whenever
    /// the price is finite).
    pub fn views_of_cut(&self, cut: &[EdgeId]) -> Vec<SelectionView> {
        cut.iter()
            .filter_map(|e| {
                let view = self.view_edges.get(e).cloned();
                debug_assert!(
                    view.is_some() || self.graph.edge(*e).2 >= INF,
                    "finite non-view edge in cut"
                );
                view
            })
            .collect()
    }

    /// Total capacity of a cut as a price.
    pub fn cut_price(&self, cut: &[EdgeId]) -> Price {
        cut.iter()
            .map(|&e| Price::from_cut_value(self.graph.edge(e).2))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{tuple, CatalogBuilder, Instance};
    use qbdp_flow::dinic;
    use qbdp_query::parser::parse_rule;

    fn figure1() -> (Catalog, Instance, ChainQuery, PartialAnswers) {
        let ax = Column::texts(["a1", "a2", "a3", "a4"]);
        let by = Column::texts(["b1", "b2", "b3"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", ax.clone())])
            .relation("S", &[("X", ax), ("Y", by.clone())])
            .relation("T", &[("Y", by)])
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        let t = cat.schema().rel_id("T").unwrap();
        d.insert_all(r, [tuple!["a1"], tuple!["a2"]]).unwrap();
        d.insert_all(
            s,
            [
                tuple!["a1", "b1"],
                tuple!["a1", "b2"],
                tuple!["a2", "b2"],
                tuple!["a4", "b1"],
            ],
        )
        .unwrap();
        d.insert_all(t, [tuple!["b1"], tuple!["b3"]]).unwrap();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let chain = ChainQuery::from_cq(&q).unwrap();
        let pa = chain.partial_answers(&cat, &d);
        (cat, d, chain, pa)
    }

    #[test]
    fn figure1_min_cut_is_six() {
        let (cat, _d, chain, pa) = figure1();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        for mode in [TupleEdgeMode::Dense, TupleEdgeMode::Hub] {
            let cg = ChainGraph::build(&cat, &prices, &chain, &pa, mode);
            let flow = dinic(&cg.graph, cg.s, cg.t);
            assert_eq!(
                Price::from_cut_value(flow.value),
                Price::dollars(6),
                "{mode:?}"
            );
            let cut = flow.min_cut_edges(&cg.graph, cg.s);
            let views = cg.views_of_cut(&cut);
            assert_eq!(views.len(), 6, "{mode:?}");
            assert_eq!(cg.cut_price(&cut), Price::dollars(6));
            // The minimal set from Example 3.8.
            let names: std::collections::BTreeSet<String> =
                views.iter().map(|v| v.display(cat.schema())).collect();
            let expected: std::collections::BTreeSet<String> = [
                "σ[R.X=a1]",
                "σ[R.X=a4]",
                "σ[S.Y=b1]",
                "σ[S.Y=b3]",
                "σ[T.Y=b1]",
                "σ[T.Y=b2]",
            ]
            .into_iter()
            .map(String::from)
            .collect();
            assert_eq!(names, expected, "{mode:?}");
        }
    }

    #[test]
    fn node_and_edge_counts_scale_as_documented() {
        let (cat, _d, chain, pa) = figure1();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let dense = ChainGraph::build(&cat, &prices, &chain, &pa, TupleEdgeMode::Dense);
        let hub = ChainGraph::build(&cat, &prices, &chain, &pa, TupleEdgeMode::Hub);
        // Same node count ± hubs (1 binary atom).
        assert_eq!(hub.graph.num_nodes(), dense.graph.num_nodes() + 1);
        // Dense has 4·3 = 12 tuple edges; hub has 4 + 3 = 7.
        assert_eq!(dense.graph.num_edges() - hub.graph.num_edges(), 12 - 7);
        // View edges: 14 priced views (4 + 4 + 3 + 3).
        assert_eq!(dense.view_edges.len(), 14);
    }

    #[test]
    fn unpriced_views_are_uncuttable() {
        let (cat, _d, chain, pa) = figure1();
        // Price only S views: R and T unpriced ⇒ no finite cut.
        let mut prices = PriceList::new();
        let sx = cat.schema().resolve_attr("S.X").unwrap();
        let sy = cat.schema().resolve_attr("S.Y").unwrap();
        prices.set_attr_uniform(&cat, sx, Price::dollars(1));
        prices.set_attr_uniform(&cat, sy, Price::dollars(1));
        let cg = ChainGraph::build(&cat, &prices, &chain, &pa, TupleEdgeMode::Hub);
        let flow = dinic(&cg.graph, cg.s, cg.t);
        assert!(Price::from_cut_value(flow.value).is_infinite());
    }
}
