//! Step 4: pricing chain queries by reduction to Min-Cut (§3.1).

pub mod bundle;
pub mod graph;
pub mod multi_attr;
pub mod price;

pub use bundle::{chain_bundle_price, BundlePriceResult};
pub use graph::{ChainGraph, TupleEdgeMode};
pub use price::{chain_price, ChainPriceResult, FlowAlgo};
