//! Chain-query pricing: partial answers → flow graph → min-cut (Thm 3.13).

use super::graph::{ChainGraph, TupleEdgeMode};
use crate::budget::{Budget, Metered};
use crate::error::PricingError;
use crate::money::Price;
use crate::normalize::Problem;
use qbdp_determinacy::selection::SelectionView;
use qbdp_flow::{edmonds_karp_metered, DinicArena, Interrupted};
use qbdp_query::chain::ChainQuery;
use std::cell::RefCell;

thread_local! {
    /// One Dinic arena per thread: batch-pricing workers (and the serial
    /// path alike) reuse the solver's scratch allocations across every
    /// quote they price instead of rebuilding them per flow run.
    static DINIC_ARENA: RefCell<DinicArena> = RefCell::new(DinicArena::new());
}

/// Which max-flow algorithm to run (Edmonds–Karp is the ablation baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowAlgo {
    /// Dinic's algorithm (default).
    Dinic,
    /// Edmonds–Karp (baseline for experiment E12).
    EdmondsKarp,
}

/// Result of pricing a chain query.
#[derive(Clone, Debug)]
pub struct ChainPriceResult {
    /// The price (min-cut value); `INFINITE` when no determining set is
    /// purchasable.
    pub price: Price,
    /// The purchased views **of the reduced problem** (the min cut).
    pub cut_views: Vec<SelectionView>,
    /// The purchased views resolved through provenance to the seller's
    /// original price list.
    pub original_views: Vec<SelectionView>,
    /// Graph size, for the experiment harness: (nodes, edges).
    pub graph_size: (usize, usize),
}

/// Price a normalized chain-query problem.
///
/// The problem's query must already be a chain (Steps 1–3 applied); the
/// atoms are used in their given order.
pub fn chain_price(
    problem: &Problem,
    mode: TupleEdgeMode,
    algo: FlowAlgo,
) -> Result<ChainPriceResult, PricingError> {
    match chain_price_within(problem, mode, algo, &Budget::unlimited())? {
        Metered::Done(r) => Ok(r),
        Metered::Exhausted { .. } => unreachable!("unlimited budgets never exhaust"),
    }
}

/// [`chain_price`] under a [`Budget`]: the flow computation is metered
/// (each Dinic phase / BFS round charges its graph-scan cost). On
/// exhaustion no cut exists yet, so there is no partial `ChainPriceResult`
/// — instead the interrupted flow value is returned as a sound **lower
/// bound** on the price (any flow under-estimates the min cut).
pub fn chain_price_within(
    problem: &Problem,
    mode: TupleEdgeMode,
    algo: FlowAlgo,
    budget: &Budget,
) -> Result<Metered<ChainPriceResult>, PricingError> {
    let chain = ChainQuery::from_cq(&problem.query)
        .map_err(|e| PricingError::NotApplicable(e.to_string()))?;
    // Building partial answers and the graph scans the instance once.
    if !budget.charge(64 + problem.instance.total_tuples() as u64) {
        return Ok(Metered::Exhausted {
            lower_bound: Price::ZERO,
        });
    }
    let pa = chain.partial_answers(&problem.catalog, &problem.instance);
    let cg = ChainGraph::build(&problem.catalog, &problem.prices, &chain, &pa, mode);
    let flow = match algo {
        FlowAlgo::Dinic => {
            DINIC_ARENA.with(|a| a.borrow_mut().max_flow(&cg.graph, cg.s, cg.t, budget))
        }
        FlowAlgo::EdmondsKarp => edmonds_karp_metered(&cg.graph, cg.s, cg.t, budget),
    };
    let flow = match flow {
        Ok(flow) => flow,
        Err(Interrupted { partial_value }) => {
            // Flow never exceeds the min cut, so the partial value is a
            // sound lower bound on the price.
            return Ok(Metered::Exhausted {
                lower_bound: Price::from_cut_value(partial_value),
            });
        }
    };
    let price = Price::from_cut_value(flow.value);
    let (cut_views, original_views) = if price.is_finite() {
        let cut = flow.min_cut_edges(&cg.graph, cg.s);
        let cut_views = cg.views_of_cut(&cut);
        let mut original: Vec<SelectionView> = cut_views
            .iter()
            .flat_map(|v| problem.provenance.resolve(v))
            .collect();
        original.sort();
        original.dedup();
        (cut_views, original)
    } else {
        (Vec::new(), Vec::new())
    };
    if algo == FlowAlgo::Dinic {
        // Hand the residual allocation back for the next quote's run.
        DINIC_ARENA.with(|a| a.borrow_mut().recycle(flow));
    }
    Ok(Metered::Done(ChainPriceResult {
        price,
        cut_views,
        original_views,
        graph_size: (cg.graph.num_nodes(), cg.graph.num_edges()),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::price_points::PriceList;
    use qbdp_catalog::{tuple, CatalogBuilder, Column};
    use qbdp_query::parser::parse_rule;

    #[test]
    fn figure1_end_to_end() {
        let ax = Column::texts(["a1", "a2", "a3", "a4"]);
        let by = Column::texts(["b1", "b2", "b3"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", ax.clone())])
            .relation("S", &[("X", ax), ("Y", by.clone())])
            .relation("T", &[("Y", by)])
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(
            cat.schema().rel_id("R").unwrap(),
            [tuple!["a1"], tuple!["a2"]],
        )
        .unwrap();
        d.insert_all(
            cat.schema().rel_id("S").unwrap(),
            [
                tuple!["a1", "b1"],
                tuple!["a1", "b2"],
                tuple!["a2", "b2"],
                tuple!["a4", "b1"],
            ],
        )
        .unwrap();
        d.insert_all(
            cat.schema().rel_id("T").unwrap(),
            [tuple!["b1"], tuple!["b3"]],
        )
        .unwrap();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let problem = Problem::new(cat, d, prices, q);
        for (mode, algo) in [
            (TupleEdgeMode::Dense, FlowAlgo::Dinic),
            (TupleEdgeMode::Hub, FlowAlgo::Dinic),
            (TupleEdgeMode::Dense, FlowAlgo::EdmondsKarp),
            (TupleEdgeMode::Hub, FlowAlgo::EdmondsKarp),
        ] {
            let r = chain_price(&problem, mode, algo).unwrap();
            assert_eq!(r.price, Price::dollars(6), "{mode:?}/{algo:?}");
            assert_eq!(r.cut_views.len(), 6);
            assert_eq!(r.original_views.len(), 6); // identity provenance
        }
    }

    #[test]
    fn empty_database_prices_emptiness_certificate() {
        // With D = ∅ every assignment is a non-answer whose S-tuple is
        // missing; cutting, e.g., all of S.X blocks everything.
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("T", &["Y"], &col)
            .build()
            .unwrap();
        let d = cat.empty_instance();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let problem = Problem::new(cat, d, prices, q);
        let r = chain_price(&problem, TupleEdgeMode::Hub, FlowAlgo::Dinic).unwrap();
        // The cheapest certificate of emptiness: any full column of one
        // relation… but partial covers can be cheaper. Here R(D) = ∅ and
        // Lt_1 = ∅, so paths only exist via s → v_{R.X=a} (Lt_0 = Col) and
        // must cross R's view edges: cutting all of R.X at $3 suffices —
        // and nothing cheaper does, since all three R.X paths are disjoint.
        assert_eq!(r.price, Price::dollars(3));
    }

    #[test]
    fn non_chain_is_rejected() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .uniform_relation("T", &["X"], &col)
            .build()
            .unwrap();
        let d = cat.empty_instance();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x, y), T(x)").unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let problem = Problem::new(cat, d, prices, q);
        assert!(matches!(
            chain_price(&problem, TupleEdgeMode::Hub, FlowAlgo::Dinic),
            Err(PricingError::NotApplicable(_))
        ));
    }
}
