//! PTIME pricing of **GChQ query bundles** (Definition 3.9).
//!
//! A GChQ bundle is a set of chain queries in which any two members share
//! only a common prefix and/or a common suffix of their atom sequences, and
//! their middles use disjoint relation names. The conference paper defers
//! the bundle algorithm to the full version; the construction implemented
//! here is the natural extension of Step 4, justified by the same
//! invariant:
//!
//! * build **one** graph whose view edges are shared per attribute-value
//!   (each selection view is one finite edge, priced once — this is where
//!   bundle subadditivity materializes);
//! * add each member's tuple and skip edges from its own partial answers.
//!
//! Soundness of the union: determinacy of a bundle is determinacy of every
//! member (Lemma 2.6(b)), i.e. the constraint set is the union of the
//! members' constraint sets, i.e. the path set must be the union of the
//! members' path sets. Paths cannot mix members beyond that union because
//! * in a **shared prefix**, `Lt` and intra-prefix `Md` depend only on the
//!   shared atoms, so all members contribute identical skip edges there;
//! * in a **shared suffix**, `Rt` and intra-suffix `Md` likewise coincide;
//! * the **middles are relation-disjoint**, so no edges connect one
//!   member's middle to another's — any s–t path stays within a single
//!   member's edge set (up to edges that are identical across members).
//!
//! The min-cut therefore equals the bundle's arbitrage-price; this is
//! cross-validated against the exact bundle-certificate engine in the
//! tests and in `tests/` at the workspace root.

use crate::error::PricingError;
use crate::money::Price;
use crate::normalize::Problem;
use crate::price_points::PriceList;
use qbdp_catalog::{AttrRef, Catalog, Column, FxHashMap, FxHashSet, Instance, RelId, Value};
use qbdp_determinacy::selection::SelectionView;
use qbdp_flow::{dinic, EdgeId, FlowGraph, NodeId, INF};
use qbdp_query::ast::ConjunctiveQuery;
use qbdp_query::chain::{ChainQuery, PartialAnswers};

/// Result of pricing a chain bundle.
#[derive(Clone, Debug)]
pub struct BundlePriceResult {
    /// The bundle's arbitrage-price.
    pub price: Price,
    /// The purchased views (the min cut), resolved through provenance.
    pub views: Vec<SelectionView>,
    /// Graph size `(nodes, edges)`.
    pub graph_size: (usize, usize),
}

/// Price a bundle of chain queries sharing prefixes/suffixes per
/// Definition 3.9. Every member must already be in chain form (the Step 1–3
/// normalizations are per-query and must have been applied by the caller —
/// the façade only routes already-chain bundles here).
pub fn chain_bundle_price(
    catalog: &Catalog,
    instance: &Instance,
    prices: &PriceList,
    members: &[ConjunctiveQuery],
    provenance: &crate::normalize::Provenance,
) -> Result<BundlePriceResult, PricingError> {
    if members.is_empty() {
        return Ok(BundlePriceResult {
            price: Price::ZERO,
            views: Vec::new(),
            graph_size: (0, 0),
        });
    }
    let chains: Vec<ChainQuery> = members
        .iter()
        .map(|q| ChainQuery::from_cq(q).map_err(|e| PricingError::NotApplicable(e.to_string())))
        .collect::<Result<_, _>>()?;
    validate_definition_3_9(&chains)?;
    let answers: Vec<PartialAnswers> = chains
        .iter()
        .map(|c| c.partial_answers(catalog, instance))
        .collect();

    // Shared attribute blocks.
    let mut g = FlowGraph::new();
    let s = g.add_node();
    let t = g.add_node();
    let mut blocks: FxHashMap<AttrRef, Block> = FxHashMap::default();
    let mut view_edges: FxHashMap<EdgeId, SelectionView> = FxHashMap::default();
    let block = |g: &mut FlowGraph,
                 view_edges: &mut FxHashMap<EdgeId, SelectionView>,
                 blocks: &mut FxHashMap<AttrRef, Block>,
                 attr: AttrRef|
     -> Block {
        if let Some(b) = blocks.get(&attr) {
            return b.clone();
        }
        let col = catalog.column(attr).clone();
        let base = g.add_nodes(2 * col.len());
        for (i, value) in col.iter().enumerate() {
            let price = prices.get_at(attr, value);
            let e = g.add_edge(base + 2 * i, base + 2 * i + 1, price.as_capacity());
            if price.is_finite() {
                view_edges.insert(e, SelectionView::new(attr, value.clone()));
            }
        }
        let b = Block { col, base };
        blocks.insert(attr, b.clone());
        b
    };

    // Tuple edges once per binary relation (hub mode — members share them).
    let mut tupled: FxHashSet<RelId> = FxHashSet::default();
    for chain in &chains {
        for i in 0..=chain.k() {
            let atom = &chain.atoms()[i];
            if atom.unary || !tupled.insert(atom.rel) {
                continue;
            }
            let lb = block(&mut g, &mut view_edges, &mut blocks, chain.left_attr(i));
            let rb = block(&mut g, &mut view_edges, &mut blocks, chain.right_attr(i));
            let hub = g.add_node();
            for ai in 0..lb.col.len() {
                g.add_edge(lb.base + 2 * ai + 1, hub, INF);
            }
            for bi in 0..rb.col.len() {
                g.add_edge(hub, rb.base + 2 * bi, INF);
            }
        }
    }

    // Per-member skip edges (duplicates across members collapse to
    // parallel ∞ edges, which cannot affect the cut).
    for (chain, pa) in chains.iter().zip(&answers) {
        let k = chain.k();
        for i in 0..=k {
            let lb = block(&mut g, &mut view_edges, &mut blocks, chain.left_attr(i));
            for a in pa.lt(i) {
                if let Some(v) = lb.v(a) {
                    g.add_edge(s, v, INF);
                }
            }
        }
        for j in 0..=k {
            let rb = block(&mut g, &mut view_edges, &mut blocks, chain.right_attr(j));
            for b in pa.rt(j) {
                if let Some(w) = rb.w(b) {
                    g.add_edge(w, t, INF);
                }
            }
        }
        for i in 1..=k {
            for j in (i - 1)..=(k.saturating_sub(1)) {
                let from = block(
                    &mut g,
                    &mut view_edges,
                    &mut blocks,
                    chain.right_attr(i - 1),
                );
                let to = block(&mut g, &mut view_edges, &mut blocks, chain.left_attr(j + 1));
                for (b, a) in pa.md(i, j) {
                    if let (Some(w), Some(v)) = (from.w(b), to.v(a)) {
                        g.add_edge(w, v, INF);
                    }
                }
            }
        }
    }

    let flow = dinic(&g, s, t);
    let price = Price::from_cut_value(flow.value);
    let mut views: Vec<SelectionView> = Vec::new();
    if price.is_finite() {
        for e in flow.min_cut_edges(&g, s) {
            if let Some(v) = view_edges.get(&e) {
                views.extend(provenance.resolve(v));
            }
        }
        views.sort();
        views.dedup();
    }
    Ok(BundlePriceResult {
        price,
        views,
        graph_size: (g.num_nodes(), g.num_edges()),
    })
}

/// Convenience over a [`Problem`]-shaped input (single provenance).
pub fn chain_bundle_price_problem(
    problem: &Problem,
    members: &[ConjunctiveQuery],
) -> Result<BundlePriceResult, PricingError> {
    chain_bundle_price(
        &problem.catalog,
        &problem.instance,
        &problem.prices,
        members,
        &problem.provenance,
    )
}

#[derive(Clone)]
struct Block {
    col: Column,
    base: NodeId,
}

impl Block {
    fn v(&self, value: &Value) -> Option<NodeId> {
        self.col.index_of(value).map(|i| self.base + 2 * i as usize)
    }
    fn w(&self, value: &Value) -> Option<NodeId> {
        self.col
            .index_of(value)
            .map(|i| self.base + 2 * i as usize + 1)
    }
}

/// Check Definition 3.9 pairwise: the shared relations of any two members
/// must lie within a common atom-prefix and/or common atom-suffix, with
/// identical chain structure there.
fn validate_definition_3_9(chains: &[ChainQuery]) -> Result<(), PricingError> {
    // No member may repeat a relation (chains are self-join-free already),
    // and each relation must have a consistent left/right orientation
    // wherever it appears.
    for (x, a) in chains.iter().enumerate() {
        for b in chains.iter().skip(x + 1) {
            let pfx = common_prefix(a, b);
            let sfx = common_suffix(a, b);
            let shared_ok = |rel: RelId| {
                a.atoms()
                    .iter()
                    .position(|at| at.rel == rel)
                    .is_some_and(|ia| {
                        let ka = a.k();
                        ia < pfx || ia + sfx > ka
                    })
            };
            for atom_b in b.atoms() {
                let shared = a.atoms().iter().any(|at| at.rel == atom_b.rel);
                if shared && !shared_ok(atom_b.rel) {
                    return Err(PricingError::NotApplicable(format!(
                        "not a Definition 3.9 bundle: relation R#{} is shared outside the \
                         common prefix/suffix",
                        atom_b.rel.0
                    )));
                }
            }
        }
    }
    Ok(())
}

fn atoms_equal(a: &qbdp_query::chain::ChainAtom, b: &qbdp_query::chain::ChainAtom) -> bool {
    a.rel == b.rel && a.left_pos == b.left_pos && a.right_pos == b.right_pos && a.unary == b.unary
}

fn common_prefix(a: &ChainQuery, b: &ChainQuery) -> usize {
    a.atoms()
        .iter()
        .zip(b.atoms())
        .take_while(|(x, y)| atoms_equal(x, y))
        .count()
}

fn common_suffix(a: &ChainQuery, b: &ChainQuery) -> usize {
    a.atoms()
        .iter()
        .rev()
        .zip(b.atoms().iter().rev())
        .take_while(|(x, y)| atoms_equal(x, y))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::graph::TupleEdgeMode;
    use crate::exact::certificates::{certificate_price_bundle, CertificateConfig};
    use qbdp_catalog::CatalogBuilder;
    use qbdp_query::parser::parse_rule;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The paper's own bundle example (after Definition 3.9):
    /// `{S(x,y), R(y,z), U(z)}`, `{S(x,y), T(y,z)}`, `{S(x,y), T(y,z), U(z)}`
    /// — shared prefix `S`, shared suffix `U` for the 1st/3rd members.
    /// Adapted to chain form with unary caps.
    fn paper_bundle() -> (Catalog, Vec<ConjunctiveQuery>) {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("A", &["X"], &col) // shared first cap
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("R", &["X", "Y"], &col)
            .uniform_relation("T", &["X", "Y"], &col)
            .uniform_relation("U", &["X"], &col)
            .uniform_relation("W", &["X"], &col)
            .build()
            .unwrap();
        let q1 = parse_rule(cat.schema(), "Q1(x, y, z) :- A(x), S(x, y), R(y, z), U(z)").unwrap();
        let q2 = parse_rule(cat.schema(), "Q2(x, y, z) :- A(x), S(x, y), T(y, z), W(z)").unwrap();
        let q3 = parse_rule(cat.schema(), "Q3(x, y, z) :- A(x), S(x, y), T(y, z), U(z)").unwrap();
        (cat, vec![q1, q2, q3])
    }

    #[test]
    fn bundle_price_matches_exact_on_random_instances() {
        let (cat, members) = paper_bundle();
        let mut rng = StdRng::seed_from_u64(39);
        for case in 0..12 {
            let mut d = cat.empty_instance();
            for (rid, _) in cat.schema().iter() {
                qbdp_workload_free_insert(&cat, &mut d, rid, &mut rng, 4);
            }
            let mut prices = PriceList::new();
            for attr in cat.schema().all_attrs() {
                for v in cat.column(attr).iter() {
                    prices.set(
                        SelectionView::new(attr, v.clone()),
                        Price::dollars(rng.gen_range(1..=4)),
                    );
                }
            }
            let flow = chain_bundle_price(
                &cat,
                &d,
                &prices,
                &members,
                &crate::normalize::Provenance::identity(),
            )
            .unwrap();
            let member_refs: Vec<&ConjunctiveQuery> = members.iter().collect();
            let exact = certificate_price_bundle(
                &cat,
                &d,
                &prices,
                &member_refs,
                CertificateConfig::default(),
            )
            .unwrap();
            assert_eq!(flow.price, exact.price, "case {case}");
            // Subadditivity vs individual chain prices.
            let sum: Price = members
                .iter()
                .map(|q| {
                    let p = Problem::new(cat.clone(), d.clone(), prices.clone(), q.clone());
                    super::super::price::chain_price(
                        &p,
                        TupleEdgeMode::Hub,
                        super::super::price::FlowAlgo::Dinic,
                    )
                    .unwrap()
                    .price
                })
                .sum();
            assert!(flow.price <= sum, "case {case}: bundle above sum");
        }
    }

    /// Simple deterministic insert helper (avoids a workload dev-dependency
    /// cycle).
    fn qbdp_workload_free_insert(
        cat: &Catalog,
        d: &mut Instance,
        rid: RelId,
        rng: &mut StdRng,
        count: usize,
    ) {
        let arity = cat.schema().relation(rid).arity();
        for _ in 0..count {
            let t = qbdp_catalog::Tuple::new((0..arity).map(|_| Value::Int(rng.gen_range(0..3))));
            let _ = d.insert(rid, t);
        }
    }

    #[test]
    fn non_bundle_sharing_rejected() {
        // Two chains sharing a relation in the MIDDLE (not prefix/suffix).
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("A", &["X"], &col)
            .uniform_relation("B", &["X"], &col)
            .uniform_relation("M", &["X", "Y"], &col)
            .uniform_relation("P", &["X", "Y"], &col)
            .uniform_relation("C", &["X"], &col)
            .uniform_relation("E", &["X"], &col)
            .build()
            .unwrap();
        // M is shared but surrounded by different caps on both sides.
        let q1 = parse_rule(cat.schema(), "Q1(x, y) :- A(x), M(x, y), C(y)").unwrap();
        let q2 = parse_rule(cat.schema(), "Q2(x, y) :- B(x), M(x, y), E(y)").unwrap();
        let err = chain_bundle_price(
            &cat,
            &cat.empty_instance(),
            &PriceList::uniform(&cat, Price::dollars(1)),
            &[q1, q2],
            &crate::normalize::Provenance::identity(),
        );
        assert!(matches!(err, Err(PricingError::NotApplicable(_))));
    }

    #[test]
    fn singleton_bundle_equals_chain_price() {
        let (cat, members) = paper_bundle();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("A").unwrap(), qbdp_catalog::tuple![0])
            .unwrap();
        d.insert(
            cat.schema().rel_id("S").unwrap(),
            qbdp_catalog::tuple![0, 1],
        )
        .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(2));
        let one = &members[0];
        let bundle = chain_bundle_price(
            &cat,
            &d,
            &prices,
            std::slice::from_ref(one),
            &crate::normalize::Provenance::identity(),
        )
        .unwrap();
        let p = Problem::new(cat.clone(), d, prices, one.clone());
        let single = super::super::price::chain_price(
            &p,
            TupleEdgeMode::Hub,
            super::super::price::FlowAlgo::Dinic,
        )
        .unwrap();
        assert_eq!(bundle.price, single.price);
    }

    #[test]
    fn empty_bundle_is_free() {
        let (cat, _) = paper_bundle();
        let r = chain_bundle_price(
            &cat,
            &cat.empty_instance(),
            &PriceList::uniform(&cat, Price::dollars(1)),
            &[],
            &crate::normalize::Provenance::identity(),
        )
        .unwrap();
        assert_eq!(r.price, Price::ZERO);
    }
}
