//! A shape-keyed plan cache for the GChQ pipeline: repeated query shapes
//! under a *changed price vector* pay only a warm-start min-cut delta.
//!
//! ## What is cached
//!
//! Pricing a generalized chain query runs normalization (Steps 1–3) and
//! then one min-cut per Step 3 branch. Every piece of that work except the
//! final flow values is **price-point-independent up to edge capacities**:
//! the reduced branch problems, the Step 4 networks, and the edge ↔ view
//! correspondence depend only on the query shape, the catalog, and the
//! instance. A [`PlanCache`] therefore keys entries by the canonicalized
//! CQ skeleton (variables renamed by first occurrence — see [`shape_key`])
//! and stores, per Step 3 branch, the built [`FlowGraph`], its
//! [`ResidualState`], and a map from *original* price-list views to the
//! graph edge whose capacity they control.
//!
//! ## Repricing protocol
//!
//! On a cache hit the current price list is diffed against the entry's
//! snapshot over the query's **footprint** (every attribute of every
//! mentioned relation — non-cut views in a mentioned column are still
//! price-relevant):
//!
//! * no change — the cached quote is returned verbatim;
//! * a changed view maps to graph edges and stays finite — each affected
//!   branch gets [`DinicArena::warm_start`] capacity repairs, branch base
//!   costs are re-summed from their recorded cover views, and the quote is
//!   reassembled by the same branch-minimum rule the cold path uses;
//! * a change touches a *transformed* attribute (Step 2 collapsed its
//!   relation, or the build recorded a non-invertible provenance), or a
//!   price crosses finite ↔ ∞ (which can flip Step 3's cover gating or the
//!   edge's presence in the network) — the entry is evicted and rebuilt
//!   cold.
//!
//! Warm and cold agree **bit-identically**: capacities after patching
//! equal the capacities a cold rebuild would assign, the max-flow value is
//! unique, and the reported cut is the canonical (residual-reachable)
//! minimum cut, identical for every maximum flow.
//!
//! Only exact, unlimited-budget quotes are cached — degraded quotes
//! depend on budget state that is not part of the shape key. Queries
//! outside the pure chain-flow path (boolean, disconnected, cycles,
//! NP-hard classes, Edmonds–Karp ablation) delegate to the ordinary
//! [`Pricer`] entry points and bypass the cache.

use crate::budget::QuoteQuality;
use crate::chain::graph::ChainGraph;
use crate::chain::price::FlowAlgo;
use crate::dichotomy::{classify, QueryClass};
use crate::error::PricingError;
use crate::gchq::reorder_to_gchq;
use crate::money::Price;
use crate::normalize::{step1_predicates, step2_repeated, step3_hanging, Problem, Provenance};
use crate::price_points::PriceList;
use crate::pricer::{Pricer, PricingMethod, Quote};
use qbdp_catalog::{AttrRef, Catalog, FxHashMap, FxHashSet, RelId};
use qbdp_determinacy::selection::SelectionView;
use qbdp_flow::{DinicArena, EdgeId, FlowGraph, NodeId, ResidualState, Unmetered};
use qbdp_query::ast::{ConjunctiveQuery, Term, Var};
use qbdp_query::chain::ChainQuery;

/// Counters describing what the cache has been doing (for benches and
/// tests; not part of any equivalence argument).
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanStats {
    /// Hits with an unchanged footprint: cached quote returned verbatim.
    pub hits: u64,
    /// Shapes never seen before (cold build).
    pub misses: u64,
    /// Hits repriced through warm-start capacity repair.
    pub warm_reprices: u64,
    /// Warm repairs that exceeded their fuel fraction and re-solved cold
    /// inside the flow layer (still cheaper than a full rebuild).
    pub flow_fallbacks: u64,
    /// Entries discarded because a change was not warm-patchable.
    pub evictions: u64,
}

impl PlanStats {
    // The per-instance tallies (asserted exactly by tests and printed by
    // `qbdp price --incremental`) and the global registry are fed from
    // one increment site each, so the two views can never diverge.

    fn hit(&mut self) {
        self.hits += 1;
        qbdp_obs::record(qbdp_obs::Ctr::PlanCacheHits, 1);
    }

    fn miss(&mut self) {
        self.misses += 1;
        qbdp_obs::record(qbdp_obs::Ctr::PlanCacheMisses, 1);
    }

    fn warm_reprice(&mut self) {
        self.warm_reprices += 1;
        qbdp_obs::record(qbdp_obs::Ctr::PlanCacheWarmReprices, 1);
    }

    fn flow_fallback(&mut self) {
        self.flow_fallbacks += 1;
        qbdp_obs::record(qbdp_obs::Ctr::PlanCacheFlowFallbacks, 1);
    }

    fn evict(&mut self, n: u64) {
        self.evictions += n;
        qbdp_obs::record(qbdp_obs::Ctr::PlanCacheEvictions, n);
    }
}

/// One Step 3 branch with its solved network kept warm.
struct CachedBranch {
    /// Reduced-view → original-view mapping of the branch problem.
    provenance: Provenance,
    /// Original views bought by the branch's full covers; the branch base
    /// cost is re-summed from these under the current price list.
    base_views: Vec<SelectionView>,
    /// The Step 4 network (capacities mutated in place on reprice).
    graph: FlowGraph,
    s: NodeId,
    t: NodeId,
    /// Forward edge id → reduced view (finite-priced at build time).
    view_edges: FxHashMap<EdgeId, SelectionView>,
    /// Original view → the edge whose capacity is that view's price.
    edge_of_original: FxHashMap<SelectionView, EdgeId>,
    /// The persisted flow, warm-started across reprices.
    state: ResidualState,
}

/// A cached plan for one query shape.
struct PlanEntry {
    /// Relations the query mentions (entries die when one is inserted to).
    mentioned: Vec<RelId>,
    /// Every attribute of every mentioned relation (original coordinates):
    /// the set of price points the quote can depend on.
    footprint: Vec<AttrRef>,
    /// Attributes whose price changes cannot be patched onto the cached
    /// networks (Step 2 min-merges, non-invertible provenance): any change
    /// here evicts.
    transformed: FxHashSet<AttrRef>,
    /// Price-list snapshot the cached state was solved under.
    prices: PriceList,
    branches: Vec<CachedBranch>,
    /// The quote those branches produced (returned verbatim while the
    /// footprint prices are unchanged).
    quote: Quote,
}

/// The plan cache. One per market (or per pricing session); interior
/// solver scratch is reused across entries via a private [`DinicArena`].
#[derive(Default)]
pub struct PlanCache {
    map: FxHashMap<String, PlanEntry>,
    arena: DinicArena,
    stats: PlanStats,
}

/// Canonical shape key of a CQ: variables renamed by first occurrence
/// across head, atoms, then predicates, so any two queries identical up to
/// variable renaming share a key. Constants, predicates, relation ids, and
/// atom order are all part of the key; the query *name* is not (prices are
/// name-independent).
pub fn shape_key(q: &ConjunctiveQuery) -> String {
    use std::fmt::Write as _;
    let mut ids: FxHashMap<Var, usize> = FxHashMap::default();
    let id_of = |v: Var, ids: &mut FxHashMap<Var, usize>| -> usize {
        let next = ids.len();
        *ids.entry(v).or_insert(next)
    };
    let mut key = String::new();
    key.push('h');
    // audit: bounded(one pass over the head variables of one query)
    for &v in q.head() {
        let _ = write!(key, ",{}", id_of(v, &mut ids));
    }
    // audit: bounded(one pass over the query's atoms)
    for a in q.atoms() {
        let _ = write!(key, "|r{}", a.rel.0);
        // audit: bounded(one slot per term of one atom)
        for t in &a.terms {
            match t {
                Term::Var(v) => {
                    let _ = write!(key, ",v{}", id_of(*v, &mut ids));
                }
                Term::Const(c) => {
                    let _ = write!(key, ",c{c:?}");
                }
            }
        }
    }
    // audit: bounded(one pass over the query's predicates)
    for p in q.preds() {
        let _ = write!(key, "|p{}:{:?}", id_of(p.var, &mut ids), p.pred);
    }
    key
}

/// Every attribute of every relation the query mentions, in original
/// catalog coordinates — the full set of price points (and columns) the
/// query's price can depend on. The market layer uses the same footprint
/// for column-scoped quote-cache invalidation.
pub fn query_footprint(catalog: &Catalog, q: &ConjunctiveQuery) -> Vec<AttrRef> {
    let mut rels: Vec<RelId> = q.atoms().iter().map(|a| a.rel).collect();
    rels.sort();
    rels.dedup();
    let mut out = Vec::new();
    for rel in rels {
        let arity = catalog.schema().relation(rel).arity();
        // audit: bounded(one slot per attribute of a mentioned relation)
        for pos in 0..arity {
            out.push(AttrRef::new(rel, pos as u32));
        }
    }
    out
}

/// Relations the query mentions, sorted and deduplicated.
fn mentioned_rels(q: &ConjunctiveQuery) -> Vec<RelId> {
    let mut rels: Vec<RelId> = q.atoms().iter().map(|a| a.rel).collect();
    rels.sort();
    rels.dedup();
    rels
}

/// Attributes whose prices feed Step 2 min-merges: every attribute of a
/// relation whose atom repeats a variable. The merged price is the
/// *minimum* of two originals, so the losing view is invisible in
/// provenance and a change to it cannot be patched — it must evict.
fn step2_transformed(catalog: &Catalog, q: &ConjunctiveQuery) -> FxHashSet<AttrRef> {
    let mut out = FxHashSet::default();
    for a in q.atoms() {
        let vars: Vec<Option<Var>> = a
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        let repeats = vars
            .iter()
            .enumerate()
            .any(|(i, v)| v.is_some() && vars[i + 1..].contains(v));
        if repeats {
            let arity = catalog.schema().relation(a.rel).arity();
            // audit: bounded(one slot per attribute of the repeated-var relation)
            for pos in 0..arity {
                out.insert(AttrRef::new(a.rel, pos as u32));
            }
        }
    }
    out
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Cache statistics.
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every entry (e.g. after recovery replay).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Drop entries mentioning any of `rels` — required after an insert,
    /// because cached partial answers and networks embed the instance.
    pub fn invalidate_rels(&mut self, rels: &[RelId]) {
        let before = self.map.len();
        self.map
            .retain(|_, e| !e.mentioned.iter().any(|r| rels.contains(r)));
        self.stats.evict((before - self.map.len()) as u64);
    }

    /// Whether this query takes the cached chain-flow path. Everything
    /// else delegates to [`Pricer::price_cq`] unchanged.
    fn cacheable(pricer: &Pricer, q: &ConjunctiveQuery, class: &QueryClass) -> bool {
        *class == QueryClass::GeneralizedChain
            && !q.atoms().is_empty()
            && !q.is_boolean()
            && pricer.config().flow_algo == FlowAlgo::Dinic
    }

    /// Price `q` exactly (unlimited budget), reusing a cached plan for its
    /// shape when one exists. The result is bit-identical to
    /// [`Pricer::price_cq`] — prices, views, method, class, quality — which
    /// the `incremental_equiv` differential battery enforces.
    pub fn quote(&mut self, pricer: &Pricer, q: &ConjunctiveQuery) -> Result<Quote, PricingError> {
        let class = classify(q);
        if !Self::cacheable(pricer, q, &class) {
            return pricer.price_cq(q);
        }
        crate::fault::maybe_panic();
        let key = shape_key(q);
        // Entries are taken out of the map for mutation; a build failure
        // simply leaves the shape uncached (exactly like a cold error).
        if let Some(mut entry) = self.map.remove(&key) {
            let mut span = qbdp_obs::trace::span("plan_cache");
            let changed = entry.diff(pricer);
            span.n(changed.len() as u64);
            if changed.is_empty() {
                self.stats.hit();
                span.detail("hit");
                let quote = entry.quote.clone();
                self.map.insert(key, entry);
                return Ok(quote);
            }
            let patchable = changed.iter().all(|(view, old, new)| {
                old.is_finite() && new.is_finite() && !entry.transformed.contains(&view.attr)
            });
            if patchable {
                span.detail("warm");
                let quote = self.reprice(&mut entry, pricer, &changed)?;
                self.stats.warm_reprice();
                self.map.insert(key, entry);
                return Ok(quote);
            }
            self.stats.evict(1);
            span.detail("evict");
        } else {
            self.stats.miss();
            qbdp_obs::trace::event("plan_cache", "miss");
        }
        let build_span = qbdp_obs::trace::span("plan_build");
        let (entry, quote) = self.build(pricer, q, class)?;
        drop(build_span);
        self.map.insert(key, entry);
        Ok(quote)
    }

    /// Warm-reprice a cached entry under `changed` footprint prices (all
    /// finite → finite, none transformed).
    fn reprice(
        &mut self,
        entry: &mut PlanEntry,
        pricer: &Pricer,
        changed: &[(SelectionView, Price, Price)],
    ) -> Result<Quote, PricingError> {
        let prices = pricer.prices();
        let mut best = Price::INFINITE;
        let mut best_views: Vec<SelectionView> = Vec::new();
        for branch in &mut entry.branches {
            let patches: Vec<(EdgeId, u64)> = changed
                .iter()
                .filter_map(|(view, _, new)| {
                    branch
                        .edge_of_original
                        .get(view)
                        .map(|&e| (e, new.as_capacity()))
                })
                .collect();
            if !patches.is_empty() {
                let out = self
                    .arena
                    .warm_start(
                        &mut branch.graph,
                        branch.s,
                        branch.t,
                        &mut branch.state,
                        &patches,
                        &Unmetered,
                    )
                    .map_err(|_| {
                        PricingError::Internal("unmetered warm start interrupted".into())
                    })?;
                if out.fell_back {
                    self.stats.flow_fallback();
                }
            }
            // Base cost re-summed from the recorded cover views: equal to
            // the cold pipeline's accumulated cover prices because every
            // recorded view maps through identity or shifted-identity
            // provenance at an unchanged-structure price (Step 2 merges
            // were ruled out by the transformed-attr eviction).
            let base_cost = branch
                .base_views
                .iter()
                .fold(Price::ZERO, |acc, v| acc.saturating_add(prices.get(v)));
            let price = Price::from_cut_value(branch.state.value());
            let total = base_cost.saturating_add(price);
            if total < best {
                best = total;
                best_views = branch.base_views.clone();
                if price.is_finite() {
                    let cut = branch.state.min_cut_edges(&branch.graph, branch.s);
                    let mut originals: Vec<SelectionView> = cut
                        .iter()
                        .filter_map(|e| branch.view_edges.get(e))
                        .flat_map(|v| branch.provenance.resolve(v))
                        .collect();
                    originals.sort();
                    originals.dedup();
                    best_views.extend(originals);
                }
            }
        }
        best_views.sort();
        best_views.dedup();
        let quote = Quote {
            price: best,
            views: best_views,
            method: PricingMethod::ChainFlow,
            class: entry.quote.class.clone(),
            quality: QuoteQuality::Exact,
            lower_bound: best,
        };
        entry.prices = prices.clone();
        entry.quote = quote.clone();
        Ok(quote)
    }

    /// Cold-build an entry: the GChQ pipeline with every branch's network
    /// and residual state captured for later warm starts.
    fn build(
        &mut self,
        pricer: &Pricer,
        q: &ConjunctiveQuery,
        class: QueryClass,
    ) -> Result<(PlanEntry, Quote), PricingError> {
        let catalog = pricer.catalog();
        let ordered = reorder_to_gchq(q).ok_or_else(|| {
            PricingError::NotApplicable(format!(
                "query {} classified GChQ but no chain order found",
                q.name()
            ))
        })?;
        let mut transformed = step2_transformed(catalog, &ordered);
        let problem = Problem::new(
            catalog.clone(),
            pricer.instance().clone(),
            pricer.prices().clone(),
            ordered.clone(),
        );
        let problem = step1_predicates::apply(problem)?;
        let problem = step2_repeated::apply(problem)?;
        let branches = step3_hanging::branches(problem)?;
        let mut cached: Vec<CachedBranch> = Vec::with_capacity(branches.len());
        let mut best = Price::INFINITE;
        let mut best_views: Vec<SelectionView> = Vec::new();
        for branch in branches {
            let chain = ChainQuery::from_cq(&branch.problem.query)
                .map_err(|e| PricingError::NotApplicable(e.to_string()))?;
            let pa = chain.partial_answers(&branch.problem.catalog, &branch.problem.instance);
            let cg = ChainGraph::build(
                &branch.problem.catalog,
                &branch.problem.prices,
                &chain,
                &pa,
                pricer.config().tuple_mode,
            );
            let ChainGraph {
                graph,
                s,
                t,
                view_edges,
            } = cg;
            let flow = self
                .arena
                .max_flow(&graph, s, t, &Unmetered)
                .map_err(|_| PricingError::Internal("unmetered max flow interrupted".into()))?;
            let state = ResidualState::from(flow);
            // Invert view edges back to original price points. Anything
            // not invertible one-to-one at an equal price is marked
            // transformed so changes there evict instead of mispatching.
            let mut edge_of_original: FxHashMap<SelectionView, EdgeId> = FxHashMap::default();
            for (&e, view) in &view_edges {
                let originals = branch.problem.provenance.resolve(view);
                match originals.as_slice() {
                    // Empty: a Step 3 freebie — capacity is pinned at zero
                    // regardless of the original prices, so changes to
                    // them are no-ops for this branch.
                    [] => {}
                    [orig] if pricer.prices().get(orig) == branch.problem.prices.get(view) => {
                        if edge_of_original.insert(orig.clone(), e).is_some() {
                            transformed.insert(orig.attr);
                        }
                    }
                    many => {
                        for orig in many {
                            transformed.insert(orig.attr);
                        }
                    }
                }
            }
            let price = Price::from_cut_value(state.value());
            let total = branch.base_cost.saturating_add(price);
            if total < best {
                best = total;
                best_views = branch.base_views.clone();
                if price.is_finite() {
                    let cut = state.min_cut_edges(&graph, s);
                    let mut originals: Vec<SelectionView> = cut
                        .iter()
                        .filter_map(|e| view_edges.get(e))
                        .flat_map(|v| branch.problem.provenance.resolve(v))
                        .collect();
                    originals.sort();
                    originals.dedup();
                    best_views.extend(originals);
                }
            }
            debug_assert_eq!(
                branch.base_cost,
                branch.base_views.iter().fold(Price::ZERO, |acc, v| acc
                    .saturating_add(pricer.prices().get(v))),
                "cover views must re-sum to the branch base cost"
            );
            cached.push(CachedBranch {
                provenance: branch.problem.provenance,
                base_views: branch.base_views,
                graph,
                s,
                t,
                view_edges,
                edge_of_original,
                state,
            });
        }
        best_views.sort();
        best_views.dedup();
        let quote = Quote {
            price: best,
            views: best_views,
            method: PricingMethod::ChainFlow,
            class,
            quality: QuoteQuality::Exact,
            lower_bound: best,
        };
        let entry = PlanEntry {
            mentioned: mentioned_rels(q),
            footprint: query_footprint(catalog, q),
            transformed,
            prices: pricer.prices().clone(),
            branches: cached,
            quote: quote.clone(),
        };
        Ok((entry, quote))
    }
}

impl PlanEntry {
    /// Footprint price points whose value differs between the snapshot and
    /// the pricer's current list: `(view, old, new)`.
    fn diff(&self, pricer: &Pricer) -> Vec<(SelectionView, Price, Price)> {
        let catalog = pricer.catalog();
        let current = pricer.prices();
        let mut changed = Vec::new();
        // audit: bounded(footprint × column scan, once per cache hit)
        for &attr in &self.footprint {
            for value in catalog.column(attr).iter() {
                let old = self.prices.get_at(attr, value);
                let new = current.get_at(attr, value);
                if old != new {
                    changed.push((SelectionView::new(attr, value.clone()), old, new));
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{tuple, CatalogBuilder, Column, Value};
    use qbdp_query::parser::parse_rule;

    fn figure1_pricer() -> Pricer {
        let ax = Column::texts(["a1", "a2", "a3", "a4"]);
        let by = Column::texts(["b1", "b2", "b3"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", ax.clone())])
            .relation("S", &[("X", ax), ("Y", by.clone())])
            .relation("T", &[("Y", by)])
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(
            cat.schema().rel_id("R").unwrap(),
            [tuple!["a1"], tuple!["a2"]],
        )
        .unwrap();
        d.insert_all(
            cat.schema().rel_id("S").unwrap(),
            [
                tuple!["a1", "b1"],
                tuple!["a1", "b2"],
                tuple!["a2", "b2"],
                tuple!["a4", "b1"],
            ],
        )
        .unwrap();
        d.insert_all(
            cat.schema().rel_id("T").unwrap(),
            [tuple!["b1"], tuple!["b3"]],
        )
        .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        Pricer::new(cat, d, prices).unwrap()
    }

    fn assert_quotes_equal(a: &Quote, b: &Quote) {
        assert_eq!(a.price, b.price);
        assert_eq!(a.views, b.views);
        assert_eq!(a.method, b.method);
        assert_eq!(a.class, b.class);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.lower_bound, b.lower_bound);
    }

    #[test]
    fn shape_key_ignores_names_and_variable_identity() {
        let p = figure1_pricer();
        let s = p.catalog().schema();
        let q1 = parse_rule(s, "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let q2 = parse_rule(s, "Other(u, w) :- R(u), S(u, w), T(w)").unwrap();
        assert_eq!(shape_key(&q1), shape_key(&q2));
        // Different constants → different shapes.
        let q3 = parse_rule(s, "Q(y) :- R('a1'), S('a1', y), T(y)").unwrap();
        let q4 = parse_rule(s, "Q(y) :- R('a2'), S('a2', y), T(y)").unwrap();
        assert_ne!(shape_key(&q3), shape_key(&q4));
    }

    #[test]
    fn cached_quote_matches_cold_and_hits() {
        let p = figure1_pricer();
        let q = parse_rule(p.catalog().schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let mut plan = PlanCache::new();
        let cold = p.price_cq(&q).unwrap();
        let warm1 = plan.quote(&p, &q).unwrap();
        let warm2 = plan.quote(&p, &q).unwrap();
        assert_quotes_equal(&cold, &warm1);
        assert_quotes_equal(&cold, &warm2);
        assert_eq!(plan.stats().misses, 1);
        assert_eq!(plan.stats().hits, 1);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn price_change_warm_reprices_to_cold_answer() {
        let mut p = figure1_pricer();
        let q = parse_rule(p.catalog().schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let mut plan = PlanCache::new();
        plan.quote(&p, &q).unwrap();
        // Raise one R.X view: the cut should route around it.
        let rx = p.catalog().schema().resolve_attr("R.X").unwrap();
        let mut prices = p.prices().clone();
        prices.set(
            SelectionView::new(rx, Value::text("a1")),
            Price::dollars(50),
        );
        p = Pricer::new(p.catalog().clone(), p.instance().clone(), prices).unwrap();
        let warm = plan.quote(&p, &q).unwrap();
        let cold = p.price_cq(&q).unwrap();
        assert_quotes_equal(&cold, &warm);
        assert_eq!(plan.stats().warm_reprices, 1);
        assert_eq!(plan.stats().evictions, 0);
    }

    #[test]
    fn repeated_variable_changes_evict() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .build()
            .unwrap();
        let r = cat.schema().rel_id("R").unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(r, [tuple![0, 0], tuple![1, 1]]).unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(2));
        let mut p = Pricer::new(cat, d, prices).unwrap();
        let q = parse_rule(p.catalog().schema(), "Q(x) :- R(x, x)").unwrap();
        let mut plan = PlanCache::new();
        plan.quote(&p, &q).unwrap();
        // Drop the price of the "loser" position below the winner: the min
        // flips, which only an eviction can observe.
        let ry = AttrRef::new(r, 1);
        let mut prices = p.prices().clone();
        prices.set(SelectionView::new(ry, Value::Int(0)), Price::dollars(1));
        p = Pricer::new(p.catalog().clone(), p.instance().clone(), prices).unwrap();
        let warm = plan.quote(&p, &q).unwrap();
        let cold = p.price_cq(&q).unwrap();
        assert_quotes_equal(&cold, &warm);
        assert_eq!(plan.stats().evictions, 1);
        assert_eq!(plan.stats().warm_reprices, 0);
    }

    #[test]
    fn infinite_transitions_evict() {
        let mut p = figure1_pricer();
        let q = parse_rule(p.catalog().schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let mut plan = PlanCache::new();
        plan.quote(&p, &q).unwrap();
        // Unprice a view: finite → ∞ must evict, and the rebuilt entry
        // must agree with cold.
        let rx = p.catalog().schema().resolve_attr("R.X").unwrap();
        let mut prices = p.prices().clone();
        prices.remove(&SelectionView::new(rx, Value::text("a1")));
        p = Pricer::new(p.catalog().clone(), p.instance().clone(), prices).unwrap();
        let warm = plan.quote(&p, &q).unwrap();
        let cold = p.price_cq(&q).unwrap();
        assert_quotes_equal(&cold, &warm);
        assert_eq!(plan.stats().evictions, 1);
    }

    #[test]
    fn insert_invalidates_mentioning_entries() {
        let mut p = figure1_pricer();
        let q = parse_rule(p.catalog().schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let mut plan = PlanCache::new();
        plan.quote(&p, &q).unwrap();
        let r = p.catalog().schema().rel_id("R").unwrap();
        plan.invalidate_rels(&[r]);
        assert!(plan.is_empty());
        p.insert(r, [tuple!["a3"]]).unwrap();
        let warm = plan.quote(&p, &q).unwrap();
        let cold = p.price_cq(&q).unwrap();
        assert_quotes_equal(&cold, &warm);
    }

    #[test]
    fn hanging_branch_cover_costs_track_price_changes() {
        // Q(x, y, z) = R(x, y), S(y, z), T(z): x hangs on R.X; changing
        // R.X prices moves the cover branch's base cost.
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .uniform_relation("S", &["Y", "Z"], &col)
            .uniform_relation("T", &["Z"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("R").unwrap(), tuple![0, 1])
            .unwrap();
        d.insert(cat.schema().rel_id("S").unwrap(), tuple![1, 2])
            .unwrap();
        d.insert(cat.schema().rel_id("T").unwrap(), tuple![2])
            .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let mut p = Pricer::new(cat, d, prices).unwrap();
        let q = parse_rule(p.catalog().schema(), "Q(x, y, z) :- R(x, y), S(y, z), T(z)").unwrap();
        let mut plan = PlanCache::new();
        plan.quote(&p, &q).unwrap();
        let rx = p.catalog().schema().resolve_attr("R.X").unwrap();
        for cents in [40u64, 250, 700] {
            let mut prices = p.prices().clone();
            prices.set(SelectionView::new(rx, Value::Int(1)), Price::cents(cents));
            p = Pricer::new(p.catalog().clone(), p.instance().clone(), prices).unwrap();
            let warm = plan.quote(&p, &q).unwrap();
            let cold = p.price_cq(&q).unwrap();
            assert_quotes_equal(&cold, &warm);
        }
        assert_eq!(plan.stats().evictions, 0);
        assert_eq!(plan.stats().warm_reprices, 3);
    }

    #[test]
    fn uncacheable_classes_delegate() {
        let p = figure1_pricer();
        let mut plan = PlanCache::new();
        // Boolean query: bypasses the cache entirely.
        let q = parse_rule(p.catalog().schema(), "B() :- R(x), S(x, y), T(y)").unwrap();
        let warm = plan.quote(&p, &q).unwrap();
        let cold = p.price_cq(&q).unwrap();
        assert_quotes_equal(&cold, &warm);
        assert!(plan.is_empty());
    }
}
