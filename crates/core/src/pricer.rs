//! The pricing façade: classify a query (Theorem 3.16) and dispatch it to
//! the cheapest-complexity engine that applies.

use crate::boolean::secure_witness_price;
use crate::budget::{Budget, Metered, QuoteQuality};
use crate::chain::graph::TupleEdgeMode;
use crate::chain::price::{chain_price_within, FlowAlgo};
use crate::consistency::{find_list_arbitrage, ListArbitrage};
use crate::cycle::cycle_price_within;
use crate::degrade::{relevant_rels, relevant_rels_cq, structural_cover};
use crate::dichotomy::{classify, component_query, QueryClass};
use crate::disconnected::{combine, ComponentPrice};
use crate::error::PricingError;
use crate::exact::certificates::{certificate_price_within, CertificateConfig};
use crate::exact::subset::{subset_price_within, SubsetConfig};
use crate::exact::ExactResult;
use crate::gchq::reorder_to_gchq;
use crate::money::Price;
use crate::normalize::{step1_predicates, step2_repeated, step3_hanging, Problem};
use crate::price_points::PriceList;
use qbdp_catalog::{Catalog, Instance};
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::analysis;
use qbdp_query::ast::{ConjunctiveQuery, Ucq};
use qbdp_query::bundle::Bundle;
use qbdp_query::eval;

/// Which engine produced a quote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PricingMethod {
    /// GChQ pipeline: Steps 1–3 + Min-Cut (Theorem 3.7). PTIME.
    ChainFlow,
    /// Definition 3.9 chain bundle priced by a shared-graph Min-Cut. PTIME.
    ChainBundleFlow,
    /// Cycle queries via the exact certificate engine (Theorem 3.15).
    CycleCertificates,
    /// Component-wise composition (Proposition 3.14); methods per part.
    Disconnected(Vec<PricingMethod>),
    /// Boolean query, true on `D`: cheapest secured witness.
    BooleanWitness,
    /// Boolean query, false on `D`: priced as its fullification.
    BooleanEmpty(Box<PricingMethod>),
    /// Exact hitting set over determinacy certificates (full CQs).
    ExactCertificates,
    /// Exact subset search over Equation 2 (any monotone query).
    ExactSubset,
    /// Budget-exhausted fallback: the cheapest full-attribute cover of
    /// every mentioned relation — always a determining set, hence a sound
    /// over-estimate (only ever paired with `QuoteQuality::UpperBound`).
    StructuralCover,
    /// The empty query bundle (price 0, Proposition 2.8).
    Trivial,
}

/// A priced query: the arbitrage-price plus the realizing purchase.
#[derive(Clone, Debug)]
pub struct Quote {
    /// The arbitrage-price `pS_D(Q)`; `INFINITE` when the seller's price
    /// list cannot determine the query.
    pub price: Price,
    /// The views of the cheapest support, against the seller's original
    /// price list.
    pub views: Vec<SelectionView>,
    /// The engine that produced the quote.
    pub method: PricingMethod,
    /// The query's dichotomy class.
    pub class: QueryClass,
    /// Whether `price` is the exact arbitrage-price or a budget-degraded
    /// (but still arbitrage-free) over-estimate.
    pub quality: QuoteQuality,
    /// Sound lower bound on the true arbitrage-price; equals `price` for
    /// exact quotes, brackets it from below for degraded ones.
    pub lower_bound: Price,
}

impl Quote {
    /// A human-readable, multi-line explanation of the quote: what class
    /// the query fell into, which engine priced it, and the itemized views
    /// the arbitrage-price stands for.
    pub fn explain(&self, catalog: &Catalog, prices: &PriceList) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "dichotomy class : {:?}", self.class);
        let _ = writeln!(
            out,
            "pricing engine  : {:?}{}",
            self.method,
            match &self.method {
                PricingMethod::ChainFlow | PricingMethod::ChainBundleFlow =>
                    "  (PTIME Min-Cut, Theorem 3.7)",
                PricingMethod::CycleCertificates => "  (Theorem 3.15)",
                PricingMethod::BooleanWitness => "  (cheapest secured witness)",
                PricingMethod::ExactCertificates | PricingMethod::ExactSubset =>
                    "  (exact engine — NP-complete class)",
                PricingMethod::StructuralCover => "  (budget-exhausted fallback)",
                _ => "",
            }
        );
        if !self.quality.is_exact() {
            let _ = writeln!(
                out,
                "quality         : UPPER BOUND — the budget ran out; the true \
                 arbitrage-price lies in [{}, {}]. Selling at the quoted price \
                 is still arbitrage-free (over-estimates never create arbitrage).",
                self.lower_bound, self.price
            );
        }
        if self.price.is_infinite() {
            let _ = write!(
                out,
                "price           : ∞ — the explicit price points do not determine this query"
            );
            return out;
        }
        let _ = writeln!(out, "price           : {}", self.price);
        let _ = writeln!(
            out,
            "cheapest determining view set ({} view(s)):",
            self.views.len()
        );
        for v in &self.views {
            let _ = writeln!(out, "  {} @ {}", v.display(catalog.schema()), prices.get(v));
        }
        let _ = write!(
            out,
            "any other way to answer the query from priced views costs at least this much \
             (arbitrage-freeness, Definition 2.7)"
        );
        out
    }
}

/// Internal engine outcome, assembled into a [`Quote`] at the façade.
struct Outcome {
    price: Price,
    views: Vec<SelectionView>,
    method: PricingMethod,
    quality: QuoteQuality,
    lower_bound: Price,
}

impl Outcome {
    fn exact(price: Price, views: Vec<SelectionView>, method: PricingMethod) -> Outcome {
        Outcome {
            price,
            views,
            method,
            quality: QuoteQuality::Exact,
            lower_bound: price,
        }
    }

    fn from_result(r: ExactResult, method: PricingMethod) -> Outcome {
        Outcome {
            price: r.price,
            views: r.views,
            method,
            quality: r.quality,
            lower_bound: r.lower_bound,
        }
    }
}

/// Count a budget exhaustion against the engine that degraded; the
/// registry's `qbdp_budget_exhausted_*` family breaks "degraded quote"
/// down by which engine ran dry.
fn note_exhaustion(ctr: qbdp_obs::Ctr, quality: QuoteQuality) {
    if !quality.is_exact() {
        qbdp_obs::record(ctr, 1);
    }
}

/// Static label for a dichotomy class, for trace-span details.
fn class_label(class: &QueryClass) -> &'static str {
    match class {
        QueryClass::Disconnected(_) => "disconnected",
        QueryClass::GeneralizedChain => "gchq",
        QueryClass::Cycle(_) => "cycle",
        QueryClass::NpComplete(_) => "np_complete",
        QueryClass::OutsideDichotomy => "outside_dichotomy",
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct PricerConfig {
    /// Tuple-edge mode for the flow reduction.
    pub tuple_mode: TupleEdgeMode,
    /// Max-flow algorithm.
    pub flow_algo: FlowAlgo,
    /// Subset-search limits (exact engine).
    pub subset: SubsetConfig,
    /// Certificate-generation limits (exact engine).
    pub certificates: CertificateConfig,
}

impl Default for PricerConfig {
    fn default() -> Self {
        PricerConfig {
            tuple_mode: TupleEdgeMode::Hub,
            flow_algo: FlowAlgo::Dinic,
            subset: SubsetConfig::default(),
            certificates: CertificateConfig::default(),
        }
    }
}

/// The pricing engine: a catalog, an instance, and a selection price list.
#[derive(Clone, Debug)]
pub struct Pricer {
    catalog: Catalog,
    instance: Instance,
    prices: PriceList,
    config: PricerConfig,
}

impl Pricer {
    /// Assemble a pricer. The instance must satisfy the catalog's inclusion
    /// constraints; the price list is *not* required to be consistent —
    /// call [`Pricer::check_consistency`] to validate it (Theorem 2.15
    /// makes the arbitrage-price meaningful only for consistent lists).
    pub fn new(
        catalog: Catalog,
        instance: Instance,
        prices: PriceList,
    ) -> Result<Self, PricingError> {
        catalog.check_instance(&instance)?;
        Ok(Pricer {
            catalog,
            instance,
            prices,
            config: PricerConfig::default(),
        })
    }

    /// Replace the engine configuration.
    pub fn with_config(mut self, config: PricerConfig) -> Self {
        self.config = config;
        self
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The price list.
    pub fn prices(&self) -> &PriceList {
        &self.prices
    }

    /// The engine configuration.
    pub fn config(&self) -> &PricerConfig {
        &self.config
    }

    /// Price a conjunctive query exactly, reusing `plan`'s cached
    /// normalized networks when the shape was priced before (see
    /// [`crate::plan_cache::PlanCache`]). Bit-identical to
    /// [`Pricer::price_cq`].
    pub fn price_cq_with_plan(
        &self,
        q: &ConjunctiveQuery,
        plan: &mut crate::plan_cache::PlanCache,
    ) -> Result<Quote, PricingError> {
        plan.quote(self, q)
    }

    /// Proposition 3.2 violations (empty ⇒ consistent).
    pub fn check_consistency(&self) -> Vec<ListArbitrage> {
        find_list_arbitrage(&self.catalog, &self.prices)
    }

    /// Insert tuples (the dynamic setting of §2.7 — insertions only).
    pub fn insert(
        &mut self,
        rel: qbdp_catalog::RelId,
        tuples: impl IntoIterator<Item = qbdp_catalog::Tuple>,
    ) -> Result<usize, PricingError> {
        let mut staged = self.instance.clone();
        let added = staged.insert_all(rel, tuples)?;
        self.catalog.check_instance(&staged)?;
        self.instance = staged;
        Ok(added)
    }

    /// Parse a datalog rule against this pricer's schema and price it.
    pub fn price_rule(&self, rule: &str) -> Result<Quote, PricingError> {
        let q = qbdp_query::parser::parse_rule(self.catalog.schema(), rule)?;
        self.price_cq(&q)
    }

    /// [`Pricer::price_rule`] under a [`Budget`].
    pub fn price_rule_within(&self, rule: &str, budget: &Budget) -> Result<Quote, PricingError> {
        let q = qbdp_query::parser::parse_rule(self.catalog.schema(), rule)?;
        self.price_cq_within(&q, budget)
    }

    /// Independently audit a quote: the quoted views must (a) sum to the
    /// quoted price against the current price list, and (b) actually
    /// determine the query (checked with the Theorem 3.3 oracle — a
    /// different code path than any pricing engine). A buyer can run this
    /// before paying; a `false` return means the quote is stale (the data
    /// changed) or wrong.
    pub fn verify_quote(&self, q: &ConjunctiveQuery, quote: &Quote) -> Result<bool, PricingError> {
        if quote.price.is_infinite() {
            return Ok(quote.views.is_empty());
        }
        let total: Price = quote.views.iter().map(|v| self.prices.get(v)).sum();
        if total != quote.price {
            return Ok(false);
        }
        let vs: qbdp_determinacy::selection::ViewSet = quote.views.iter().cloned().collect();
        Ok(qbdp_determinacy::selection::determines_monotone_cq(
            &self.catalog,
            &self.instance,
            &vs,
            q,
        )?)
    }

    /// Price a conjunctive query.
    pub fn price_cq(&self, q: &ConjunctiveQuery) -> Result<Quote, PricingError> {
        self.price_cq_within(q, &Budget::unlimited())
    }

    /// Price a conjunctive query under a [`Budget`].
    ///
    /// With an unlimited budget this is exactly [`Pricer::price_cq`]. A
    /// limited budget makes every engine degrade instead of failing: the
    /// returned quote's [`Quote::quality`] says whether the price is exact
    /// or a sound (arbitrage-free) over-estimate, with
    /// [`Quote::lower_bound`] bracketing the truth from below.
    pub fn price_cq_within(
        &self,
        q: &ConjunctiveQuery,
        budget: &Budget,
    ) -> Result<Quote, PricingError> {
        crate::fault::maybe_panic();
        let class = {
            let mut span = qbdp_obs::trace::span("classify");
            let class = classify(q);
            span.detail(class_label(&class));
            class
        };
        let o = self.dispatch_within(q, &class, budget)?;
        let mut views = o.views;
        views.sort();
        views.dedup();
        Ok(Quote {
            price: o.price,
            views,
            method: o.method,
            class,
            quality: o.quality,
            lower_bound: o.lower_bound,
        })
    }

    /// Price a UCQ: single-CQ UCQs go through the dichotomy dispatch;
    /// genuine unions use the exact subset engine (Equation 2 verbatim).
    pub fn price_ucq(&self, q: &Ucq) -> Result<Quote, PricingError> {
        self.price_ucq_within(q, &Budget::unlimited())
    }

    /// [`Pricer::price_ucq`] under a [`Budget`].
    pub fn price_ucq_within(&self, q: &Ucq, budget: &Budget) -> Result<Quote, PricingError> {
        match q.as_single_cq() {
            Some(cq) => self.price_cq_within(cq, budget),
            None => self.price_bundle_within(&Bundle::single(q.clone()), budget),
        }
    }

    /// Price a query bundle (the general object of §2). Bundles are priced
    /// by the exact subset engine — the PTIME GChQ-bundle extension
    /// (Definition 3.9) is future work recorded in DESIGN.md.
    pub fn price_bundle(&self, bundle: &Bundle) -> Result<Quote, PricingError> {
        self.price_bundle_within(bundle, &Budget::unlimited())
    }

    /// [`Pricer::price_bundle`] under a [`Budget`].
    pub fn price_bundle_within(
        &self,
        bundle: &Bundle,
        budget: &Budget,
    ) -> Result<Quote, PricingError> {
        crate::fault::maybe_panic();
        if bundle.is_empty() {
            return Ok(Quote {
                price: Price::ZERO,
                views: Vec::new(),
                method: PricingMethod::Trivial,
                class: QueryClass::GeneralizedChain,
                quality: QuoteQuality::Exact,
                lower_bound: Price::ZERO,
            });
        }
        // Bundles of full CQs go through the shared-certificate engine
        // (Lemma 2.6(b): determine every member), which both scales better
        // and realizes Proposition 2.8's subadditivity exactly.
        let full_cqs: Option<Vec<&ConjunctiveQuery>> = bundle
            .queries()
            .iter()
            .map(|u| u.as_single_cq().filter(|cq| analysis::is_full(cq)))
            .collect();
        let res = if let Some(cqs) = &full_cqs {
            // A bundle of chain queries sharing only prefixes/suffixes
            // (Definition 3.9) prices in PTIME through the shared-graph
            // Min-Cut; anything else falls back to exact certificates.
            let owned: Vec<ConjunctiveQuery> = cqs.iter().map(|q| (*q).clone()).collect();
            let shared_cut = if budget.charge(64 + self.instance.total_tuples() as u64) {
                crate::chain::bundle::chain_bundle_price(
                    &self.catalog,
                    &self.instance,
                    &self.prices,
                    &owned,
                    &crate::normalize::Provenance::identity(),
                )
                .ok()
            } else {
                None
            };
            match shared_cut {
                Some(r) => Outcome::exact(r.price, r.views, PricingMethod::ChainBundleFlow),
                None if budget.is_exhausted() => {
                    let (price, views) =
                        structural_cover(&self.catalog, &self.prices, relevant_rels(bundle));
                    Outcome::from_result(
                        ExactResult::degraded(price, views, Price::ZERO),
                        PricingMethod::StructuralCover,
                    )
                }
                None => {
                    let mut span = qbdp_obs::trace::span("hitting_set");
                    span.detail("bundle_certs");
                    let r = crate::exact::certificates::certificate_price_bundle_within(
                        &self.catalog,
                        &self.instance,
                        &self.prices,
                        cqs,
                        self.config.certificates,
                        budget,
                    )?;
                    note_exhaustion(qbdp_obs::Ctr::BudgetExhaustedCerts, r.quality);
                    Outcome::from_result(r, PricingMethod::ExactCertificates)
                }
            }
        } else {
            let mut span = qbdp_obs::trace::span("hitting_set");
            span.detail("bundle_subset");
            let r = subset_price_within(
                &self.catalog,
                &self.instance,
                &self.prices,
                bundle,
                self.config.subset,
                budget,
            )?;
            note_exhaustion(qbdp_obs::Ctr::BudgetExhaustedSubset, r.quality);
            Outcome::from_result(r, PricingMethod::ExactSubset)
        };
        let class = bundle
            .queries()
            .iter()
            .filter_map(Ucq::as_single_cq)
            .map(classify)
            .next()
            .unwrap_or(QueryClass::OutsideDichotomy);
        Ok(Quote {
            price: res.price,
            views: res.views,
            method: res.method,
            class,
            quality: res.quality,
            lower_bound: res.lower_bound,
        })
    }

    /// The budget-exhausted fallback: the structural relation cover, which
    /// determines any monotone query over the mentioned relations.
    fn structural_outcome(&self, q: &ConjunctiveQuery) -> Outcome {
        qbdp_obs::trace::event("structural_fallback", "relation_cover");
        let (price, views) = structural_cover(&self.catalog, &self.prices, relevant_rels_cq(q));
        Outcome::from_result(
            ExactResult::degraded(price, views, Price::ZERO),
            PricingMethod::StructuralCover,
        )
    }

    fn dispatch_within(
        &self,
        q: &ConjunctiveQuery,
        class: &QueryClass,
        budget: &Budget,
    ) -> Result<Outcome, PricingError> {
        if q.atoms().is_empty() {
            return Ok(Outcome::exact(
                Price::ZERO,
                Vec::new(),
                PricingMethod::Trivial,
            ));
        }
        if budget.is_exhausted() {
            return Ok(self.structural_outcome(q));
        }
        match class {
            QueryClass::Disconnected(parts) => {
                let components = analysis::connected_components(q);
                let mut priced = Vec::with_capacity(components.len());
                let mut methods = Vec::with_capacity(components.len());
                let mut lbs: Vec<Price> = Vec::with_capacity(components.len());
                let mut quality = QuoteQuality::Exact;
                for (comp, part_class) in components.iter().zip(parts) {
                    let sub = component_query(q, comp);
                    let o = self.dispatch_within(&sub, part_class, budget)?;
                    let empty = !eval::is_satisfiable(&sub, &self.instance)?;
                    if !o.quality.is_exact() {
                        quality = QuoteQuality::UpperBound;
                    }
                    priced.push(ComponentPrice {
                        empty,
                        price: o.price,
                        views: o.views,
                    });
                    lbs.push(o.lower_bound);
                    methods.push(o.method);
                }
                let (price, views) = combine(&priced);
                let method = PricingMethod::Disconnected(methods);
                if quality.is_exact() {
                    return Ok(Outcome::exact(price, views, method));
                }
                // Proposition 3.14 is monotone in each component price, so
                // applying the same combination to the component lower
                // bounds bounds the true price from below: sum when all
                // components are nonempty, min over the empty ones else.
                let lower_bound = if priced.iter().all(|c| !c.empty) {
                    lbs.iter().fold(Price::ZERO, |a, &b| a.saturating_add(b))
                } else {
                    priced
                        .iter()
                        .zip(&lbs)
                        .filter(|(c, _)| c.empty)
                        .map(|(_, &lb)| lb)
                        .min()
                        .unwrap_or(Price::ZERO)
                };
                Ok(Outcome::from_result(
                    ExactResult::degraded(price, views, lower_bound),
                    method,
                ))
            }
            QueryClass::GeneralizedChain => self.price_gchq_within(q, budget),
            QueryClass::Cycle(_) => {
                let problem = Problem::new(
                    self.catalog.clone(),
                    self.instance.clone(),
                    self.prices.clone(),
                    q.clone(),
                );
                let mut span = qbdp_obs::trace::span("hitting_set");
                span.detail("cycle_certs");
                let r = cycle_price_within(&problem, self.config.certificates, budget)?;
                note_exhaustion(qbdp_obs::Ctr::BudgetExhaustedCerts, r.quality);
                Ok(Outcome::from_result(r, PricingMethod::CycleCertificates))
            }
            QueryClass::NpComplete(_) | QueryClass::OutsideDichotomy => {
                if q.is_boolean() {
                    return self.price_boolean_within(q, budget);
                }
                if analysis::is_full(q) {
                    let mut span = qbdp_obs::trace::span("hitting_set");
                    span.detail("certs");
                    let r = certificate_price_within(
                        &self.catalog,
                        &self.instance,
                        &self.prices,
                        q,
                        self.config.certificates,
                        budget,
                    )?;
                    note_exhaustion(qbdp_obs::Ctr::BudgetExhaustedCerts, r.quality);
                    return Ok(Outcome::from_result(r, PricingMethod::ExactCertificates));
                }
                let mut span = qbdp_obs::trace::span("hitting_set");
                span.detail("subset");
                let r = subset_price_within(
                    &self.catalog,
                    &self.instance,
                    &self.prices,
                    &Bundle::from(q.clone()),
                    self.config.subset,
                    budget,
                )?;
                note_exhaustion(qbdp_obs::Ctr::BudgetExhaustedSubset, r.quality);
                Ok(Outcome::from_result(r, PricingMethod::ExactSubset))
            }
        }
    }

    /// Boolean queries (any class): witness cover when true, fullification
    /// when false.
    fn price_boolean_within(
        &self,
        q: &ConjunctiveQuery,
        budget: &Budget,
    ) -> Result<Outcome, PricingError> {
        // Satisfiability and witness search both scan the instance.
        if !budget.charge(64 + self.instance.total_tuples() as u64) {
            return Ok(self.structural_outcome(q));
        }
        if eval::is_satisfiable(q, &self.instance)? {
            let (price, views) =
                secure_witness_price(&self.catalog, &self.instance, &self.prices, q)?;
            return Ok(Outcome::exact(price, views, PricingMethod::BooleanWitness));
        }
        let full = q.with_head(q.body_vars())?;
        if full.is_boolean() {
            // All-constant body: fullification is the query itself (still
            // boolean). It is vacuously full, so the certificate engine
            // prices its single emptiness constraint directly.
            let r = certificate_price_within(
                &self.catalog,
                &self.instance,
                &self.prices,
                &full,
                self.config.certificates,
                budget,
            )?;
            let method = PricingMethod::BooleanEmpty(Box::new(PricingMethod::ExactCertificates));
            return Ok(Outcome {
                price: r.price,
                views: r.views,
                method,
                quality: r.quality,
                lower_bound: r.lower_bound,
            });
        }
        let class = classify(&full);
        let o = self.dispatch_within(&full, &class, budget)?;
        Ok(Outcome {
            method: PricingMethod::BooleanEmpty(Box::new(o.method)),
            ..o
        })
    }

    /// The GChQ pipeline (Theorem 3.7): boolean shortcut, reorder,
    /// Steps 1–3, then one Min-Cut per hanging-variable branch.
    fn price_gchq_within(
        &self,
        q: &ConjunctiveQuery,
        budget: &Budget,
    ) -> Result<Outcome, PricingError> {
        if q.is_boolean() {
            return self.price_boolean_within(q, budget);
        }
        let ordered = reorder_to_gchq(q).ok_or_else(|| {
            PricingError::NotApplicable(format!(
                "query {} classified GChQ but no chain order found",
                q.name()
            ))
        })?;
        let problem = Problem::new(
            self.catalog.clone(),
            self.instance.clone(),
            self.prices.clone(),
            ordered,
        );
        let mut norm_span = qbdp_obs::trace::span("normalize");
        let problem = step1_predicates::apply(problem)?;
        let problem = step2_repeated::apply(problem)?;
        let (branches, branches_complete) = step3_hanging::branches_within(problem, budget)?;
        norm_span.detail(if branches_complete {
            "steps_1_3"
        } else {
            "step3_exhausted"
        });
        norm_span.n(branches.len() as u64);
        drop(norm_span);
        if !branches_complete {
            qbdp_obs::record(qbdp_obs::Ctr::BudgetExhaustedStep3, 1);
        }
        if branches.is_empty() && !branches_complete {
            return Ok(self.structural_outcome(q));
        }
        // The true price is the minimum over all branch totals. Completed
        // branches give genuine purchase totals (each an upper bound);
        // interrupted flows give per-branch lower bounds, and the minimum
        // of per-branch lower bounds under-estimates the minimum total.
        let mut best = Price::INFINITE;
        let mut best_views: Vec<SelectionView> = Vec::new();
        let mut found_cut = false;
        let mut branch_lb = Price::INFINITE;
        let mut all_done = true;
        for branch in branches {
            let mut flow_span = qbdp_obs::trace::span("flow_solve");
            let fuel_before = budget.consumed_fuel();
            let metered = chain_price_within(
                &branch.problem,
                self.config.tuple_mode,
                self.config.flow_algo,
                budget,
            )?;
            flow_span.fuel(budget.consumed_fuel().saturating_sub(fuel_before));
            flow_span.detail(match &metered {
                Metered::Done(_) => "done",
                Metered::Exhausted { .. } => "exhausted",
            });
            drop(flow_span);
            match metered {
                Metered::Done(r) => {
                    let total = branch.base_cost.saturating_add(r.price);
                    branch_lb = branch_lb.min(total);
                    if total < best {
                        best = total;
                        best_views = branch.base_views;
                        best_views.extend(r.original_views);
                        found_cut = true;
                    }
                }
                Metered::Exhausted { lower_bound } => {
                    all_done = false;
                    branch_lb = branch_lb.min(branch.base_cost.saturating_add(lower_bound));
                }
            }
        }
        if branches_complete && all_done {
            return Ok(Outcome::exact(best, best_views, PricingMethod::ChainFlow));
        }
        // Degraded: an unexplored branch could be cheaper than anything
        // seen, so the only sound floor with missing branches is ZERO.
        let lower_bound = if branches_complete {
            branch_lb
        } else {
            Price::ZERO
        };
        if found_cut && best.is_finite() {
            return Ok(Outcome::from_result(
                ExactResult::degraded(best, best_views, lower_bound),
                PricingMethod::ChainFlow,
            ));
        }
        let mut fallback = self.structural_outcome(q);
        fallback.lower_bound = lower_bound.min(fallback.price);
        Ok(fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::certificates::certificate_price;
    use crate::exact::subset::subset_price;
    use qbdp_catalog::{tuple, CatalogBuilder, Column};
    use qbdp_query::parser::parse_rule;

    fn figure1_pricer() -> Pricer {
        let ax = Column::texts(["a1", "a2", "a3", "a4"]);
        let by = Column::texts(["b1", "b2", "b3"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", ax.clone())])
            .relation("S", &[("X", ax), ("Y", by.clone())])
            .relation("T", &[("Y", by)])
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(
            cat.schema().rel_id("R").unwrap(),
            [tuple!["a1"], tuple!["a2"]],
        )
        .unwrap();
        d.insert_all(
            cat.schema().rel_id("S").unwrap(),
            [
                tuple!["a1", "b1"],
                tuple!["a1", "b2"],
                tuple!["a2", "b2"],
                tuple!["a4", "b1"],
            ],
        )
        .unwrap();
        d.insert_all(
            cat.schema().rel_id("T").unwrap(),
            [tuple!["b1"], tuple!["b3"]],
        )
        .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        Pricer::new(cat, d, prices).unwrap()
    }

    #[test]
    fn figure1_quote() {
        let p = figure1_pricer();
        let q = parse_rule(p.catalog().schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let quote = p.price_cq(&q).unwrap();
        assert_eq!(quote.price, Price::dollars(6));
        assert_eq!(quote.method, PricingMethod::ChainFlow);
        assert_eq!(quote.class, QueryClass::GeneralizedChain);
        assert_eq!(quote.views.len(), 6);
        assert!(p.check_consistency().is_empty());
    }

    #[test]
    fn flow_agrees_with_both_exact_engines_on_figure1() {
        let p = figure1_pricer();
        let q = parse_rule(p.catalog().schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let flow = p.price_cq(&q).unwrap();
        let cert = certificate_price(
            &p.catalog,
            &p.instance,
            &p.prices,
            &q,
            CertificateConfig::default(),
        )
        .unwrap();
        let subset = subset_price(
            &p.catalog,
            &p.instance,
            &p.prices,
            &Bundle::from(q.clone()),
            SubsetConfig::default(),
        )
        .unwrap();
        assert_eq!(flow.price, cert.price);
        assert_eq!(flow.price, subset.price);
    }

    #[test]
    fn hanging_vars_priced_via_branches() {
        // Q(x, y, z) = R(x, y), S(y, z), T(z): x hangs.
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .uniform_relation("S", &["Y", "Z"], &col)
            .uniform_relation("T", &["Z"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("R").unwrap(), tuple![0, 1])
            .unwrap();
        d.insert(cat.schema().rel_id("S").unwrap(), tuple![1, 2])
            .unwrap();
        d.insert(cat.schema().rel_id("T").unwrap(), tuple![2])
            .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let pricer = Pricer::new(cat, d, prices).unwrap();
        let q = parse_rule(
            pricer.catalog().schema(),
            "Q(x, y, z) :- R(x, y), S(y, z), T(z)",
        )
        .unwrap();
        let quote = pricer.price_cq(&q).unwrap();
        // Cross-validate against both exact engines.
        let cert = certificate_price(
            &pricer.catalog,
            &pricer.instance,
            &pricer.prices,
            &q,
            CertificateConfig::default(),
        )
        .unwrap();
        assert_eq!(quote.price, cert.price);
        assert!(quote.price.is_finite());
    }

    #[test]
    fn boolean_quotes() {
        let p = figure1_pricer();
        // True on D: secure the (a1, b1) witness = 3 views at $1.
        let q = parse_rule(p.catalog().schema(), "B() :- R(x), S(x, y), T(y)").unwrap();
        let quote = p.price_cq(&q).unwrap();
        assert_eq!(quote.price, Price::dollars(3));
        assert_eq!(quote.method, PricingMethod::BooleanWitness);
        // False on D: Q joins through T(b2) which is absent... use S(a3, y):
        let q = parse_rule(p.catalog().schema(), "B() :- R(x), S(x, y), T(y), x = 'a3'").unwrap();
        let quote = p.price_cq(&q).unwrap();
        assert!(matches!(quote.method, PricingMethod::BooleanEmpty(_)));
        assert!(quote.price.is_finite());
    }

    #[test]
    fn disconnected_quote() {
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("A", &["X"], &col)
            .uniform_relation("B", &["X"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("A").unwrap(), tuple![0])
            .unwrap();
        d.insert(cat.schema().rel_id("B").unwrap(), tuple![1])
            .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let pricer = Pricer::new(cat, d, prices).unwrap();
        let q = parse_rule(pricer.catalog().schema(), "Q(x, y) :- A(x), B(y)").unwrap();
        let quote = pricer.price_cq(&q).unwrap();
        // Both components nonempty: sum of two full covers ($2 each).
        assert_eq!(quote.price, Price::dollars(4));
        assert!(matches!(quote.method, PricingMethod::Disconnected(_)));
    }

    #[test]
    fn np_hard_queries_priced_exactly() {
        // H1 on a tiny instance.
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y", "Z"], &col)
            .uniform_relation("S", &["X"], &col)
            .uniform_relation("T", &["X"], &col)
            .uniform_relation("U", &["X"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("R").unwrap(), tuple![0, 1, 0])
            .unwrap();
        d.insert(cat.schema().rel_id("S").unwrap(), tuple![0])
            .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let pricer = Pricer::new(cat, d, prices).unwrap();
        let q = parse_rule(
            pricer.catalog().schema(),
            "H1(x, y, z) :- R(x, y, z), S(x), T(y), U(z)",
        )
        .unwrap();
        let quote = pricer.price_cq(&q).unwrap();
        assert_eq!(quote.method, PricingMethod::ExactCertificates);
        assert!(quote.price.is_finite());
        assert!(matches!(quote.class, QueryClass::NpComplete(_)));
    }

    #[test]
    fn empty_bundle_is_free() {
        let p = figure1_pricer();
        let quote = p.price_bundle(&Bundle::empty()).unwrap();
        assert_eq!(quote.price, Price::ZERO);
        assert_eq!(quote.method, PricingMethod::Trivial);
    }

    #[test]
    fn insertions_are_validated() {
        let mut p = figure1_pricer();
        let r = p.catalog().schema().rel_id("R").unwrap();
        assert_eq!(p.insert(r, [tuple!["a3"]]).unwrap(), 1);
        // Outside the column: rejected, instance unchanged.
        assert!(p.insert(r, [tuple!["zz"]]).is_err());
        assert_eq!(p.instance().relation(r).len(), 3);
    }
}
