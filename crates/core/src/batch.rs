//! Parallel batch pricing: fan a slice of bundles over a scoped worker
//! pool.
//!
//! Equation 2 makes the arbitrage-price a pure function of the instance
//! epoch, the (normalized) query, and the price points — quotes for
//! different queries share no mutable state, so a batch of them is
//! embarrassingly parallel. The pool is `N` workers stealing job indices
//! from a shared [`Injector`]; each worker prices whole jobs, so its
//! thread-local Dinic arena (see `qbdp_flow::DinicArena`) is reused across
//! every flow run it performs. The caller's [`Budget`] is [split][
//! Budget::split] across jobs — fuel divided evenly, the wall-clock
//! deadline shared — so a batch obeys the same governance envelope as the
//! serial loop it replaces.
//!
//! Panic containment is per job: a pricing engine that panics poisons only
//! its own slot (surfacing as [`PricingError::Internal`]), never its
//! batch-mates.

use crate::budget::Budget;
use crate::error::PricingError;
use crate::pricer::{Pricer, Quote};
use crossbeam::deque::{Injector, Steal};
use qbdp_query::ast::Ucq;
use qbdp_query::bundle::Bundle;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Worker count used when the caller does not pick one: the machine's
/// available parallelism (1 when it cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "pricing engine panicked".to_string())
}

impl Pricer {
    /// Price one bundle the way the serial façade would: single-query
    /// bundles go through the dichotomy dispatch (so batch results are
    /// bit-identical to [`Pricer::price_ucq_within`]), genuine bundles
    /// through the bundle engines.
    fn price_job(&self, bundle: &Bundle, budget: &Budget) -> Result<Quote, PricingError> {
        match bundle.queries() {
            [single] => self.price_ucq_within(single, budget),
            _ => self.price_bundle_within(bundle, budget),
        }
    }

    /// Price a batch of bundles in parallel under one shared [`Budget`],
    /// with [`default_workers`] worker threads.
    ///
    /// Results are positionally aligned with `bundles`. Per-job failures
    /// (including engine panics) land in that job's slot only.
    pub fn price_batch_within(
        &self,
        bundles: &[Bundle],
        budget: &Budget,
    ) -> Vec<Result<Quote, PricingError>> {
        self.price_batch_with_workers(bundles, budget, default_workers())
    }

    /// [`Pricer::price_batch_within`] with an explicit worker count.
    ///
    /// The budget is [split][Budget::split] into one sub-budget per job:
    /// fuel is divided evenly across the batch, the deadline is shared,
    /// and cancelling the parent budget stops every job. `workers` is
    /// clamped to `[1, bundles.len()]`; one worker degenerates to the
    /// serial loop (still under split budgets, so results match the
    /// parallel path exactly).
    pub fn price_batch_with_workers(
        &self,
        bundles: &[Bundle],
        budget: &Budget,
        workers: usize,
    ) -> Vec<Result<Quote, PricingError>> {
        if bundles.is_empty() {
            return Vec::new();
        }
        let budgets = budget.split(bundles.len());
        let workers = workers.clamp(1, bundles.len());
        if workers == 1 {
            return bundles
                .iter()
                .zip(&budgets)
                .map(|(bundle, sub)| {
                    catch_unwind(AssertUnwindSafe(|| self.price_job(bundle, sub)))
                        .unwrap_or_else(|p| Err(PricingError::Internal(panic_message(p))))
                })
                .collect();
        }
        let injector = Injector::new();
        for i in 0..bundles.len() {
            injector.push(i);
        }
        let mut slots: Vec<Option<Result<Quote, PricingError>>> = Vec::new();
        slots.resize_with(bundles.len(), || None);
        let priced = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        // One worker = one OS thread = one thread-local
                        // Dinic arena reused across every stolen job.
                        let mut out: Vec<(usize, Result<Quote, PricingError>)> = Vec::new();
                        loop {
                            match injector.steal() {
                                Steal::Success(i) => {
                                    let r = catch_unwind(AssertUnwindSafe(|| {
                                        self.price_job(&bundles[i], &budgets[i])
                                    }))
                                    .unwrap_or_else(|p| {
                                        Err(PricingError::Internal(panic_message(p)))
                                    });
                                    out.push((i, r));
                                }
                                Steal::Empty => break,
                                Steal::Retry => continue,
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_default())
                .collect::<Vec<_>>()
        })
        .unwrap_or_default();
        for (i, r) in priced {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(PricingError::Internal(
                        "batch worker died before pricing this job".to_string(),
                    ))
                })
            })
            .collect()
    }

    /// Convenience: parse and price a batch of datalog rules in parallel.
    /// One parse error fails only its own slot.
    pub fn price_rules_batch_within(
        &self,
        rules: &[&str],
        budget: &Budget,
        workers: usize,
    ) -> Vec<Result<Quote, PricingError>> {
        let parsed: Vec<Result<Bundle, PricingError>> = rules
            .iter()
            .map(|rule| {
                qbdp_query::parser::parse_rule(self.catalog().schema(), rule)
                    .map(|q| Bundle::single(Ucq::single(q)))
                    .map_err(PricingError::from)
            })
            .collect();
        let bundles: Vec<Bundle> = parsed
            .iter()
            .filter_map(|r| r.as_ref().ok().cloned())
            .collect();
        let mut priced = self
            .price_batch_with_workers(&bundles, budget, workers)
            .into_iter();
        parsed
            .into_iter()
            .map(|slot| match slot {
                Ok(_) => priced
                    .next()
                    .unwrap_or_else(|| Err(PricingError::Internal("missing batch slot".into()))),
                Err(e) => Err(e),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Price;
    use crate::price_points::PriceList;
    use qbdp_catalog::{tuple, CatalogBuilder, Column};
    use qbdp_query::parser::parse_rule;

    fn pricer() -> Pricer {
        let ax = Column::texts(["a1", "a2", "a3", "a4"]);
        let by = Column::texts(["b1", "b2", "b3"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", ax.clone())])
            .relation("S", &[("X", ax), ("Y", by.clone())])
            .relation("T", &[("Y", by)])
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert_all(
            cat.schema().rel_id("R").unwrap(),
            [tuple!["a1"], tuple!["a2"]],
        )
        .unwrap();
        d.insert_all(
            cat.schema().rel_id("S").unwrap(),
            [tuple!["a1", "b1"], tuple!["a1", "b2"], tuple!["a2", "b2"]],
        )
        .unwrap();
        d.insert_all(
            cat.schema().rel_id("T").unwrap(),
            [tuple!["b1"], tuple!["b3"]],
        )
        .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        Pricer::new(cat, d, prices).unwrap()
    }

    fn queries() -> Vec<&'static str> {
        vec![
            "Q(x, y) :- R(x), S(x, y), T(y)",
            "Q(x) :- R(x)",
            "Q(x, y) :- S(x, y)",
            "Q(y) :- T(y)",
            "Q(x, y) :- R(x), S(x, y)",
            "B() :- R(x), S(x, y), T(y)",
        ]
    }

    #[test]
    fn batch_matches_serial_quotes() {
        let p = pricer();
        let rules = queries();
        let serial: Vec<Price> = rules
            .iter()
            .map(|r| {
                let q = parse_rule(p.catalog().schema(), r).unwrap();
                p.price_cq(&q).unwrap().price
            })
            .collect();
        for workers in [1, 2, 4, 16] {
            let batch = p.price_rules_batch_within(&rules, &Budget::unlimited(), workers);
            let batch_prices: Vec<Price> = batch.into_iter().map(|r| r.unwrap().price).collect();
            assert_eq!(batch_prices, serial, "workers={workers}");
        }
    }

    #[test]
    fn batch_slots_align_with_inputs_and_isolate_parse_errors() {
        let p = pricer();
        let rules = vec!["Q(x) :- R(x)", "this is not datalog", "Q(y) :- T(y)"];
        let out = p.price_rules_batch_within(&rules, &Budget::unlimited(), 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_batch_is_empty() {
        let p = pricer();
        assert!(p.price_batch_within(&[], &Budget::unlimited()).is_empty());
    }

    #[test]
    fn batch_respects_fuel_split() {
        let p = pricer();
        let rules = queries();
        // A starvation budget degrades every job instead of erroring.
        let out = p.price_rules_batch_within(&rules, &Budget::with_fuel(6), 2);
        for r in out {
            let quote = r.unwrap();
            assert!(
                !quote.quality.is_exact(),
                "starved jobs must degrade, got exact {quote:?}"
            );
        }
    }
}
