//! The dichotomy theorem (Theorem 3.16): every conjunctive query without
//! self-joins is priced either in PTIME or is NP-complete, decided purely
//! from the query's structure:
//!
//! 1. a disconnected query takes the worst complexity of its components;
//! 2. a connected query that is neither full nor boolean is NP-complete;
//! 3. a boolean query has the complexity of its fullification;
//! 4. a full query `Q` reduces structurally (hanging variables, constants,
//!    repeated in-atom occurrences removed) to `Q'`:
//!    GChQ ⇒ PTIME, cycle `C_k` ⇒ PTIME, anything else ⇒ NP-complete.
//!
//! Queries **with** self-joins sit outside the dichotomy (e.g. H3 is
//! NP-complete but the theorem does not classify the class); the library
//! prices them with the exact engines.

use qbdp_query::analysis;
use qbdp_query::ast::{Atom, ConjunctiveQuery, Term, Var};

/// The classification outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryClass {
    /// PTIME via the GChQ pipeline (Theorem 3.7). The payload is the
    /// structurally reduced shape's atom count, for diagnostics.
    GeneralizedChain,
    /// PTIME via the cycle algorithm (Theorem 3.15); payload = cycle length.
    Cycle(usize),
    /// Disconnected: per-component classes, in component order.
    Disconnected(Vec<QueryClass>),
    /// NP-complete (Theorem 3.16), with the reason.
    NpComplete(NpReason),
    /// Self-join present: the dichotomy does not apply.
    OutsideDichotomy,
}

/// Why a query is NP-complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NpReason {
    /// Connected, neither full nor boolean (e.g. H4(x) = R(x, y)).
    NotFullNotBoolean,
    /// Full, but the reduced shape is neither a GChQ nor a cycle
    /// (e.g. H1, H2).
    HardShape,
}

impl QueryClass {
    /// Whether pricing is PTIME for this class.
    pub fn is_ptime(&self) -> bool {
        match self {
            QueryClass::GeneralizedChain | QueryClass::Cycle(_) => true,
            QueryClass::Disconnected(cs) => cs.iter().all(QueryClass::is_ptime),
            QueryClass::NpComplete(_) | QueryClass::OutsideDichotomy => false,
        }
    }
}

/// Classify a conjunctive query per Theorem 3.16.
pub fn classify(q: &ConjunctiveQuery) -> QueryClass {
    if analysis::has_self_join(q) {
        return QueryClass::OutsideDichotomy;
    }
    if q.atoms().is_empty() {
        return QueryClass::GeneralizedChain; // vacuous query, price 0
    }
    // 1. Components.
    let components = analysis::connected_components(q);
    if components.len() > 1 {
        let classes = components
            .iter()
            .map(|comp| classify(&component_query(q, comp)))
            .collect();
        return QueryClass::Disconnected(classes);
    }
    // 2./3. Fullness and boolean-ness.
    if !analysis::is_full(q) {
        if !q.is_boolean() {
            return QueryClass::NpComplete(NpReason::NotFullNotBoolean);
        }
        #[allow(clippy::expect_used)]
        let full = q
            .with_head(q.body_vars())
            // audit: allow(R2: every body var is a safe head for its own query)
            .expect("body vars are safe heads");
        return classify(&full);
    }
    // 4. Structural reduction, then shape tests.
    if q.atoms().len() == 1 {
        // A single atom is trivially a GChQ (no nontrivial cut).
        return QueryClass::GeneralizedChain;
    }
    let reduced = structural_reduce(q);
    if gchq_order_exists(&reduced) {
        return QueryClass::GeneralizedChain;
    }
    if let Some(k) = cycle_shape(&reduced) {
        return QueryClass::Cycle(k);
    }
    QueryClass::NpComplete(NpReason::HardShape)
}

/// The sub-query induced by a set of atom indices (head restricted to the
/// component's variables).
#[allow(clippy::expect_used)]
pub fn component_query(q: &ConjunctiveQuery, atom_indices: &[usize]) -> ConjunctiveQuery {
    let atoms: Vec<Atom> = atom_indices.iter().map(|&i| q.atoms()[i].clone()).collect();
    let mut vars: Vec<Var> = Vec::new();
    for a in &atoms {
        for v in a.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    let head: Vec<Var> = q
        .head()
        .iter()
        .copied()
        .filter(|h| vars.contains(h))
        .collect();
    let preds = q
        .preds()
        .iter()
        .filter(|p| vars.contains(&p.var))
        .cloned()
        .collect();
    ConjunctiveQuery::new(
        format!("{}_comp", q.name()),
        head,
        atoms,
        preds,
        q.var_names().to_vec(),
        &crate::gchq::schema_for(q),
    )
    // audit: allow(R2: a connected component of a valid query stays valid)
    .expect("component of a valid query is valid")
}

/// Structurally reduce a full query's atoms: drop constant positions,
/// collapse repeated variables within an atom, and drop hanging-variable
/// positions (keeping unary atoms intact), to fixpoint. Returns the reduced
/// atoms as variable lists.
fn structural_reduce(q: &ConjunctiveQuery) -> Vec<Vec<Var>> {
    let mut atoms: Vec<Vec<Var>> = q
        .atoms()
        .iter()
        .map(|a| a.terms.iter().filter_map(Term::as_var).collect())
        .collect();
    // Collapse repeats within atoms.
    for vs in &mut atoms {
        let mut seen: Vec<Var> = Vec::new();
        vs.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(*v);
                true
            }
        });
    }
    // Drop hanging positions to fixpoint (dropping can make new vars hang
    // only via the unary guard, but iterate anyway for clarity).
    loop {
        let mut counts: std::collections::HashMap<Var, usize> = std::collections::HashMap::new();
        for vs in &atoms {
            for v in vs {
                *counts.entry(*v).or_insert(0) += 1;
            }
        }
        let mut changed = false;
        for vs in &mut atoms {
            if vs.len() >= 2 {
                let before = vs.len();
                // In a connected multi-atom query every atom keeps at least
                // one join variable, so this never empties an atom.
                vs.retain(|v| counts[v] >= 2);
                if vs.len() != before {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    atoms.retain(|vs| !vs.is_empty());
    atoms
}

/// Whether the reduced atoms admit a generalized-chain order
/// (Definition 3.6 on pure structure).
fn gchq_order_exists(atoms: &[Vec<Var>]) -> bool {
    let n = atoms.len();
    if n <= 1 {
        return true;
    }
    if n > 62 {
        return false;
    }
    let mask_of = |vs: &[Var]| {
        vs.iter()
            .fold(0u128, |m, v| m | (1u128 << (v.0 as usize % 128)))
    };
    let masks: Vec<u128> = atoms.iter().map(|vs| mask_of(vs)).collect();
    let mut dead: std::collections::HashSet<u64> = std::collections::HashSet::new();
    fn rec(
        n: usize,
        masks: &[u128],
        used: u64,
        prefix: u128,
        placed: usize,
        dead: &mut std::collections::HashSet<u64>,
    ) -> bool {
        if placed == n {
            return true;
        }
        if dead.contains(&used) {
            return false;
        }
        for next in 0..n {
            if used & (1 << next) != 0 {
                continue;
            }
            let new_used = used | (1 << next);
            let new_prefix = prefix | masks[next];
            let mut suffix = 0u128;
            for (j, m) in masks.iter().enumerate() {
                if new_used & (1 << j) == 0 {
                    suffix |= m;
                }
            }
            let ok = placed + 1 == n || (new_prefix & suffix).count_ones() == 1;
            if ok && rec(n, masks, new_used, new_prefix, placed + 1, dead) {
                return true;
            }
        }
        dead.insert(used);
        false
    }
    rec(n, &masks, 0, 0, 0, &mut dead)
}

/// Whether the reduced atoms form the cycle `C_k` (all binary, every
/// variable in exactly two atoms, single cycle). Returns `k`.
fn cycle_shape(atoms: &[Vec<Var>]) -> Option<usize> {
    let k = atoms.len();
    if k < 2 || atoms.iter().any(|vs| vs.len() != 2) {
        return None;
    }
    let mut counts: std::collections::HashMap<Var, usize> = std::collections::HashMap::new();
    for vs in atoms {
        for v in vs {
            *counts.entry(*v).or_insert(0) += 1;
        }
    }
    if counts.len() != k || counts.values().any(|&c| c != 2) {
        return None;
    }
    // Walk the cycle via shared variables.
    let mut visited = vec![false; k];
    visited[0] = true;
    let mut current = 0usize;
    let mut entry_var = atoms[0][0];
    for _ in 1..k {
        let out_var = if atoms[current][0] == entry_var {
            atoms[current][1]
        } else {
            atoms[current][0]
        };
        let next = (0..k).find(|&j| !visited[j] && atoms[j].contains(&out_var))?;
        visited[next] = true;
        entry_var = out_var;
        current = next;
    }
    // Close the cycle.
    let out_var = if atoms[current][0] == entry_var {
        atoms[current][1]
    } else {
        atoms[current][0]
    };
    (atoms[0].contains(&out_var)).then_some(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{Catalog, CatalogBuilder, Column};
    use qbdp_query::parser::parse_rule;

    fn cat() -> Catalog {
        let col = Column::int_range(0, 3);
        CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y", "Z"], &col)
            .uniform_relation("S", &["X"], &col)
            .uniform_relation("T", &["X"], &col)
            .uniform_relation("U", &["X"], &col)
            .uniform_relation("A", &["X", "Y"], &col)
            .uniform_relation("B", &["X", "Y"], &col)
            .uniform_relation("C", &["X", "Y"], &col)
            .build()
            .unwrap()
    }

    #[test]
    fn h1_is_np_complete() {
        let c = cat();
        let h1 = parse_rule(c.schema(), "H1(x, y, z) :- R(x, y, z), S(x), T(y), U(z)").unwrap();
        assert_eq!(classify(&h1), QueryClass::NpComplete(NpReason::HardShape));
        assert!(!classify(&h1).is_ptime());
    }

    #[test]
    fn h2_is_np_complete() {
        let c = cat();
        let h2 = parse_rule(c.schema(), "H2(x, y) :- S(x), A(x, y), B(x, y)").unwrap();
        assert_eq!(classify(&h2), QueryClass::NpComplete(NpReason::HardShape));
    }

    #[test]
    fn h3_outside_dichotomy() {
        let c = cat();
        let h3 = parse_rule(c.schema(), "H3(x, y) :- S(x), A(x, y), S(y)").unwrap();
        assert_eq!(classify(&h3), QueryClass::OutsideDichotomy);
    }

    #[test]
    fn h4_is_np_complete() {
        let c = cat();
        let h4 = parse_rule(c.schema(), "H4(x) :- A(x, y)").unwrap();
        assert_eq!(
            classify(&h4),
            QueryClass::NpComplete(NpReason::NotFullNotBoolean)
        );
    }

    #[test]
    fn chains_and_stars_are_ptime() {
        let c = cat();
        let path = parse_rule(c.schema(), "Q(x, y, z) :- A(x, y), B(y, z)").unwrap();
        assert_eq!(classify(&path), QueryClass::GeneralizedChain);
        let star = parse_rule(c.schema(), "Q(x, y, z, u) :- A(x, y), B(x, z), R(x, u, u)").unwrap();
        assert_eq!(classify(&star), QueryClass::GeneralizedChain);
        let single = parse_rule(c.schema(), "Q(x, y, z) :- R(x, y, z)").unwrap();
        assert_eq!(classify(&single), QueryClass::GeneralizedChain);
    }

    #[test]
    fn cycles_are_ptime_but_brittle() {
        let c = cat();
        let c2 = parse_rule(c.schema(), "C2(x, y) :- A(x, y), B(y, x)").unwrap();
        assert_eq!(classify(&c2), QueryClass::Cycle(2));
        let c3 = parse_rule(c.schema(), "C3(x, y, z) :- A(x, y), B(y, z), C(z, x)").unwrap();
        assert_eq!(classify(&c3), QueryClass::Cycle(3));
        assert!(classify(&c3).is_ptime());
        // C2 + one unary predicate atom = H2-like ⇒ NP-complete ("brittle").
        let broken = parse_rule(c.schema(), "H(x, y) :- A(x, y), B(y, x), S(x)").unwrap();
        assert_eq!(
            classify(&broken),
            QueryClass::NpComplete(NpReason::HardShape)
        );
    }

    #[test]
    fn boolean_queries_classify_via_fullification() {
        let c = cat();
        let b = parse_rule(c.schema(), "B() :- A(x, y), B(y, z)").unwrap();
        assert_eq!(classify(&b), QueryClass::GeneralizedChain);
        let b_hard = parse_rule(c.schema(), "B() :- R(x, y, z), S(x), T(y), U(z)").unwrap();
        assert_eq!(
            classify(&b_hard),
            QueryClass::NpComplete(NpReason::HardShape)
        );
    }

    #[test]
    fn disconnected_takes_worst() {
        let c = cat();
        let q = parse_rule(c.schema(), "Q(x, u, v) :- S(x), A(u, v), B(u, v), T(u)").unwrap();
        match classify(&q) {
            QueryClass::Disconnected(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(parts.contains(&QueryClass::GeneralizedChain));
                assert!(parts.iter().any(|p| matches!(p, QueryClass::NpComplete(_))));
            }
            other => panic!("expected disconnected, got {other:?}"),
        }
        let easy = parse_rule(c.schema(), "Q(x, u) :- S(x), T(u)").unwrap();
        assert!(classify(&easy).is_ptime());
    }

    #[test]
    fn constants_are_removed_structurally() {
        let c = cat();
        // A(x, 3), B(x, y): dropping the constant position makes A unary —
        // a chain A'(x), B(x, y)... after dropping hanging y: chain ⇒ PTIME.
        let q = parse_rule(c.schema(), "Q(x, y) :- A(x, 3), B(x, y)").unwrap();
        assert_eq!(classify(&q), QueryClass::GeneralizedChain);
    }
}
