//! Price composition across connected components (Proposition 3.14).
//!
//! A disconnected full query is a cartesian product `Q = Q_1 × … × Q_m` of
//! its components, over disjoint relation sets (a shared relation would be
//! a self-join). Then:
//!
//! * if every component has answers, determining `Q` requires determining
//!   every component, and their view sets are disjoint ⇒ the price is the
//!   **sum** of the component prices;
//! * if some component is empty, `Q(D) = ∅`, and `V` determines `Q` iff it
//!   forces *some* component to stay empty in every consistent world. A
//!   component that is nonempty on `D` can never be forced empty (D itself
//!   is a consistent world), so the price is the **min** over the *empty*
//!   components of their prices.
//!
//! For two components this is exactly the four-case formula of
//! Proposition 3.14.

use crate::money::Price;
use qbdp_determinacy::selection::SelectionView;

/// The priced outcome of one component.
#[derive(Clone, Debug)]
pub struct ComponentPrice {
    /// Whether the component's answer on `D` is empty.
    pub empty: bool,
    /// The component's price.
    pub price: Price,
    /// The component's purchased views.
    pub views: Vec<SelectionView>,
}

/// Combine component prices per (the generalization of) Proposition 3.14.
pub fn combine(components: &[ComponentPrice]) -> (Price, Vec<SelectionView>) {
    if components.is_empty() {
        return (Price::ZERO, Vec::new());
    }
    if components.iter().all(|c| !c.empty) {
        let price = components.iter().map(|c| c.price).sum();
        let views = components
            .iter()
            .flat_map(|c| c.views.iter().cloned())
            .collect();
        (price, views)
    } else {
        components
            .iter()
            .filter(|c| c.empty)
            .min_by_key(|c| c.price)
            .map(|c| (c.price, c.views.clone()))
            // The caller's branch guarantees an empty component exists; if
            // that ever breaks, refuse the sale rather than abort.
            .unwrap_or((Price::INFINITE, Vec::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(empty: bool, dollars: u64) -> ComponentPrice {
        ComponentPrice {
            empty,
            price: Price::dollars(dollars),
            views: Vec::new(),
        }
    }

    #[test]
    fn proposition_3_14_cases() {
        // Both nonempty: sum.
        assert_eq!(
            combine(&[comp(false, 3), comp(false, 4)]).0,
            Price::dollars(7)
        );
        // Q1 empty only: p1.
        assert_eq!(
            combine(&[comp(true, 3), comp(false, 4)]).0,
            Price::dollars(3)
        );
        // Q2 empty only: p2.
        assert_eq!(
            combine(&[comp(false, 3), comp(true, 4)]).0,
            Price::dollars(4)
        );
        // Both empty: min.
        assert_eq!(
            combine(&[comp(true, 3), comp(true, 4)]).0,
            Price::dollars(3)
        );
    }

    #[test]
    fn many_components() {
        assert_eq!(
            combine(&[comp(false, 1), comp(false, 2), comp(false, 3)]).0,
            Price::dollars(6)
        );
        assert_eq!(
            combine(&[comp(false, 1), comp(true, 9), comp(true, 2)]).0,
            Price::dollars(2)
        );
        assert_eq!(combine(&[]).0, Price::ZERO);
    }

    #[test]
    fn infinite_components_propagate() {
        let c = ComponentPrice {
            empty: false,
            price: Price::INFINITE,
            views: Vec::new(),
        };
        assert!(combine(&[comp(false, 1), c]).0.is_infinite());
    }
}
