//! The structural fallback behind degraded quotes.
//!
//! When a budget dies before an engine finds *any* determining view set,
//! the engines still owe a sound upper bound. This module computes one
//! without touching the determinacy oracle, in time linear in the price
//! list: for every relation the query mentions, buy the cheapest **full
//! attribute cover** `Σ_{R.X}` (every selection view on one attribute).
//! A full cover pins down the relation's entire content in every possible
//! world — the views partition `R` by the covered attribute's value — so
//! covering each mentioned relation determines *any* monotone query over
//! them (Lemma 3.10's cover branch, applied wholesale). The total is
//! therefore an upper bound on Equation 2; if some mentioned relation has
//! no fully-priced attribute, the fallback is `INFINITE` (nothing is
//! quoted, which is trivially sound).

use crate::money::Price;
use crate::price_points::PriceList;
use qbdp_catalog::{AttrRef, Catalog, FxHashSet, RelId};
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::ast::ConjunctiveQuery;
use qbdp_query::bundle::Bundle;

/// The relations a query bundle mentions.
pub fn relevant_rels(target: &Bundle) -> FxHashSet<RelId> {
    let mut rels: FxHashSet<RelId> = FxHashSet::default();
    for ucq in target.queries() {
        for cq in ucq.disjuncts() {
            for atom in cq.atoms() {
                rels.insert(atom.rel);
            }
        }
    }
    rels
}

/// The relations a single CQ mentions.
pub fn relevant_rels_cq(q: &ConjunctiveQuery) -> FxHashSet<RelId> {
    q.atoms().iter().map(|a| a.rel).collect()
}

/// Cheapest full-attribute cover of every relation in `rels`: a concrete
/// determining purchase for any monotone query over them, hence a sound
/// upper bound on its arbitrage-price. `INFINITE` (with no views) when
/// some relation has no fully-priced attribute.
pub fn structural_cover(
    catalog: &Catalog,
    prices: &PriceList,
    rels: impl IntoIterator<Item = RelId>,
) -> (Price, Vec<SelectionView>) {
    let mut total = Price::ZERO;
    let mut views: Vec<SelectionView> = Vec::new();
    for rel in rels {
        let arity = catalog.schema().relation(rel).arity();
        let best = (0..arity as u32)
            .map(|pos| AttrRef::new(rel, pos))
            .map(|attr| (prices.full_cover_price(catalog, attr), attr))
            .min_by_key(|&(price, _)| price);
        match best {
            Some((price, attr)) if price.is_finite() => {
                total = total.saturating_add(price);
                for v in catalog.column(attr).iter() {
                    views.push(SelectionView::new(attr, v.clone()));
                }
            }
            _ => return (Price::INFINITE, Vec::new()),
        }
    }
    views.sort();
    views.dedup();
    (total, views)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{CatalogBuilder, Column};
    use qbdp_query::parser::parse_rule;

    #[test]
    fn cover_picks_the_cheapest_attribute_per_relation() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .build()
            .unwrap();
        let mut prices = PriceList::new();
        let rx = cat.schema().resolve_attr("R.X").unwrap();
        let ry = cat.schema().resolve_attr("R.Y").unwrap();
        prices.set_attr_uniform(&cat, rx, Price::dollars(5));
        prices.set_attr_uniform(&cat, ry, Price::dollars(2));
        let q = parse_rule(cat.schema(), "Q(x) :- R(x, y)").unwrap();
        let (price, views) = structural_cover(&cat, &prices, relevant_rels_cq(&q));
        assert_eq!(price, Price::dollars(6)); // 3 × $2 on R.Y
        assert_eq!(views.len(), 3);
        assert!(views.iter().all(|v| v.attr == ry));
    }

    #[test]
    fn unpriced_relation_is_infinite() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X"], &col)
            .build()
            .unwrap();
        let mut prices = PriceList::new();
        let rx = cat.schema().resolve_attr("R.X").unwrap();
        prices.set_attr_uniform(&cat, rx, Price::dollars(1));
        let q = parse_rule(cat.schema(), "Q(x) :- R(x), S(x)").unwrap();
        let (price, views) = structural_cover(&cat, &prices, relevant_rels_cq(&q));
        assert!(price.is_infinite());
        assert!(views.is_empty());
    }

    #[test]
    fn cover_genuinely_determines() {
        // Sanity against the oracle: the fallback views determine the query.
        use qbdp_determinacy::selection::{determines_monotone_bundle, ViewSet};
        use qbdp_query::ast::Ucq;
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(
            cat.schema().rel_id("R").unwrap(),
            qbdp_catalog::tuple![0, 1],
        )
        .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let q = parse_rule(cat.schema(), "H4(x) :- R(x, y)").unwrap();
        let bundle = Bundle::single(Ucq::single(q));
        let (price, views) = structural_cover(&cat, &prices, relevant_rels(&bundle));
        assert!(price.is_finite());
        let vs: ViewSet = views.iter().cloned().collect();
        assert!(determines_monotone_bundle(&cat, &d, &vs, &bundle).unwrap());
    }
}
