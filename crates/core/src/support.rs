//! The fundamental query pricing formula (§2.6).
//!
//! The *support* of a query bundle `Q` is the family of price-point subsets
//! whose combined views determine `Q` (Equation 1); the *arbitrage-price*
//! is the cost of the cheapest support (Equation 2):
//!
//! ```text
//! pS_D(Q) = min { p(C) : C ⊆ S,  D ⊢ ⊔C ։ Q }
//! ```
//!
//! By Theorem 2.15, if `S` is consistent this is the **unique** valid,
//! discount-free pricing function, and consistency itself reduces to the
//! finitely many checks `p_i ≤ pS_D(V_i)`.
//!
//! The subset search is exponential in `|S|` (unavoidable in general —
//! Corollary 2.16 places the problem in Σᵖ₂/coNP) and is implemented as
//! branch-and-bound, using the fact that determinacy is monotone in the view
//! set: once a subset determines `Q`, supersets are never cheaper.

use crate::error::PricingError;
use crate::money::Price;
use crate::price_points::PriceSchedule;
use qbdp_catalog::{Catalog, FxHashMap, Instance};
use qbdp_determinacy::bruteforce::determines_bruteforce;
use qbdp_determinacy::restricted::RestrictedError;
use qbdp_determinacy::selection::{determines_monotone_bundle, ViewSet};
use qbdp_query::bundle::Bundle;

/// Result of an arbitrage-price computation.
#[derive(Clone, Debug)]
pub struct SupportResult {
    /// The arbitrage-price `pS_D(Q)`; `INFINITE` when no subset of `S`
    /// determines `Q` (the seller does not sell enough of the data).
    pub price: Price,
    /// Indices (into `schedule.points()`) of the cheapest support found.
    pub support: Vec<usize>,
}

/// Configuration for the subset search.
#[derive(Clone, Copy, Debug)]
pub struct SupportConfig {
    /// Maximum number of price points (the search is `O(2^points)`).
    pub max_points: usize,
    /// Candidate-tuple cap for the brute-force determinacy oracle, used
    /// when some price point's views are general query bundles.
    pub bruteforce_limit: usize,
}

impl Default for SupportConfig {
    fn default() -> Self {
        SupportConfig {
            max_points: 24,
            bruteforce_limit: 18,
        }
    }
}

/// Which determinacy relation prices are computed under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeterminacyRelation {
    /// Instance-based determinacy `D ⊢ V ։ Q` (Definition 2.2).
    #[default]
    Plain,
    /// The restriction `։*` of Proposition 2.24: monotone for monotone
    /// views, so prices never drop under insertions and consistency is
    /// never lost. Prices are ≥ the plain prices (Prop 2.24(c)). The
    /// restricted oracle is brute-force, so this works on tiny instances
    /// only (the §2.7 demonstrations).
    Restricted,
}

/// Compute the arbitrage-price of a query bundle under the **restricted**
/// determinacy relation `։*` (the paper's dynamic-pricing repair,
/// Prop 2.24). See [`arbitrage_price`] for the plain relation.
pub fn arbitrage_price_restricted(
    catalog: &Catalog,
    d: &Instance,
    schedule: &PriceSchedule,
    target: &Bundle,
    config: SupportConfig,
) -> Result<SupportResult, PricingError> {
    arbitrage_price_with(
        catalog,
        d,
        schedule,
        target,
        config,
        DeterminacyRelation::Restricted,
    )
}

/// Compute the arbitrage-price (Equation 2) of a query bundle under a
/// general price schedule.
pub fn arbitrage_price(
    catalog: &Catalog,
    d: &Instance,
    schedule: &PriceSchedule,
    target: &Bundle,
    config: SupportConfig,
) -> Result<SupportResult, PricingError> {
    arbitrage_price_with(
        catalog,
        d,
        schedule,
        target,
        config,
        DeterminacyRelation::Plain,
    )
}

fn arbitrage_price_with(
    catalog: &Catalog,
    d: &Instance,
    schedule: &PriceSchedule,
    target: &Bundle,
    config: SupportConfig,
    relation: DeterminacyRelation,
) -> Result<SupportResult, PricingError> {
    let n = schedule.len();
    if n > config.max_points {
        return Err(PricingError::LimitExceeded(format!(
            "{n} price points exceed the subset-search cap of {}",
            config.max_points
        )));
    }

    // Determinacy oracle over subsets (bitmask), memoized.
    let atomic = schedule.all_atomic();
    let mut memo: FxHashMap<u64, bool> = FxHashMap::default();
    let mut determines = |mask: u64| -> Result<bool, PricingError> {
        if let Some(&r) = memo.get(&mask) {
            return Ok(r);
        }
        let result = match (atomic, relation) {
            (true, DeterminacyRelation::Plain) => {
                let mut vs = ViewSet::new();
                for (i, p) in schedule.points().iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        let pv = p.views.as_viewset(catalog).ok_or_else(|| {
                            PricingError::Internal(
                                "schedule flagged atomic but a point is not".into(),
                            )
                        })?;
                        for v in pv.iter() {
                            vs.insert(v);
                        }
                    }
                }
                determines_monotone_bundle(catalog, d, &vs, target)?
            }
            (true, DeterminacyRelation::Restricted) => {
                let mut vs = ViewSet::new();
                for (i, p) in schedule.points().iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        let pv = p.views.as_viewset(catalog).ok_or_else(|| {
                            PricingError::Internal(
                                "schedule flagged atomic but a point is not".into(),
                            )
                        })?;
                        for v in pv.iter() {
                            vs.insert(v);
                        }
                    }
                }
                let mut all = true;
                for ucq in target.queries() {
                    if !qbdp_determinacy::restricted::determines_restricted(
                        catalog,
                        d,
                        &vs,
                        ucq,
                        config.bruteforce_limit,
                    )
                    .map_err(restricted_err)?
                    {
                        all = false;
                        break;
                    }
                }
                all
            }
            (false, rel) => {
                let mut views = Bundle::empty();
                for (i, p) in schedule.points().iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        views = views.union(&p.views.as_bundle(catalog));
                    }
                }
                match rel {
                    DeterminacyRelation::Plain => {
                        determines_bruteforce(catalog, d, &views, target, config.bruteforce_limit)?
                    }
                    DeterminacyRelation::Restricted => {
                        qbdp_determinacy::restricted::determines_restricted_bundle(
                            catalog,
                            d,
                            &views,
                            target,
                            config.bruteforce_limit,
                        )?
                    }
                }
            }
        };
        memo.insert(mask, result);
        Ok(result)
    };

    // Quick feasibility: does the full schedule determine the target?
    let full_mask: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    if !determines(full_mask)? {
        return Ok(SupportResult {
            price: Price::INFINITE,
            support: Vec::new(),
        });
    }

    // Order points by ascending price so cheap supports are found early.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| schedule.points()[i].price);

    let mut best = Price::INFINITE;
    let mut best_mask = full_mask;

    // DFS include/exclude with cost pruning and early determinacy cuts.
    // `stack`: (next position in `order`, chosen mask, cost).
    let mut stack: Vec<(usize, u64, Price)> = vec![(0, 0, Price::ZERO)];
    while let Some((idx, mask, cost)) = stack.pop() {
        if cost >= best {
            continue;
        }
        if determines(mask)? {
            if cost < best {
                best = cost;
                best_mask = mask;
            }
            continue; // supersets only cost more
        }
        if idx == n {
            continue;
        }
        let point = order[idx];
        // Exclude first (pushed first → explored last), include second.
        stack.push((idx + 1, mask, cost));
        stack.push((
            idx + 1,
            mask | (1 << point),
            cost.saturating_add(schedule.points()[point].price),
        ));
    }

    let mut support: Vec<usize> = (0..n).filter(|i| best_mask & (1 << i) != 0).collect();
    support.sort_unstable();
    Ok(SupportResult {
        price: best,
        support,
    })
}

fn restricted_err(e: RestrictedError) -> PricingError {
    match e {
        RestrictedError::TooLarge(l) => PricingError::LimitExceeded(l.to_string()),
        RestrictedError::Query(q) => PricingError::Query(q),
    }
}

/// A consistency violation: price point `point` is overpriced — it can be
/// obtained for `cheaper` through other points (arbitrage, Theorem 2.15).
#[derive(Clone, Debug)]
pub struct Arbitrage {
    /// Index of the violated price point.
    pub point: usize,
    /// The cheaper arbitrage price.
    pub cheaper: Price,
    /// The support realizing the arbitrage.
    pub via: Vec<usize>,
}

/// Check consistency of a schedule (Theorem 2.15(1)): `S` is consistent iff
/// for every point `(V_i, p_i)`, `p_i ≤ pS_D(V_i)`. Returns all violations
/// (empty ⇒ consistent, and the arbitrage-price is the unique discount-free
/// pricing function, Theorem 2.15(2)).
pub fn find_arbitrage(
    catalog: &Catalog,
    d: &Instance,
    schedule: &PriceSchedule,
    config: SupportConfig,
) -> Result<Vec<Arbitrage>, PricingError> {
    let mut out = Vec::new();
    for (i, point) in schedule.points().iter().enumerate() {
        let target = point.views.as_bundle(catalog);
        let r = arbitrage_price(catalog, d, schedule, &target, config)?;
        if r.price < point.price {
            out.push(Arbitrage {
                point: i,
                cheaper: r.price,
                via: r.support,
            });
        }
    }
    Ok(out)
}

/// `true` iff the schedule admits a valid pricing function on `D`.
pub fn is_consistent(
    catalog: &Catalog,
    d: &Instance,
    schedule: &PriceSchedule,
    config: SupportConfig,
) -> Result<bool, PricingError> {
    Ok(find_arbitrage(catalog, d, schedule, config)?.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::price_points::{AtomicView, PricePoint, ViewDef};
    use qbdp_catalog::{tuple, CatalogBuilder, Column, Value};
    use qbdp_determinacy::selection::SelectionView;
    use qbdp_query::ast::Ucq;
    use qbdp_query::parser::parse_rule;

    fn cat() -> Catalog {
        CatalogBuilder::new()
            .relation("R", &[("X", Column::int_range(0, 2))])
            .relation(
                "S",
                &[
                    ("X", Column::int_range(0, 2)),
                    ("Y", Column::int_range(0, 2)),
                ],
            )
            .build()
            .unwrap()
    }

    fn state_point(c: &Catalog, dotted: &str, v: i64, price: Price) -> PricePoint {
        let attr = c.schema().resolve_attr(dotted).unwrap();
        PricePoint::new(
            format!("{dotted}={v}"),
            ViewDef::Atomic(vec![AtomicView::Selection(SelectionView::new(
                attr,
                Value::Int(v),
            ))]),
            price,
        )
    }

    #[test]
    fn arbitrage_price_prefers_cheapest_support() {
        let c = cat();
        let mut d = c.empty_instance();
        let r = c.schema().rel_id("R").unwrap();
        d.insert(r, tuple![0]).unwrap();
        let mut s = PriceSchedule::new();
        s.add(state_point(&c, "R.X", 0, Price::dollars(2)));
        s.add(state_point(&c, "R.X", 1, Price::dollars(3)));
        s.add(PricePoint::new(
            "ID",
            ViewDef::identity(&c),
            Price::dollars(100),
        ));
        // Target: the whole of R. Cheapest: both R.X selections ($5) beats ID.
        let target = Bundle::single(Ucq::single(
            parse_rule(c.schema(), "QR(x) :- R(x)").unwrap(),
        ));
        let res = arbitrage_price(&c, &d, &s, &target, SupportConfig::default()).unwrap();
        assert_eq!(res.price, Price::dollars(5));
        assert_eq!(res.support, vec![0, 1]);
    }

    #[test]
    fn unsellable_target_is_infinite() {
        let c = cat();
        let d = c.empty_instance();
        let mut s = PriceSchedule::new();
        s.add(state_point(&c, "R.X", 0, Price::dollars(2)));
        // S is not sold at all: a query over S has empty support... except D
        // is empty, so emptiness might still leak. Put a tuple in S to make
        // it genuinely undetermined.
        let mut d = d;
        let srel = c.schema().rel_id("S").unwrap();
        d.insert(srel, tuple![0, 1]).unwrap();
        let target = Bundle::single(Ucq::single(
            parse_rule(c.schema(), "QS(x, y) :- S(x, y)").unwrap(),
        ));
        let res = arbitrage_price(&c, &d, &s, &target, SupportConfig::default()).unwrap();
        assert!(res.price.is_infinite());
    }

    #[test]
    fn consistency_detects_overpriced_bundle() {
        // ID at $100 but the parts sum to $5 → arbitrage against ID.
        let c = cat();
        let d = c.empty_instance();
        let mut s = PriceSchedule::new();
        s.add(state_point(&c, "R.X", 0, Price::dollars(1)));
        s.add(state_point(&c, "R.X", 1, Price::dollars(1)));
        s.add(state_point(&c, "S.X", 0, Price::dollars(1)));
        s.add(state_point(&c, "S.X", 1, Price::dollars(1)));
        s.add(PricePoint::new(
            "ID",
            ViewDef::identity(&c),
            Price::dollars(100),
        ));
        let arb = find_arbitrage(&c, &d, &s, SupportConfig::default()).unwrap();
        assert_eq!(arb.len(), 1);
        assert_eq!(arb[0].point, 4);
        assert_eq!(arb[0].cheaper, Price::dollars(4));
        assert!(!is_consistent(&c, &d, &s, SupportConfig::default()).unwrap());
        // Repricing ID at the parts' price restores consistency.
        let mut s2 = PriceSchedule::new();
        for p in s.points().iter().take(4).cloned() {
            s2.add(p);
        }
        s2.add(PricePoint::new(
            "ID",
            ViewDef::identity(&c),
            Price::dollars(4),
        ));
        assert!(is_consistent(&c, &d, &s2, SupportConfig::default()).unwrap());
    }

    #[test]
    fn example_2_18_dynamic_inconsistency() {
        // S1 = {(V, $1), (Q, $10), (ID, $100)} with V(x,y) = R(x), S(x,y) and
        // Q() = ∃x R(x): consistent on D1 = ∅, inconsistent on
        // D2 = {R(0), S(0,1)} (buy V for $1, learn Q, dodge its $10 price).
        let c = cat();
        let v = parse_rule(c.schema(), "V(x, y) :- R(x), S(x, y)").unwrap();
        let q = parse_rule(c.schema(), "Q() :- R(x)").unwrap();
        let mut s = PriceSchedule::new();
        s.add(PricePoint::new(
            "V",
            ViewDef::Queries(Bundle::single(Ucq::single(v))),
            Price::dollars(1),
        ));
        s.add(PricePoint::new(
            "Q",
            ViewDef::Queries(Bundle::single(Ucq::single(q))),
            Price::dollars(10),
        ));
        s.add(PricePoint::new(
            "ID",
            ViewDef::identity(&c),
            Price::dollars(100),
        ));
        let d1 = c.empty_instance();
        assert!(is_consistent(&c, &d1, &s, SupportConfig::default()).unwrap());
        let mut d2 = c.empty_instance();
        d2.insert(c.schema().rel_id("R").unwrap(), tuple![0])
            .unwrap();
        d2.insert(c.schema().rel_id("S").unwrap(), tuple![0, 1])
            .unwrap();
        let arb = find_arbitrage(&c, &d2, &s, SupportConfig::default()).unwrap();
        assert_eq!(arb.len(), 1);
        assert_eq!(arb[0].point, 1); // Q is the violated point
        assert_eq!(arb[0].cheaper, Price::dollars(1)); // via V
        assert_eq!(arb[0].via, vec![0]);
    }
}
