#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! # qbdp-core — the query-based pricing framework (PODS 2012)
//!
//! This crate implements the primary contribution of *Koutris, Upadhyaya,
//! Balazinska, Howe, Suciu: "Query-Based Data Pricing"*: given a database
//! instance and a set of explicit price points on views, derive the unique
//! arbitrage-free, discount-free price of **any** query (the
//! *arbitrage-price*, Equation 2).
//!
//! Layout, mirroring the paper:
//!
//! * [`money`] — exact fixed-point prices;
//! * [`price_points`] — the seller's explicit price points: the general
//!   framework's bundles-of-views schedule (§2.4) and the practical
//!   per-selection-view price list (§3);
//! * [`support`] — the fundamental formula: supports (Eq. 1), the
//!   arbitrage-price (Eq. 2), and consistency (Theorem 2.15);
//! * [`consistency`] — the instance-independent consistency test for
//!   selection-view price lists (Proposition 3.2);
//! * [`exact`] — two independent exact pricing engines (subset
//!   branch-and-bound over Eq. 2; weighted hitting set over determinacy
//!   certificates) used for NP-hard queries and as ground truth;
//! * [`gchq`] + [`normalize`] + [`chain`] — the main PTIME algorithm
//!   (Theorem 3.7): GChQ recognition, Steps 1–3, and the Step 4 reduction
//!   to Min-Cut;
//! * [`cycle`] — cycle queries `C_k` (Theorem 3.15);
//! * [`boolean`] — boolean queries (dichotomy case 3);
//! * [`disconnected`] — price composition across connected components
//!   (Proposition 3.14);
//! * [`dichotomy`] — the PTIME / NP-complete classifier (Theorem 3.16);
//! * [`pricer`] — the façade that dispatches a query to the right engine
//!   and returns a [`pricer::Quote`];
//! * [`dynamic`] — updates, consistency preservation, and price
//!   monotonicity (§2.7);
//! * [`budget`] + [`degrade`] — resource governance: fuel/deadline budgets
//!   checked cooperatively inside every engine, and the sound degraded
//!   quotes (upper bound + lower bound) returned when a budget runs out;
//! * [`batch`] — parallel batch pricing: a scoped worker pool (shared
//!   injector, per-worker Dinic arenas, fuel split across jobs) that
//!   prices many bundles concurrently with per-job panic containment;
//! * [`plan_cache`] — the incremental pricing engine: a shape-keyed cache
//!   of normalized plans + solved flow networks, repriced by residual
//!   warm starts so repeated query shapes under changed price vectors pay
//!   only the min-cut delta (bit-identical to cold pricing).

pub mod batch;
pub mod boolean;
pub mod budget;
pub mod chain;
pub mod consistency;
pub mod cycle;
pub mod degrade;
pub mod dichotomy;
pub mod disconnected;
pub mod dynamic;
pub mod error;
pub mod exact;
pub mod fault;
pub mod gchq;
pub mod money;
pub mod normalize;
pub mod plan_cache;
pub mod price_points;
pub mod pricer;
pub mod support;

pub use budget::{Budget, QuoteQuality};
pub use error::PricingError;
pub use money::Price;
pub use plan_cache::{query_footprint, shape_key, PlanCache, PlanStats};
pub use price_points::{PriceList, PricePoint, PriceSchedule, ViewDef};
pub use pricer::{Pricer, PricingMethod, Quote};
