//! Pricing boolean queries (dichotomy case 3).
//!
//! A boolean `Q` asks only whether any satisfying assignment exists, so
//! instance-based determinacy splits on `Q(D)`:
//!
//! * **`Q(D)` true**: `V` determines `Q` iff it *secures* at least one
//!   witness — every base tuple of some satisfying assignment is covered
//!   (then every consistent world contains that witness). Otherwise, for
//!   each witness remove one uncovered tuple: the resulting world is
//!   consistent and makes `Q` false. The price is therefore the minimum,
//!   over satisfying assignments, of the cheapest cover of the witness's
//!   tuples (a tiny set-cover, since atoms are few).
//! * **`Q(D)` false**: `V` must certify emptiness — exactly the non-answer
//!   certificates of the *fullified* query `Q_f`, whose answer on `D` is
//!   empty. So `p(Q) = p(Q_f)`, and `Q_f` is priced by whatever engine its
//!   class warrants (flow for GChQ shapes — this is why the dichotomy says
//!   boolean queries inherit `Q_f`'s complexity).

use crate::error::PricingError;
use crate::exact::hitting_set::solve_hitting_set;
use crate::money::Price;
use crate::price_points::PriceList;
use qbdp_catalog::{AttrRef, Catalog, Instance};
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::ast::{ConjunctiveQuery, Term};
use qbdp_query::eval::satisfying_assignments;

/// The witness-cover price for a boolean query that is **true** on `D`:
/// min over satisfying assignments of the cheapest full cover of the
/// witness's base tuples. Returns the price and the views.
pub fn secure_witness_price(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    q: &ConjunctiveQuery,
) -> Result<(Price, Vec<SelectionView>), PricingError> {
    let _ = catalog; // witness tuples are within columns by the inclusion constraint
    let vars = q.body_vars();
    let assignments = satisfying_assignments(q, d)?;
    let mut best = Price::INFINITE;
    let mut best_views: Vec<SelectionView> = Vec::new();
    for assignment in assignments {
        // Instantiate the witness.
        #[allow(clippy::expect_used)]
        let value_of = |v: qbdp_query::ast::Var| {
            // audit: allow(R2: assignments are generated over exactly these vars)
            let i = vars.iter().position(|&w| w == v).expect("body var");
            assignment.get(i).clone()
        };
        // Candidate views and per-tuple constraints for a tiny set cover
        // (views can be shared across tuples when the query has self-joins).
        let mut elements: Vec<SelectionView> = Vec::new();
        let mut weights: Vec<Price> = Vec::new();
        let mut constraints: Vec<Vec<u32>> = Vec::new();
        let mut feasible = true;
        for atom in q.atoms() {
            let tuple: Vec<_> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => value_of(*v),
                })
                .collect();
            let mut constraint = Vec::new();
            for (pos, value) in tuple.iter().enumerate() {
                let view = SelectionView::new(AttrRef::new(atom.rel, pos as u32), value.clone());
                let price = prices.get(&view);
                if price.is_finite() {
                    let id = match elements.iter().position(|e| *e == view) {
                        Some(i) => i as u32,
                        None => {
                            elements.push(view);
                            weights.push(price);
                            (elements.len() - 1) as u32
                        }
                    };
                    constraint.push(id);
                }
            }
            if constraint.is_empty() {
                feasible = false;
                break;
            }
            constraints.push(constraint);
        }
        if !feasible {
            continue;
        }
        let hs = solve_hitting_set(&weights, &constraints);
        if hs.weight < best {
            best = hs.weight;
            best_views = hs
                .chosen
                .iter()
                .map(|&i| elements[i as usize].clone())
                .collect();
        }
    }
    Ok((best, best_views))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{tuple, CatalogBuilder, Column, Value};
    use qbdp_query::parser::parse_rule;

    #[test]
    fn cheapest_witness_wins() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        d.insert_all(r, [tuple![0], tuple![1]]).unwrap();
        d.insert_all(s, [tuple![0, 2], tuple![1, 1]]).unwrap();
        let mut prices = PriceList::uniform(&cat, Price::dollars(5));
        // Make witness (x=1, y=1) cheap: σ_{R.X=1} $1, σ_{S.Y=1} $1.
        let rx = cat.schema().resolve_attr("R.X").unwrap();
        let sy = cat.schema().resolve_attr("S.Y").unwrap();
        prices.set(SelectionView::new(rx, Value::Int(1)), Price::dollars(1));
        prices.set(SelectionView::new(sy, Value::Int(1)), Price::dollars(1));
        let q = parse_rule(cat.schema(), "B() :- R(x), S(x, y)").unwrap();
        let (price, views) = secure_witness_price(&cat, &d, &prices, &q).unwrap();
        assert_eq!(price, Price::dollars(2));
        assert_eq!(views.len(), 2);
    }

    #[test]
    fn unpriced_witness_tuples_skip_assignment() {
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        d.insert_all(r, [tuple![0], tuple![1]]).unwrap();
        let mut prices = PriceList::new();
        let rx = cat.schema().resolve_attr("R.X").unwrap();
        // Only R.X=1 is priced: witness x=0 is unsecurable, x=1 costs $4.
        prices.set(SelectionView::new(rx, Value::Int(1)), Price::dollars(4));
        let q = parse_rule(cat.schema(), "B() :- R(x)").unwrap();
        let (price, _) = secure_witness_price(&cat, &d, &prices, &q).unwrap();
        assert_eq!(price, Price::dollars(4));
        // Nothing priced at all ⇒ infinite.
        let (price, _) = secure_witness_price(&cat, &d, &PriceList::new(), &q).unwrap();
        assert!(price.is_infinite());
    }

    #[test]
    fn self_join_shares_views_across_witness_tuples() {
        // B() :- E(x, y), E(y, x) with witness (0, 0): one tuple E(0,0),
        // a single view suffices even though two atoms mention it.
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("E", &["X", "Y"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("E").unwrap(), tuple![0, 0])
            .unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(3));
        let q = parse_rule(cat.schema(), "B() :- E(x, y), E(y, x)").unwrap();
        let (price, views) = secure_witness_price(&cat, &d, &prices, &q).unwrap();
        assert_eq!(price, Price::dollars(3));
        assert_eq!(views.len(), 1);
    }
}
