//! Exact (exponential-time) pricing engines.
//!
//! Two independent implementations of the arbitrage-price for the
//! selection-view setting, used (1) to price the NP-complete queries of
//! Theorem 3.5 on small instances, and (2) as ground truth for
//! property-testing the PTIME algorithms:
//!
//! * [`subset`] — literal Equation 2: branch-and-bound over subsets of the
//!   priced views, with the Theorem 3.3 determinacy oracle. Applies to
//!   **any** monotone query (UCQs, projections, bundles).
//! * [`certificates`] + [`hitting_set`] — for full CQs: determinacy is
//!   characterized by a family of covering constraints (one per critical
//!   present tuple and one per excludable non-answer assignment), and pricing becomes
//!   a weighted hitting set, solved exactly by branch-and-bound.

pub mod certificates;
pub mod hitting_set;
pub mod subset;

pub use certificates::{build_certificates, CertificateSystem};
pub use hitting_set::{solve_hitting_set, HittingSetResult};
pub use subset::{subset_price, ExactResult, SubsetConfig};
