//! Exact weighted hitting set by branch-and-bound.
//!
//! Pricing a full CQ is a minimum-weight hitting set over its determinacy
//! certificates ([`crate::exact::certificates`]). The general problem is
//! NP-hard — necessarily so, by Theorem 3.5 — but branch-and-bound with a
//! greedy upper bound and a disjoint-constraint lower bound handles the
//! instance sizes the exact engine is used for.

use crate::budget::Budget;
use crate::money::Price;

/// Result of a hitting-set computation.
#[derive(Clone, Debug)]
pub struct HittingSetResult {
    /// Total weight of the chosen elements (`INFINITE` iff some constraint
    /// is empty, i.e. unhittable — or the budget died before any hitting
    /// set was in hand).
    pub weight: Price,
    /// Chosen element indices, ascending.
    pub chosen: Vec<u32>,
    /// `false` when the budget ran out mid-search: `chosen` is still a
    /// valid hitting set (so `weight` over-estimates the optimum) but may
    /// not be minimum.
    pub complete: bool,
    /// Sound lower bound on the optimum (`weight` itself when `complete`;
    /// the root disjoint-constraint bound otherwise).
    pub lower_bound: Price,
}

impl HittingSetResult {
    fn exact(weight: Price, chosen: Vec<u32>) -> HittingSetResult {
        HittingSetResult {
            weight,
            chosen,
            complete: true,
            lower_bound: weight,
        }
    }
}

/// Solve min-weight hitting set exactly.
///
/// `weights[e]` is element `e`'s weight; each constraint is a set of
/// element indices of which at least one must be chosen. Zero-weight
/// elements are taken greedily up front (they can never hurt).
pub fn solve_hitting_set(weights: &[Price], constraints: &[Vec<u32>]) -> HittingSetResult {
    solve_hitting_set_within(weights, constraints, &Budget::unlimited())
}

/// [`solve_hitting_set`] under a [`Budget`]. On exhaustion the result's
/// `complete` flag drops and `chosen` is the best hitting set confirmed so
/// far (the greedy seed or better) — every intermediate `best_set` is a
/// genuine hitting set, so the weight stays a sound over-estimate.
pub fn solve_hitting_set_within(
    weights: &[Price],
    constraints: &[Vec<u32>],
    budget: &Budget,
) -> HittingSetResult {
    // Freebies first.
    let mut chosen: Vec<u32> = (0..weights.len() as u32)
        .filter(|&e| weights[e as usize] == Price::ZERO)
        .collect();
    let mut open: Vec<&Vec<u32>> = constraints
        .iter()
        .filter(|c| !c.iter().any(|e| weights[*e as usize] == Price::ZERO))
        .collect();
    if open.iter().any(|c| c.is_empty()) {
        return HittingSetResult::exact(Price::INFINITE, Vec::new());
    }
    if open.is_empty() {
        return HittingSetResult::exact(Price::ZERO, chosen);
    }
    // Sort so that small constraints branch first.
    open.sort_by_key(|c| c.len());

    // Sound lower bound independent of how far the search gets.
    let root_lb = disjoint_lower_bound(weights, &open);

    // Greedy upper bound: repeatedly take the element hitting the most open
    // constraints per unit weight. Metered — on a dead budget `best` stays
    // INFINITE ("no hitting set in hand") and the search is skipped.
    let (mut best, mut best_set, greedy_complete) = greedy_solution(weights, &open, budget);
    let interrupted = if greedy_complete {
        let mut state = Search {
            weights,
            best: &mut best,
            best_set: &mut best_set,
            budget,
            interrupted: false,
        };
        state.branch(&open, &mut Vec::new(), Price::ZERO);
        state.interrupted
    } else {
        true
    };

    chosen.extend(best_set);
    chosen.sort_unstable();
    chosen.dedup();
    if interrupted {
        HittingSetResult {
            weight: best,
            chosen,
            complete: false,
            lower_bound: root_lb.min(best),
        }
    } else {
        HittingSetResult::exact(best, chosen)
    }
}

fn greedy_solution(
    weights: &[Price],
    open: &[&Vec<u32>],
    budget: &Budget,
) -> (Price, Vec<u32>, bool) {
    let mut unhit: Vec<&Vec<u32>> = open.to_vec();
    let mut total = Price::ZERO;
    let mut picked: Vec<u32> = Vec::new();
    while !unhit.is_empty() {
        if !budget.charge(1 + unhit.len() as u64) {
            // No complete hitting set in hand: the partial pick hits only
            // some constraints, so it is not a sound upper bound.
            return (Price::INFINITE, Vec::new(), false);
        }
        // Element covering the most constraints, weight as tiebreak.
        // Counts live in an element-indexed vector and the scan below
        // keeps the first (lowest-id) element on a tied score, so the
        // greedy pick — and through it the quoted view set on a price
        // tie — is deterministic across runs and market instances (a
        // hash map here let the RandomState seed choose the witness).
        let mut counts: Vec<usize> = vec![0; weights.len()];
        // audit: bounded(constraint scan is pre-charged by this round's charge(1 + unhit.len()))
        for c in &unhit {
            // audit: bounded(element lists are fixed at build time, one scan per charged round)
            for &e in *c {
                counts[e as usize] += 1;
            }
        }
        let mut pick: Option<u32> = None;
        // audit: bounded(one scan of the element-count vector, pre-charged above)
        for (i, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // score = count / weight; compare count * w_other.
            let better = match pick {
                None => true,
                Some(p) => {
                    let wi = weights[i].as_cents().max(1) as u128;
                    let wp = weights[p as usize].as_cents().max(1) as u128;
                    (count as u128) * wp > (counts[p as usize] as u128) * wi
                }
            };
            if better {
                pick = Some(i as u32);
            }
        }
        let Some(e) = pick else {
            // An element-free constraint is unhittable: no finite cover.
            return (Price::INFINITE, Vec::new(), false);
        };
        total = total.saturating_add(weights[e as usize]);
        picked.push(e);
        unhit.retain(|c| !c.contains(&e));
    }
    (total, picked, true)
}

/// Greedily collect pairwise-disjoint constraints and sum their cheapest
/// elements — a sound lower bound on any hitting set's weight.
fn disjoint_lower_bound(weights: &[Price], open: &[&Vec<u32>]) -> Price {
    let mut used: Vec<u32> = Vec::new();
    let mut bound = Price::ZERO;
    for c in open {
        if c.iter().any(|e| used.contains(e)) {
            continue;
        }
        let min = c
            .iter()
            .map(|&e| weights[e as usize])
            .min()
            .unwrap_or(Price::ZERO);
        bound = bound.saturating_add(min);
        used.extend(c.iter().copied());
    }
    bound
}

struct Search<'a> {
    weights: &'a [Price],
    best: &'a mut Price,
    best_set: &'a mut Vec<u32>,
    budget: &'a Budget,
    interrupted: bool,
}

impl Search<'_> {
    /// Lower bound: greedily collect pairwise-disjoint open constraints and
    /// sum their cheapest elements.
    fn lower_bound(&self, open: &[&Vec<u32>]) -> Price {
        disjoint_lower_bound(self.weights, open)
    }

    fn branch(&mut self, open: &[&Vec<u32>], chosen: &mut Vec<u32>, cost: Price) {
        if self.interrupted {
            return;
        }
        if !self.budget.charge(1 + open.len() as u64) {
            self.interrupted = true;
            return;
        }
        if open.is_empty() {
            if cost < *self.best {
                *self.best = cost;
                *self.best_set = chosen.clone();
            }
            return;
        }
        if cost.saturating_add(self.lower_bound(open)) >= *self.best {
            return;
        }
        // Branch on the smallest open constraint.
        let pivot = match open.iter().min_by_key(|c| c.len()) {
            Some(p) => p,
            None => return,
        };
        for &e in pivot.iter() {
            if self.interrupted {
                return;
            }
            chosen.push(e);
            let remaining: Vec<&Vec<u32>> =
                open.iter().filter(|c| !c.contains(&e)).copied().collect();
            self.branch(
                &remaining,
                chosen,
                cost.saturating_add(self.weights[e as usize]),
            );
            chosen.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dollars(ws: &[u64]) -> Vec<Price> {
        ws.iter().map(|&w| Price::dollars(w)).collect()
    }

    #[test]
    fn single_constraint_takes_cheapest() {
        let w = dollars(&[5, 3, 9]);
        let r = solve_hitting_set(&w, &[vec![0, 1, 2]]);
        assert_eq!(r.weight, Price::dollars(3));
        assert_eq!(r.chosen, vec![1]);
    }

    #[test]
    fn overlapping_constraints_share_elements() {
        // {0,1}, {1,2}: element 1 hits both.
        let w = dollars(&[2, 3, 2]);
        let r = solve_hitting_set(&w, &[vec![0, 1], vec![1, 2]]);
        assert_eq!(r.weight, Price::dollars(3));
        assert_eq!(r.chosen, vec![1]);
        // Make 1 expensive: now {0, 2} at $4 wins.
        let w = dollars(&[2, 10, 2]);
        let r = solve_hitting_set(&w, &[vec![0, 1], vec![1, 2]]);
        assert_eq!(r.weight, Price::dollars(4));
        assert_eq!(r.chosen, vec![0, 2]);
    }

    #[test]
    fn empty_constraint_is_infeasible() {
        let w = dollars(&[1]);
        let r = solve_hitting_set(&w, &[vec![0], vec![]]);
        assert!(r.weight.is_infinite());
    }

    #[test]
    fn no_constraints_is_free() {
        let w = dollars(&[1, 2]);
        let r = solve_hitting_set(&w, &[]);
        assert_eq!(r.weight, Price::ZERO);
        assert!(r.chosen.is_empty());
    }

    #[test]
    fn zero_weight_elements_taken_free() {
        let mut w = dollars(&[4, 7]);
        w.push(Price::ZERO); // element 2
        let r = solve_hitting_set(&w, &[vec![0, 2], vec![1, 2]]);
        assert_eq!(r.weight, Price::ZERO);
        assert_eq!(r.chosen, vec![2]);
    }

    #[test]
    fn vertex_cover_instance() {
        // Path graph a-b-c-d as vertex cover: constraints = edges.
        // Unit weights: optimal cover {b, c} of size 2.
        let w = dollars(&[1, 1, 1, 1]);
        let r = solve_hitting_set(&w, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert_eq!(r.weight, Price::dollars(2));
    }

    #[test]
    fn matches_bruteforce_on_random_instances() {
        let mut state = 0xc0ffee123u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..60 {
            let n = 3 + (next() % 8) as usize; // elements
            let m = 1 + (next() % 10) as usize; // constraints
            let weights: Vec<Price> = (0..n).map(|_| Price::cents(1 + next() % 50)).collect();
            let constraints: Vec<Vec<u32>> = (0..m)
                .map(|_| {
                    let size = 1 + (next() % 3) as usize;
                    let mut c: Vec<u32> = (0..size).map(|_| (next() % n as u64) as u32).collect();
                    c.sort_unstable();
                    c.dedup();
                    c
                })
                .collect();
            let fast = solve_hitting_set(&weights, &constraints);
            // Brute force over all subsets.
            let mut best = Price::INFINITE;
            for mask in 0u64..(1 << n) {
                if constraints
                    .iter()
                    .all(|c| c.iter().any(|&e| mask & (1 << e) != 0))
                {
                    let w: Price = (0..n)
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| weights[i])
                        .sum();
                    best = best.min(w);
                }
            }
            assert_eq!(fast.weight, best);
            // Verify the returned set actually hits everything.
            if fast.weight.is_finite() {
                for c in &constraints {
                    assert!(c.iter().any(|e| fast.chosen.contains(e)));
                }
            }
        }
    }
}
