//! Determinacy certificates for full conjunctive queries.
//!
//! For a **full** CQ `Q` (every variable in the head — so each assignment
//! has a *unique* witness) and selection views `V ⊆ Σ`, instance-based
//! determinacy has an exact combinatorial characterization, which is the
//! invariant behind the paper's flow construction (§3.1):
//!
//! `D ⊢ V ։ Q` iff
//!
//! * **(a)** for every answer `ū ∈ Q(D)`, *every* base tuple of its witness
//!   is covered by some view of `V` (else the world `D ∖ {t}` is consistent
//!   and loses the answer), and
//! * **(b)** for every non-answer assignment `ū` over the variables'
//!   columns, at least one *missing* witness tuple is covered (else the
//!   world `D ∪ missing` is consistent and gains the answer).
//!
//! Pricing is then the minimum-weight set of priced views hitting every
//! constraint — a weighted hitting set ([`crate::exact::hitting_set`]).
//! Constraint (b) enumerates `∏ |Col_x|` assignments, polynomial in data
//! complexity but exponential in the (fixed) variable count; the NP-hardness
//! of Theorem 3.5 lives in the hitting set itself, not in this enumeration.

use crate::budget::Budget;
use crate::degrade::{relevant_rels_cq, structural_cover};
use crate::error::PricingError;
use crate::exact::ExactResult;
use crate::money::Price;
use crate::price_points::PriceList;
use qbdp_catalog::{AttrRef, Catalog, Column, FxHashMap, FxHashSet, Instance, Tuple, Value};
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::analysis;
use qbdp_query::ast::{ConjunctiveQuery, Term, Var};

/// A hitting-set instance derived from a pricing problem.
#[derive(Clone, Debug)]
pub struct CertificateSystem {
    /// The purchasable views (finite price), dense-indexed.
    pub elements: Vec<SelectionView>,
    /// Element weights (aligned with `elements`).
    pub weights: Vec<Price>,
    /// Constraints: each is a set of element indices, at least one of which
    /// must be bought. Deduplicated; supersets removed.
    pub constraints: Vec<Vec<u32>>,
    /// `true` if some constraint is unhittable (no finite-priced view),
    /// i.e. the price is `INFINITE` outright.
    pub infeasible: bool,
    /// `false` when a budget ran out before every assignment was
    /// enumerated. A partial system's constraints are a *subset* of the
    /// truth, so its hitting-set optimum only **lower-bounds** the price
    /// (an `infeasible` verdict stays conclusive either way).
    pub complete: bool,
}

/// Configuration for certificate generation.
#[derive(Clone, Copy, Debug)]
pub struct CertificateConfig {
    /// Cap on `∏ |Col_x|`, the number of enumerated assignments.
    pub max_assignments: usize,
}

impl Default for CertificateConfig {
    fn default() -> Self {
        CertificateConfig {
            max_assignments: 2_000_000,
        }
    }
}

/// Build the certificate system for a full CQ (self-joins allowed;
/// interpreted predicates restrict the assignment space).
pub fn build_certificates(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    q: &ConjunctiveQuery,
    config: CertificateConfig,
) -> Result<CertificateSystem, PricingError> {
    build_certificates_within(catalog, d, prices, q, config, &Budget::unlimited())
}

/// [`build_certificates`] under a [`Budget`]. A limited budget replaces
/// the assignment cap (and its `LimitExceeded` error) with metered
/// enumeration: one charge per assignment, and on exhaustion the system
/// built so far is returned with `complete = false`. An `infeasible`
/// verdict short-circuits immediately — one genuinely unhittable
/// constraint already proves the price `INFINITE`.
pub fn build_certificates_within(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    q: &ConjunctiveQuery,
    config: CertificateConfig,
    budget: &Budget,
) -> Result<CertificateSystem, PricingError> {
    if !analysis::is_full(q) {
        return Err(PricingError::NotApplicable(
            "certificates require a full conjunctive query".into(),
        ));
    }

    // Variable columns: intersection of the columns of every position the
    // variable occupies, filtered by its interpreted predicates.
    let vars = q.body_vars();
    let occ = analysis::var_occurrences(q);
    let mut var_cols: FxHashMap<Var, Column> = FxHashMap::default();
    for &v in &vars {
        let positions = &occ[&v];
        let mut col: Option<Column> = None;
        for &(ai, pos) in positions {
            let attr = AttrRef::new(q.atoms()[ai].rel, pos as u32);
            let c = catalog.column(attr);
            col = Some(match col {
                None => c.clone(),
                Some(prev) => prev.intersect(c),
            });
        }
        let mut col = col.ok_or_else(|| {
            PricingError::Internal(format!("body variable {v:?} has no atom occurrence"))
        })?;
        for p in q.preds() {
            if p.var == v {
                let pred = p.pred.clone();
                let mut err = None;
                col = col.filter(|val| match pred.eval(val) {
                    Ok(b) => b,
                    Err(e) => {
                        err = Some(e);
                        false
                    }
                });
                if let Some(e) = err {
                    return Err(e.into());
                }
            }
        }
        var_cols.insert(v, col);
    }

    let total: usize = vars
        .iter()
        .map(|v| var_cols[v].len())
        .try_fold(1usize, usize::checked_mul)
        .unwrap_or(usize::MAX);
    if total > config.max_assignments && !budget.is_limited() {
        // A limited budget meters the enumeration itself instead of
        // erroring on a size estimate.
        return Err(PricingError::LimitExceeded(format!(
            "{total} assignments exceed the certificate cap of {}",
            config.max_assignments
        )));
    }

    // Purchasable views on the query's attributes, dense-indexed.
    let mut elements: Vec<SelectionView> = Vec::new();
    let mut weights: Vec<Price> = Vec::new();
    let mut elem_id: FxHashMap<(AttrRef, Value), u32> = FxHashMap::default();
    let mut attrs_seen: FxHashSet<AttrRef> = FxHashSet::default();
    for atom in q.atoms() {
        for pos in 0..atom.terms.len() {
            let attr = AttrRef::new(atom.rel, pos as u32);
            if !attrs_seen.insert(attr) {
                continue;
            }
            for (value, price) in prices.views_on(attr) {
                if price.is_finite() {
                    let id = elements.len() as u32;
                    elements.push(SelectionView::new(attr, value.clone()));
                    weights.push(price);
                    elem_id.insert((attr, value.clone()), id);
                }
            }
        }
    }

    // The views covering one witness tuple: one candidate per position.
    let covering = |rel: qbdp_catalog::RelId, t: &Tuple| -> Vec<u32> {
        let mut out = Vec::new();
        for (pos, v) in t.iter().enumerate() {
            if let Some(&id) = elem_id.get(&(AttrRef::new(rel, pos as u32), v.clone())) {
                out.push(id);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    };

    let mut constraints: FxHashSet<Vec<u32>> = FxHashSet::default();
    let mut critical_seen: FxHashSet<(qbdp_catalog::RelId, Tuple)> = FxHashSet::default();
    let mut infeasible = false;

    // Enumerate assignments (odometer over var columns).
    let k = vars.len();
    let cols: Vec<&Column> = vars.iter().map(|v| &var_cols[v]).collect();
    if cols.iter().any(|c| c.is_empty()) {
        // No assignments at all: Q(D') = ∅ in every world — determined by
        // the empty view set, price 0, no constraints.
        return Ok(CertificateSystem {
            elements,
            weights,
            constraints: Vec::new(),
            infeasible: false,
            complete: true,
        });
    }
    let assignment_cost = 1 + q.atoms().len() as u64;
    let mut idx = vec![0u32; k];
    loop {
        if infeasible {
            // One unhittable constraint already proves the price INFINITE;
            // the remaining assignments cannot change that verdict.
            let mut constraints: Vec<Vec<u32>> = constraints.into_iter().collect();
            remove_supersets(&mut constraints, budget);
            return Ok(CertificateSystem {
                elements,
                weights,
                constraints,
                infeasible: true,
                complete: true,
            });
        }
        if !budget.charge(assignment_cost) {
            // Partial system: skip the quadratic superset pruning — the
            // budget is already dead and these constraints only feed a
            // lower bound (supersets never change a hitting-set optimum).
            let constraints: Vec<Vec<u32>> = constraints.into_iter().collect();
            return Ok(CertificateSystem {
                elements,
                weights,
                constraints,
                infeasible: false,
                complete: false,
            });
        }
        // Materialize the witness for this assignment.
        #[allow(clippy::expect_used)]
        let value_of = |v: Var| -> &Value {
            // audit: allow(R2: idx is indexed by exactly these body vars)
            let vi = vars.iter().position(|&w| w == v).expect("body var");
            cols[vi].value_at(idx[vi])
        };
        let mut missing: Vec<u32> = Vec::new();
        let mut is_answer = true;
        let mut witness: Vec<(qbdp_catalog::RelId, Tuple)> = Vec::with_capacity(q.atoms().len());
        for atom in q.atoms() {
            let t = Tuple::new(atom.terms.iter().map(|term| match term {
                Term::Const(c) => c.clone(),
                Term::Var(v) => value_of(*v).clone(),
            }));
            if !d.relation(atom.rel).contains(&t) {
                is_answer = false;
                missing.extend(covering(atom.rel, &t));
            }
            witness.push((atom.rel, t));
        }
        if is_answer {
            // (a): every witness tuple individually covered.
            for (rel, t) in witness {
                if critical_seen.insert((rel, t.clone())) {
                    let c = covering(rel, &t);
                    if c.is_empty() {
                        infeasible = true;
                    } else {
                        constraints.insert(c);
                    }
                }
            }
        } else {
            // (b): some missing tuple covered.
            missing.sort_unstable();
            missing.dedup();
            if missing.is_empty() {
                infeasible = true;
            } else {
                constraints.insert(missing);
            }
        }
        // Odometer.
        let mut pos = k;
        loop {
            if pos == 0 {
                let mut constraints: Vec<Vec<u32>> = constraints.into_iter().collect();
                remove_supersets(&mut constraints, budget);
                return Ok(CertificateSystem {
                    elements,
                    weights,
                    constraints,
                    infeasible,
                    complete: true,
                });
            }
            pos -= 1;
            idx[pos] += 1;
            if (idx[pos] as usize) < cols[pos].len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// Drop constraints that are supersets of another (hitting the subset
/// implies hitting the superset). Quadratic, so it is metered: each probe
/// charges for the comparisons it makes, and once the budget dies the
/// remaining constraints are kept unpruned — supersets never change the
/// hitting-set optimum, so pruning is an optimization, never a soundness
/// step.
fn remove_supersets(constraints: &mut Vec<Vec<u32>>, budget: &Budget) {
    constraints.sort_by_key(Vec::len);
    let mut kept: Vec<Vec<u32>> = Vec::with_capacity(constraints.len());
    let mut metered = true;
    'outer: for c in constraints.drain(..) {
        if metered && !budget.charge(1 + kept.len() as u64) {
            metered = false;
        }
        if metered {
            // audit: bounded(scan of kept is pre-charged by this round's charge(1 + kept.len()))
            for k in &kept {
                if k.iter().all(|e| c.binary_search(e).is_ok()) {
                    continue 'outer;
                }
            }
        }
        kept.push(c);
    }
    *constraints = kept;
}

/// Certificates for a **bundle** of full CQs: by Lemma 2.6(b), `V`
/// determines a bundle iff it determines every member, so the certificate
/// system is the union of the members' systems over a shared element space.
/// Pricing the bundle is then one hitting set — this is how bundle
/// subadditivity (Proposition 2.8) materializes: shared views are paid once.
pub fn build_certificates_bundle(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    queries: &[&ConjunctiveQuery],
    config: CertificateConfig,
) -> Result<CertificateSystem, PricingError> {
    build_certificates_bundle_within(catalog, d, prices, queries, config, &Budget::unlimited())
}

/// [`build_certificates_bundle`] under a [`Budget`]. The system is
/// `complete` only when every member's system is; enumeration stops at the
/// first member cut off by the budget (or proved infeasible).
pub fn build_certificates_bundle_within(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    queries: &[&ConjunctiveQuery],
    config: CertificateConfig,
    budget: &Budget,
) -> Result<CertificateSystem, PricingError> {
    let mut elements: Vec<SelectionView> = Vec::new();
    let mut weights: Vec<Price> = Vec::new();
    let mut ids: FxHashMap<(AttrRef, Value), u32> = FxHashMap::default();
    let mut constraints: FxHashSet<Vec<u32>> = FxHashSet::default();
    let mut infeasible = false;
    let mut complete = true;
    for q in queries {
        let sys = build_certificates_within(catalog, d, prices, q, config, budget)?;
        infeasible |= sys.infeasible;
        complete &= sys.complete;
        // Remap this query's element ids into the shared space.
        let remap: Vec<u32> = sys
            .elements
            .iter()
            .zip(&sys.weights)
            .map(|(view, &w)| {
                *ids.entry((view.attr, view.value.clone()))
                    .or_insert_with(|| {
                        elements.push(view.clone());
                        weights.push(w);
                        (elements.len() - 1) as u32
                    })
            })
            .collect();
        for c in sys.constraints {
            let mut mapped: Vec<u32> = c.iter().map(|&e| remap[e as usize]).collect();
            mapped.sort_unstable();
            constraints.insert(mapped);
        }
        if infeasible || !complete {
            // Infeasibility is already conclusive; an exhausted budget
            // will refuse the remaining members anyway.
            break;
        }
    }
    let mut constraints: Vec<Vec<u32>> = constraints.into_iter().collect();
    remove_supersets(&mut constraints, budget);
    Ok(CertificateSystem {
        elements,
        weights,
        constraints,
        infeasible,
        complete,
    })
}

/// Price a certificate system: hitting set under the budget, with the
/// soundness case analysis. `rels` feeds the structural fallback when the
/// system itself is partial.
fn price_system_within(
    catalog: &Catalog,
    prices: &PriceList,
    sys: &CertificateSystem,
    rels: impl IntoIterator<Item = qbdp_catalog::RelId>,
    budget: &Budget,
) -> ExactResult {
    if sys.infeasible {
        // Conclusive even from a partial system: the unhittable constraint
        // is genuine, so no purchasable view set determines the query.
        return ExactResult::exact(Price::INFINITE, Vec::new());
    }
    let hs =
        crate::exact::hitting_set::solve_hitting_set_within(&sys.weights, &sys.constraints, budget);
    let chosen_views = |chosen: &[u32]| -> Vec<SelectionView> {
        chosen
            .iter()
            .map(|&i| sys.elements[i as usize].clone())
            .collect()
    };
    if sys.complete && hs.complete {
        ExactResult::exact(hs.weight, chosen_views(&hs.chosen))
    } else if sys.complete {
        // Complete system, interrupted search: `chosen` genuinely hits
        // every certificate, hence determines the query — a sound upper
        // bound realized by real views. The structural relation cover is
        // equally sound; sell whichever is cheaper (in particular the
        // cover, when the interrupt left no hitting set in hand at all).
        let (cover, cover_views) = structural_cover(catalog, prices, rels);
        if hs.weight <= cover {
            ExactResult::degraded(hs.weight, chosen_views(&hs.chosen), hs.lower_bound)
        } else {
            ExactResult::degraded(cover, cover_views, hs.lower_bound)
        }
    } else {
        // Partial system: its optimum only lower-bounds the price (missing
        // constraints can only push it up), so the sellable upper bound
        // comes from the structural relation cover.
        let (ub, ub_views) = structural_cover(catalog, prices, rels);
        ExactResult::degraded(ub, ub_views, hs.lower_bound)
    }
}

/// Convenience: bundle certificates + hitting set in one call.
pub fn certificate_price_bundle(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    queries: &[&ConjunctiveQuery],
    config: CertificateConfig,
) -> Result<ExactResult, PricingError> {
    certificate_price_bundle_within(catalog, d, prices, queries, config, &Budget::unlimited())
}

/// [`certificate_price_bundle`] under a [`Budget`].
pub fn certificate_price_bundle_within(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    queries: &[&ConjunctiveQuery],
    config: CertificateConfig,
    budget: &Budget,
) -> Result<ExactResult, PricingError> {
    let sys = build_certificates_bundle_within(catalog, d, prices, queries, config, budget)?;
    let rels: FxHashSet<qbdp_catalog::RelId> = queries
        .iter()
        .flat_map(|q| q.atoms().iter().map(|a| a.rel))
        .collect();
    Ok(price_system_within(catalog, prices, &sys, rels, budget))
}

/// Convenience: certificates + hitting set in one call.
pub fn certificate_price(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    q: &ConjunctiveQuery,
    config: CertificateConfig,
) -> Result<ExactResult, PricingError> {
    certificate_price_within(catalog, d, prices, q, config, &Budget::unlimited())
}

/// [`certificate_price`] under a [`Budget`].
pub fn certificate_price_within(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    q: &ConjunctiveQuery,
    config: CertificateConfig,
    budget: &Budget,
) -> Result<ExactResult, PricingError> {
    let sys = build_certificates_within(catalog, d, prices, q, config, budget)?;
    Ok(price_system_within(
        catalog,
        prices,
        &sys,
        relevant_rels_cq(q),
        budget,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{tuple, CatalogBuilder, Column};
    use qbdp_query::parser::parse_rule;

    fn figure1() -> (Catalog, Instance) {
        let ax = Column::texts(["a1", "a2", "a3", "a4"]);
        let by = Column::texts(["b1", "b2", "b3"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", ax.clone())])
            .relation("S", &[("X", ax), ("Y", by.clone())])
            .relation("T", &[("Y", by)])
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        let t = cat.schema().rel_id("T").unwrap();
        d.insert_all(r, [tuple!["a1"], tuple!["a2"]]).unwrap();
        d.insert_all(
            s,
            [
                tuple!["a1", "b1"],
                tuple!["a1", "b2"],
                tuple!["a2", "b2"],
                tuple!["a4", "b1"],
            ],
        )
        .unwrap();
        d.insert_all(t, [tuple!["b1"], tuple!["b3"]]).unwrap();
        (cat, d)
    }

    #[test]
    fn figure1_certificate_price_is_six() {
        let (cat, d) = figure1();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let res = certificate_price(&cat, &d, &prices, &q, CertificateConfig::default()).unwrap();
        assert_eq!(res.price, Price::dollars(6));
    }

    #[test]
    fn infeasible_when_critical_tuple_unpriced() {
        let (cat, d) = figure1();
        // Remove every view that could cover R(a1) — R is unary so that is
        // just σ_{R.X=a1}. The answer (a1, b1) then cannot be secured.
        let mut prices = PriceList::uniform(&cat, Price::dollars(1));
        prices.remove(&SelectionView::new(
            cat.schema().resolve_attr("R.X").unwrap(),
            Value::text("a1"),
        ));
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let res = certificate_price(&cat, &d, &prices, &q, CertificateConfig::default()).unwrap();
        assert!(res.price.is_infinite());
    }

    #[test]
    fn predicates_shrink_assignment_space() {
        let col = Column::int_range(0, 10);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("R").unwrap(), tuple![7])
            .unwrap();
        d.insert(cat.schema().rel_id("S").unwrap(), tuple![7, 8])
            .unwrap();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y), x > 5, y > 5").unwrap();
        let sys = build_certificates(
            &cat,
            &d,
            &PriceList::uniform(&cat, Price::dollars(1)),
            &q,
            CertificateConfig::default(),
        )
        .unwrap();
        // Assignment space is 4 × 4, not 10 × 10; with both relations
        // sparse the system stays small.
        assert!(!sys.infeasible);
        assert!(!sys.constraints.is_empty());
    }

    #[test]
    fn empty_variable_column_prices_to_zero() {
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", Column::int_range(0, 3))])
            .relation(
                "S",
                &[
                    ("X", Column::int_range(5, 8)),
                    ("Y", Column::int_range(0, 3)),
                ],
            )
            .build()
            .unwrap();
        // Col_{R.X} ∩ Col_{S.X} = ∅: no join value exists in any world.
        let d = cat.empty_instance();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y)").unwrap();
        let res = certificate_price(
            &cat,
            &d,
            &PriceList::uniform(&cat, Price::dollars(1)),
            &q,
            CertificateConfig::default(),
        )
        .unwrap();
        assert_eq!(res.price, Price::ZERO);
    }

    #[test]
    fn assignment_cap_enforced() {
        let col = Column::int_range(0, 100);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("T", &["X", "Y"], &col)
            .build()
            .unwrap();
        let d = cat.empty_instance();
        let q = parse_rule(cat.schema(), "Q(x,y,z,u) :- R(x,y), S(y,z), T(z,u)").unwrap();
        let err = build_certificates(
            &cat,
            &d,
            &PriceList::uniform(&cat, Price::dollars(1)),
            &q,
            CertificateConfig {
                max_assignments: 1000,
            },
        );
        assert!(matches!(err, Err(PricingError::LimitExceeded(_))));
    }
}
