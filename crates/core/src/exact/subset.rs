//! The literal Equation 2 over individual selection-view prices:
//! branch-and-bound over subsets of the priced views, querying the
//! Theorem 3.3 determinacy oracle.
//!
//! This engine is fully general (any monotone UCQ bundle, projections and
//! all) but exponential in the number of priced views, so it carries a hard
//! cap. Its role is ground truth and the pricing of NP-complete queries on
//! small catalogs.

use crate::budget::{Budget, QuoteQuality};
use crate::degrade::{relevant_rels, structural_cover};
use crate::error::PricingError;
use crate::money::Price;
use crate::price_points::PriceList;
use qbdp_catalog::{Catalog, FxHashSet, Instance, RelId};
use qbdp_determinacy::selection::{determines_monotone_bundle, SelectionView, ViewSet};
use qbdp_query::bundle::Bundle;

/// Result of an exact (or budget-degraded) price computation.
#[derive(Clone, Debug)]
pub struct ExactResult {
    /// The arbitrage-price when `quality` is `Exact`; otherwise a sound
    /// over-estimate realized by `views`. `INFINITE` when no purchasable
    /// view set determines the query (or none was found in budget).
    pub price: Price,
    /// The cheapest determining view set found (empty for `INFINITE` — and
    /// also when the query is determined by the empty set, e.g. a query
    /// over an empty, fully-covered relation… distinguish via `price`).
    pub views: Vec<SelectionView>,
    /// Whether `price` is exact or a budget-limited upper bound.
    pub quality: QuoteQuality,
    /// Sound lower bound on the true arbitrage-price (equals `price` when
    /// `quality` is `Exact`).
    pub lower_bound: Price,
}

impl ExactResult {
    /// An exact result: the lower bound coincides with the price.
    pub fn exact(price: Price, views: Vec<SelectionView>) -> ExactResult {
        ExactResult {
            price,
            views,
            quality: QuoteQuality::Exact,
            lower_bound: price,
        }
    }

    /// A degraded result: `price` over-estimates, `lower_bound`
    /// under-estimates the true arbitrage-price.
    pub fn degraded(price: Price, views: Vec<SelectionView>, lower_bound: Price) -> ExactResult {
        ExactResult {
            price,
            views,
            quality: QuoteQuality::UpperBound,
            lower_bound: lower_bound.min(price),
        }
    }
}

/// Configuration for the subset search.
#[derive(Clone, Copy, Debug)]
pub struct SubsetConfig {
    /// Maximum number of candidate (finite-priced, relevant) views.
    pub max_views: usize,
}

impl Default for SubsetConfig {
    fn default() -> Self {
        SubsetConfig { max_views: 18 }
    }
}

/// Compute the arbitrage-price of a monotone query bundle under a selection
/// price list by exhaustive subset search with pruning.
///
/// Only views on relations mentioned by the bundle are considered: views on
/// other relations cannot contribute to determinacy (relations vary
/// independently across possible worlds).
pub fn subset_price(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    target: &Bundle,
    config: SubsetConfig,
) -> Result<ExactResult, PricingError> {
    subset_price_within(catalog, d, prices, target, config, &Budget::unlimited())
}

/// [`subset_price`] under a [`Budget`].
///
/// With an unlimited budget this is the exact engine, including its
/// hard-cap error. A *limited* budget replaces the cap and the error with
/// graceful degradation: too many candidates, or budget exhaustion
/// mid-search, yield the best determining view set confirmed so far (a
/// sound upper bound — the branch-and-bound only records oracle-verified
/// sets) plus the search frontier's lower bound; before the first oracle
/// answer, the structural relation-cover fallback stands in.
pub fn subset_price_within(
    catalog: &Catalog,
    d: &Instance,
    prices: &PriceList,
    target: &Bundle,
    config: SubsetConfig,
    budget: &Budget,
) -> Result<ExactResult, PricingError> {
    // Relations mentioned by the bundle.
    let rels: FxHashSet<RelId> = relevant_rels(target);
    // Candidate views: finite price, relevant relation. Zero-priced views
    // are always worth buying — include them unconditionally.
    let mut free: Vec<SelectionView> = Vec::new();
    let mut candidates: Vec<(SelectionView, Price)> = Vec::new();
    for (view, price) in prices.iter() {
        if !rels.contains(&view.attr.rel) || price.is_infinite() {
            continue;
        }
        if price == Price::ZERO {
            free.push(view);
        } else {
            candidates.push((view, price));
        }
    }
    let n = candidates.len();
    // The structural fallback, shared by every degradation exit below.
    let degrade = |lower_bound: Price| -> ExactResult {
        let (price, views) = structural_cover(catalog, prices, rels.iter().copied());
        ExactResult::degraded(price, views, lower_bound)
    };
    if n > config.max_views {
        if budget.is_limited() {
            // Do not even attempt the feasibility oracle call: its cost is
            // exponential-ish in the candidate count and would blow any
            // deadline. The structural cover is oracle-free and sound.
            return Ok(degrade(Price::ZERO));
        }
        return Err(PricingError::LimitExceeded(format!(
            "{n} candidate views exceed the subset-search cap of {}",
            config.max_views
        )));
    }
    // Cheap views first: finds good upper bounds early.
    candidates.sort_by_key(|c| c.1);

    let base: ViewSet = free.iter().cloned().collect();
    let mut oracle = Oracle {
        catalog,
        d,
        target,
        memo: Default::default(),
    };
    // One oracle call examines the instance against candidate worlds.
    let oracle_cost = 256 + d.total_tuples() as u64;

    // Feasibility check with everything.
    let mut all = base.clone();
    for (v, _) in &candidates {
        all.insert(v.clone());
    }
    if !budget.charge(oracle_cost) {
        return Ok(degrade(Price::ZERO));
    }
    if !oracle.determines(&all)? {
        // Even buying everything does not determine the query: the true
        // price is INFINITE, exactly.
        return Ok(ExactResult::exact(Price::INFINITE, Vec::new()));
    }

    // The all-candidates set is a confirmed determining set: start from it
    // so every later exit has a sound best-so-far.
    let mut best: Price = candidates.iter().map(|c| c.1).sum();
    let mut best_mask: u64 = (1u64 << n).wrapping_sub(1);
    let mut stack: Vec<(usize, u64, Price)> = vec![(0, 0, Price::ZERO)];
    while let Some((idx, mask, cost)) = stack.pop() {
        if cost >= best {
            continue;
        }
        if !budget.charge(oracle_cost) {
            // Unexplored subtrees can only cost at least their root's cost,
            // so the frontier minimum (including this node) bounds the true
            // optimum from below.
            let frontier = stack
                .iter()
                .map(|&(_, _, c)| c)
                .fold(cost, Price::min)
                .min(best);
            let mut views: Vec<SelectionView> = free.clone();
            // audit: bounded(result assembly over at most 64 mask-indexed candidates)
            for (i, (v, _)) in candidates.iter().enumerate() {
                if best_mask & (1 << i) != 0 {
                    views.push(v.clone());
                }
            }
            return Ok(ExactResult::degraded(best, views, frontier));
        }
        let mut vs = base.clone();
        for (i, (v, _)) in candidates.iter().enumerate() {
            if mask & (1 << i) != 0 {
                vs.insert(v.clone());
            }
        }
        if oracle.determines(&vs)? {
            best = cost;
            best_mask = mask;
            continue;
        }
        if idx == n {
            continue;
        }
        stack.push((idx + 1, mask, cost));
        stack.push((
            idx + 1,
            mask | (1 << idx),
            cost.saturating_add(candidates[idx].1),
        ));
    }

    let mut views: Vec<SelectionView> = free;
    // audit: bounded(result assembly over at most 64 mask-indexed candidates)
    for (i, (v, _)) in candidates.iter().enumerate() {
        if best_mask & (1 << i) != 0 {
            views.push(v.clone());
        }
    }
    Ok(ExactResult::exact(best, views))
}

struct Oracle<'a> {
    catalog: &'a Catalog,
    d: &'a Instance,
    target: &'a Bundle,
    memo: qbdp_catalog::FxHashMap<Vec<(qbdp_catalog::AttrRef, qbdp_catalog::Value)>, bool>,
}

impl Oracle<'_> {
    fn determines(&mut self, vs: &ViewSet) -> Result<bool, PricingError> {
        let mut key: Vec<_> = vs.iter().map(|v| (v.attr, v.value)).collect();
        key.sort();
        if let Some(&r) = self.memo.get(&key) {
            return Ok(r);
        }
        let r = determines_monotone_bundle(self.catalog, self.d, vs, self.target)?;
        self.memo.insert(key, r);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{tuple, CatalogBuilder, Column};
    use qbdp_query::ast::Ucq;
    use qbdp_query::parser::parse_rule;

    /// Figure 1: the subset engine should find price 6 with unit prices.
    #[test]
    fn example_3_8_price_is_six() {
        let ax = Column::texts(["a1", "a2", "a3", "a4"]);
        let by = Column::texts(["b1", "b2", "b3"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", ax.clone())])
            .relation("S", &[("X", ax), ("Y", by.clone())])
            .relation("T", &[("Y", by)])
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        let t = cat.schema().rel_id("T").unwrap();
        d.insert_all(r, [tuple!["a1"], tuple!["a2"]]).unwrap();
        d.insert_all(
            s,
            [
                tuple!["a1", "b1"],
                tuple!["a1", "b2"],
                tuple!["a2", "b2"],
                tuple!["a4", "b1"],
            ],
        )
        .unwrap();
        d.insert_all(t, [tuple!["b1"], tuple!["b3"]]).unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let res = subset_price(
            &cat,
            &d,
            &prices,
            &Bundle::single(Ucq::single(q)),
            SubsetConfig::default(),
        )
        .unwrap();
        assert_eq!(res.price, Price::dollars(6));
        assert_eq!(res.views.len(), 6);
    }

    #[test]
    fn projection_query_priced() {
        // H4(x) = R(x, y): NP-complete in general, fine on tiny instances.
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .build()
            .unwrap();
        let r = cat.schema().rel_id("R").unwrap();
        let mut d = cat.empty_instance();
        d.insert(r, tuple![0, 0]).unwrap();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let q = parse_rule(cat.schema(), "H4(x) :- R(x, y)").unwrap();
        let res = subset_price(
            &cat,
            &d,
            &prices,
            &Bundle::single(Ucq::single(q)),
            SubsetConfig::default(),
        )
        .unwrap();
        // Determining Π_x(R): must resolve every (x, y) cell's effect on x.
        // Full cover of X ($2) certainly determines; can 3 views do it?
        // The engine decides — we only require a finite price ≤ $2 and a
        // genuinely determining view set.
        assert!(res.price <= Price::dollars(2));
        let vs: ViewSet = res.views.iter().cloned().collect();
        assert!(determines_monotone_bundle(
            &cat,
            &d,
            &vs,
            &Bundle::single(Ucq::single(
                parse_rule(cat.schema(), "H4(x) :- R(x, y)").unwrap()
            ))
        )
        .unwrap());
    }

    #[test]
    fn nothing_for_sale_is_infinite() {
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("R").unwrap(), tuple![0])
            .unwrap();
        let q = parse_rule(cat.schema(), "Q(x) :- R(x)").unwrap();
        let res = subset_price(
            &cat,
            &d,
            &PriceList::new(),
            &Bundle::single(Ucq::single(q)),
            SubsetConfig::default(),
        )
        .unwrap();
        assert!(res.price.is_infinite());
    }

    #[test]
    fn zero_priced_views_are_free() {
        let col = Column::int_range(0, 3);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("R").unwrap(), tuple![1])
            .unwrap();
        let mut prices = PriceList::new();
        let rx = cat.schema().resolve_attr("R.X").unwrap();
        prices.set_attr_uniform(&cat, rx, Price::ZERO);
        let q = parse_rule(cat.schema(), "Q(x) :- R(x)").unwrap();
        let res = subset_price(
            &cat,
            &d,
            &prices,
            &Bundle::single(Ucq::single(q)),
            SubsetConfig::default(),
        )
        .unwrap();
        assert_eq!(res.price, Price::ZERO);
        assert_eq!(res.views.len(), 3);
    }

    #[test]
    fn view_cap_enforced() {
        let col = Column::int_range(0, 30);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .build()
            .unwrap();
        let d = cat.empty_instance();
        let prices = PriceList::uniform(&cat, Price::dollars(1));
        let q = parse_rule(cat.schema(), "Q(x) :- R(x)").unwrap();
        let err = subset_price(
            &cat,
            &d,
            &prices,
            &Bundle::single(Ucq::single(q)),
            SubsetConfig::default(),
        );
        assert!(matches!(err, Err(PricingError::LimitExceeded(_))));
    }
}
