//! Consistency of selection-view price lists (Proposition 3.2).
//!
//! With all price points in `Σ`, Lemma 3.1 says the only possible arbitrage
//! is between a full cover `Σ_{R.Y}` and a single selection `σ_{R.X=a}`:
//! the full cover of *any* attribute of `R` reveals all of `R`, hence every
//! selection on it. So `S` is consistent iff for every relation `R`, every
//! pair of attributes `X, Y`, and every priced value `a ∈ Col_{R.X}`:
//!
//! ```text
//! p(σ_{R.X=a})  ≤  Σ_{b ∈ Col_{R.Y}} p(σ_{R.Y=b})
//! ```
//!
//! Unlike the general framework (§2.7), this condition is **independent of
//! the database instance** — a list validated once stays consistent under
//! every update.

use crate::money::Price;
use crate::price_points::PriceList;
use qbdp_catalog::{AttrRef, Catalog};
use qbdp_determinacy::selection::SelectionView;

/// One violation of Proposition 3.2: the selection view is overpriced
/// relative to a full cover of another attribute of the same relation.
#[derive(Clone, Debug)]
pub struct ListArbitrage {
    /// The overpriced selection view.
    pub view: SelectionView,
    /// Its explicit price.
    pub price: Price,
    /// The attribute whose full cover undercuts it.
    pub via_cover_of: AttrRef,
    /// The full cover's (cheaper) total price.
    pub cover_price: Price,
}

impl ListArbitrage {
    /// Render against a schema for error messages.
    pub fn display(&self, catalog: &Catalog) -> String {
        format!(
            "{} at {} is undercut by the full cover of {} at {}",
            self.view.display(catalog.schema()),
            self.price,
            catalog.schema().attr_display(self.via_cover_of),
            self.cover_price
        )
    }
}

/// All Proposition 3.2 violations of a price list (empty ⇒ consistent).
pub fn find_list_arbitrage(catalog: &Catalog, prices: &PriceList) -> Vec<ListArbitrage> {
    let mut out = Vec::new();
    for (rid, rel) in catalog.schema().iter() {
        let arity = rel.arity();
        // Cheapest full cover per attribute, precomputed.
        let covers: Vec<Price> = (0..arity)
            .map(|pos| prices.full_cover_price(catalog, AttrRef::new(rid, pos as u32)))
            .collect();
        for x in 0..arity {
            let x_attr = AttrRef::new(rid, x as u32);
            // The binding constraint is the *cheapest* other cover.
            let Some((y, &cover_price)) = covers
                .iter()
                .enumerate()
                .filter(|&(y, _)| y != x)
                .min_by_key(|&(_, p)| *p)
            else {
                continue; // unary relation: no cross-attribute arbitrage
            };
            if cover_price.is_infinite() {
                continue;
            }
            for (value, price) in prices.views_on(x_attr) {
                if price > cover_price {
                    out.push(ListArbitrage {
                        view: SelectionView::new(x_attr, value.clone()),
                        price,
                        via_cover_of: AttrRef::new(rid, y as u32),
                        cover_price,
                    });
                }
            }
        }
    }
    out
}

/// Whether the price list is consistent (Proposition 3.2).
pub fn list_is_consistent(catalog: &Catalog, prices: &PriceList) -> bool {
    find_list_arbitrage(catalog, prices).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{CatalogBuilder, Column, Value};

    fn cat() -> Catalog {
        CatalogBuilder::new()
            .relation(
                "S",
                &[
                    ("X", Column::int_range(0, 3)),
                    ("Y", Column::int_range(0, 2)),
                ],
            )
            .build()
            .unwrap()
    }

    fn sel(c: &Catalog, dotted: &str, v: i64) -> SelectionView {
        SelectionView::new(c.schema().resolve_attr(dotted).unwrap(), Value::Int(v))
    }

    #[test]
    fn uniform_lists_are_consistent() {
        let c = cat();
        let pl = PriceList::uniform(&c, Price::dollars(1));
        assert!(list_is_consistent(&c, &pl));
    }

    #[test]
    fn detects_overpriced_selection() {
        let c = cat();
        let mut pl = PriceList::uniform(&c, Price::dollars(1));
        // Σ_{S.Y} costs $2; price σ_{S.X=0} at $3 → arbitrage.
        pl.set(sel(&c, "S.X", 0), Price::dollars(3));
        let arb = find_list_arbitrage(&c, &pl);
        assert_eq!(arb.len(), 1);
        assert_eq!(arb[0].view, sel(&c, "S.X", 0));
        assert_eq!(arb[0].cover_price, Price::dollars(2));
        assert!(arb[0].display(&c).contains("S.Y"));
        // $2 exactly is fine (≤, not <).
        pl.set(sel(&c, "S.X", 0), Price::dollars(2));
        assert!(list_is_consistent(&c, &pl));
    }

    #[test]
    fn partial_covers_impose_no_constraint() {
        let c = cat();
        let mut pl = PriceList::new();
        // Only one of the two S.Y views is priced: no finite full cover of
        // S.Y, so S.X prices are unconstrained.
        pl.set(sel(&c, "S.Y", 0), Price::cents(1));
        pl.set(sel(&c, "S.X", 0), Price::dollars(999));
        assert!(list_is_consistent(&c, &pl));
    }

    #[test]
    fn unary_relations_have_no_arbitrage() {
        let c = CatalogBuilder::new()
            .relation("R", &[("X", Column::int_range(0, 5))])
            .build()
            .unwrap();
        let mut pl = PriceList::uniform(&c, Price::dollars(1));
        pl.set(
            SelectionView::new(c.schema().resolve_attr("R.X").unwrap(), Value::Int(0)),
            Price::dollars(1000),
        );
        assert!(list_is_consistent(&c, &pl));
    }
}
