//! Fault injection for robustness tests.
//!
//! The market layer promises to survive a panicking pricing engine. That
//! promise needs a way to *make* an engine panic on demand: tests arm a
//! one-shot trap here, and [`crate::pricer::Pricer::price_cq_within`]
//! trips it at entry. Production code never arms it, so the fast path is
//! one relaxed atomic load.

use std::sync::atomic::{AtomicBool, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);

/// Arm a one-shot panic: the next pricing call panics (once), then
/// behavior returns to normal.
#[doc(hidden)]
pub fn arm_panic() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Trip the trap if armed. Called at pricing entry points.
#[doc(hidden)]
pub fn maybe_panic() {
    if ARMED.load(Ordering::Relaxed) && ARMED.swap(false, Ordering::SeqCst) {
        // audit: allow(R2: fault injection exists to panic; armed only by tests)
        panic!("injected fault: pricing engine panic (tests only)");
    }
}
