//! Randomized cross-validation of the PTIME flow pipeline against the two
//! independent exact engines (Equation-2 subset search and the certificate
//! hitting set). Any disagreement is a correctness bug in one of the three
//! implementations — this suite is the empirical backbone of the
//! reproduction's Theorem 3.7/3.13 claim.

use qbdp_catalog::{Catalog, CatalogBuilder, Column, Tuple, Value};
use qbdp_core::exact::certificates::{certificate_price, CertificateConfig};
use qbdp_core::exact::subset::{subset_price, SubsetConfig};
use qbdp_core::price_points::PriceList;
use qbdp_core::{Price, Pricer};
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::bundle::Bundle;
use qbdp_query::parser::parse_rule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Setup {
    catalog: Catalog,
    instance: qbdp_catalog::Instance,
    prices: PriceList,
}

/// Random database + random (always fully covering) price list over the
/// given relation shapes.
fn random_setup(rng: &mut StdRng, rels: &[(&str, usize)], n: i64, density: f64) -> Setup {
    let col = Column::int_range(0, n);
    let mut builder = CatalogBuilder::new();
    for &(name, arity) in rels {
        let attrs: Vec<String> = (0..arity).map(|i| format!("A{i}")).collect();
        let attr_refs: Vec<(&str, Column)> =
            attrs.iter().map(|a| (a.as_str(), col.clone())).collect();
        builder = builder.relation(name, &attr_refs);
    }
    let catalog = builder.build().unwrap();
    let mut instance = catalog.empty_instance();
    for (rid, rel) in catalog.schema().iter() {
        let arity = rel.arity();
        let total = (n as usize).pow(arity as u32);
        for idx in 0..total {
            if rng.gen_bool(density) {
                let mut vals = Vec::with_capacity(arity);
                let mut rest = idx;
                for _ in 0..arity {
                    vals.push(Value::Int((rest % n as usize) as i64));
                    rest /= n as usize;
                }
                instance.insert(rid, Tuple::new(vals)).unwrap();
            }
        }
    }
    // Random prices 1..=5 dollars on every view (full coverage keeps every
    // query finitely priced and exercises nontrivial min-cuts).
    let mut prices = PriceList::new();
    for attr in catalog.schema().all_attrs() {
        for v in catalog.column(attr).iter() {
            prices.set(
                SelectionView::new(attr, v.clone()),
                Price::dollars(rng.gen_range(1..=5)),
            );
        }
    }
    Setup {
        catalog,
        instance,
        prices,
    }
}

fn check_agreement(setup: &Setup, query: &str, case: &str) {
    let q = parse_rule(setup.catalog.schema(), query).unwrap();
    let pricer = Pricer::new(
        setup.catalog.clone(),
        setup.instance.clone(),
        setup.prices.clone(),
    )
    .unwrap();
    let quote = pricer.price_cq(&q).unwrap();
    let cert = certificate_price(
        &setup.catalog,
        &setup.instance,
        &setup.prices,
        &q,
        CertificateConfig::default(),
    )
    .unwrap();
    assert_eq!(
        quote.price, cert.price,
        "{case}: flow vs certificates on `{query}`"
    );
    // The quoted views must really determine the query at the quoted price.
    if quote.price.is_finite() {
        let total: Price = quote.views.iter().map(|v| setup.prices.get(v)).sum();
        assert_eq!(total, quote.price, "{case}: view receipt sums to the price");
        let vs: qbdp_determinacy::selection::ViewSet = quote.views.iter().cloned().collect();
        assert!(
            qbdp_determinacy::selection::determines_monotone_cq(
                &setup.catalog,
                &setup.instance,
                &vs,
                &q
            )
            .unwrap(),
            "{case}: quoted views fail to determine `{query}`"
        );
    }
}

#[test]
fn chain2_flow_matches_exact_engines() {
    let mut rng = StdRng::seed_from_u64(42);
    for case in 0..60 {
        let density = [0.1, 0.3, 0.6, 0.9][case % 4];
        let setup = random_setup(&mut rng, &[("R", 1), ("S", 2), ("T", 1)], 3, density);
        check_agreement(
            &setup,
            "Q(x, y) :- R(x), S(x, y), T(y)",
            &format!("chain2/{case}"),
        );
    }
}

#[test]
fn chain3_flow_matches_exact_engines() {
    let mut rng = StdRng::seed_from_u64(7);
    for case in 0..30 {
        let density = [0.15, 0.4, 0.75][case % 3];
        let setup = random_setup(
            &mut rng,
            &[("R", 1), ("S", 2), ("U", 2), ("T", 1)],
            3,
            density,
        );
        check_agreement(
            &setup,
            "Q(x, y, z) :- R(x), S(x, y), U(y, z), T(z)",
            &format!("chain3/{case}"),
        );
    }
}

#[test]
fn hanging_vars_flow_matches_exact_engines() {
    let mut rng = StdRng::seed_from_u64(1234);
    for case in 0..40 {
        let density = [0.2, 0.5, 0.8][case % 3];
        let setup = random_setup(&mut rng, &[("R", 2), ("S", 2), ("T", 1)], 3, density);
        // x hangs on R; full pipeline with Step 3 branching.
        check_agreement(
            &setup,
            "Q(x, y, z) :- R(x, y), S(y, z), T(z)",
            &format!("hang/{case}"),
        );
    }
}

#[test]
fn star_query_flow_matches_exact_engines() {
    let mut rng = StdRng::seed_from_u64(99);
    for case in 0..30 {
        let density = [0.2, 0.5][case % 2];
        let setup = random_setup(&mut rng, &[("R", 2), ("S", 2), ("T", 1)], 2, density);
        // Star on x: R(x,y), S(x,z), T(x) — y and z hang.
        check_agreement(
            &setup,
            "Q(x, y, z) :- R(x, y), S(x, z), T(x)",
            &format!("star/{case}"),
        );
    }
}

#[test]
fn middle_unary_atoms_flow_matches_exact_engines() {
    let mut rng = StdRng::seed_from_u64(2025);
    for case in 0..30 {
        let density = [0.25, 0.6][case % 2];
        let setup = random_setup(
            &mut rng,
            &[("R", 1), ("S", 2), ("M", 1), ("U", 2), ("T", 1)],
            2,
            density,
        );
        check_agreement(
            &setup,
            "Q(x, y, z) :- R(x), S(x, y), M(y), U(y, z), T(z)",
            &format!("mid-unary/{case}"),
        );
    }
}

#[test]
fn predicates_and_constants_flow_matches_exact_engines() {
    let mut rng = StdRng::seed_from_u64(555);
    for case in 0..30 {
        let density = [0.3, 0.7][case % 2];
        let setup = random_setup(&mut rng, &[("R", 1), ("S", 2), ("T", 1)], 4, density);
        check_agreement(
            &setup,
            "Q(x, y) :- R(x), S(x, y), T(y), x > 0",
            &format!("pred/{case}"),
        );
        check_agreement(
            &setup,
            "Q(x, y) :- R(x), S(x, y), T(y), y in {0, 2, 3}",
            &format!("pred-set/{case}"),
        );
        check_agreement(
            &setup,
            "Q(y) :- R(1), S(1, y), T(y)",
            &format!("const/{case}"),
        );
    }
}

#[test]
fn repeated_variable_in_atom_matches_exact() {
    let mut rng = StdRng::seed_from_u64(31337);
    for case in 0..30 {
        let density = [0.3, 0.6][case % 2];
        let setup = random_setup(&mut rng, &[("R", 1), ("S", 3), ("T", 1)], 3, density);
        // S(x, x, y): Step 2 collapses the repeat, then chain R, S', T.
        check_agreement(
            &setup,
            "Q(x, y) :- R(x), S(x, x, y), T(y)",
            &format!("repeat/{case}"),
        );
    }
}

#[test]
fn subset_engine_agrees_on_small_cases() {
    // The subset engine is the slowest; validate on a reduced sample.
    let mut rng = StdRng::seed_from_u64(4242);
    for case in 0..12 {
        let setup = random_setup(&mut rng, &[("R", 1), ("S", 2)], 2, 0.5);
        let q = parse_rule(setup.catalog.schema(), "Q(x, y) :- R(x), S(x, y)").unwrap();
        let pricer = Pricer::new(
            setup.catalog.clone(),
            setup.instance.clone(),
            setup.prices.clone(),
        )
        .unwrap();
        let quote = pricer.price_cq(&q).unwrap();
        let subset = subset_price(
            &setup.catalog,
            &setup.instance,
            &setup.prices,
            &Bundle::from(q.clone()),
            SubsetConfig::default(),
        )
        .unwrap();
        assert_eq!(quote.price, subset.price, "subset/{case}");
    }
}

#[test]
fn np_hard_shapes_certificates_vs_subset() {
    // H1 and H2 on tiny instances: the two exact engines must agree.
    let mut rng = StdRng::seed_from_u64(777);
    for case in 0..8 {
        let setup = random_setup(
            &mut rng,
            &[("R", 3), ("S", 1), ("T", 1), ("U", 1)],
            2,
            [0.3, 0.6][case % 2],
        );
        let q = parse_rule(
            setup.catalog.schema(),
            "H1(x, y, z) :- R(x, y, z), S(x), T(y), U(z)",
        )
        .unwrap();
        let cert = certificate_price(
            &setup.catalog,
            &setup.instance,
            &setup.prices,
            &q,
            CertificateConfig::default(),
        )
        .unwrap();
        let subset = subset_price(
            &setup.catalog,
            &setup.instance,
            &setup.prices,
            &Bundle::from(q.clone()),
            SubsetConfig { max_views: 24 },
        )
        .unwrap();
        assert_eq!(cert.price, subset.price, "h1/{case}");
    }
}

#[test]
fn cycle_certificates_vs_subset() {
    let mut rng = StdRng::seed_from_u64(31415);
    for case in 0..10 {
        let setup = random_setup(
            &mut rng,
            &[("E1", 2), ("E2", 2)],
            2,
            [0.25, 0.5, 0.75][case % 3],
        );
        let q = parse_rule(setup.catalog.schema(), "C2(x, y) :- E1(x, y), E2(y, x)").unwrap();
        let cert = certificate_price(
            &setup.catalog,
            &setup.instance,
            &setup.prices,
            &q,
            CertificateConfig::default(),
        )
        .unwrap();
        let subset = subset_price(
            &setup.catalog,
            &setup.instance,
            &setup.prices,
            &Bundle::from(q.clone()),
            SubsetConfig::default(),
        )
        .unwrap();
        assert_eq!(cert.price, subset.price, "c2/{case}");
    }
}

#[test]
fn all_normalization_steps_together_match_exact() {
    // Constants (Step 1), a repeated in-atom variable (Step 2), and a
    // hanging variable (Step 3) in one query:
    //   Q(x, y, z) :- P(x, x), S(x, y), U(1, y), T(y, z)
    // P(x,x) collapses, U's constant shrinks a column, z hangs on T.
    let mut rng = StdRng::seed_from_u64(909);
    for case in 0..25 {
        let density = [0.2, 0.5, 0.8][case % 3];
        let setup = random_setup(
            &mut rng,
            &[("P", 2), ("S", 2), ("U", 2), ("T", 2)],
            3,
            density,
        );
        check_agreement(
            &setup,
            "Q(x, y, z) :- P(x, x), S(x, y), U(1, y), T(y, z)",
            &format!("all-steps/{case}"),
        );
    }
}

#[test]
fn boolean_prices_match_subset_engine() {
    // The boolean pricer (witness cover / emptiness certificate) against
    // the literal Equation-2 subset engine.
    let mut rng = StdRng::seed_from_u64(808);
    for case in 0..20 {
        let density = [0.15, 0.45, 0.8][case % 3];
        let setup = random_setup(&mut rng, &[("R", 1), ("S", 2)], 2, density);
        for query in [
            "B() :- R(x), S(x, y)",
            "B() :- S(x, x)",
            "B() :- S(x, y), R(y)",
        ] {
            let q = parse_rule(setup.catalog.schema(), query).unwrap();
            let pricer = Pricer::new(
                setup.catalog.clone(),
                setup.instance.clone(),
                setup.prices.clone(),
            )
            .unwrap();
            let quote = pricer.price_cq(&q).unwrap();
            let subset = subset_price(
                &setup.catalog,
                &setup.instance,
                &setup.prices,
                &Bundle::from(q.clone()),
                SubsetConfig::default(),
            )
            .unwrap();
            assert_eq!(
                quote.price, subset.price,
                "boolean/{case}: `{query}` (density {density})"
            );
        }
    }
}
