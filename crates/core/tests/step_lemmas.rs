//! Direct validation of the normalization step lemmas: each step preserves
//! the arbitrage-price of the *problem itself*, measured by the exact
//! certificate engine before and after the rewrite (independently of the
//! flow pipeline).

use qbdp_catalog::{CatalogBuilder, Column, Tuple, Value};
use qbdp_core::exact::certificates::{certificate_price, CertificateConfig};
use qbdp_core::normalize::{step1_predicates, step2_repeated, step3_hanging, Problem};
use qbdp_core::price_points::PriceList;
use qbdp_core::Price;
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::parser::parse_rule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_problem(
    rng: &mut StdRng,
    rels: &[(&str, usize)],
    n: i64,
    density: f64,
    query: &str,
) -> Problem {
    let col = Column::int_range(0, n);
    let mut builder = CatalogBuilder::new();
    for &(name, arity) in rels {
        let attrs: Vec<String> = (0..arity).map(|i| format!("A{i}")).collect();
        let refs: Vec<(&str, Column)> = attrs.iter().map(|a| (a.as_str(), col.clone())).collect();
        builder = builder.relation(name, &refs);
    }
    let catalog = builder.build().unwrap();
    let mut instance = catalog.empty_instance();
    for (rid, rel) in catalog.schema().iter() {
        let arity = rel.arity();
        let total = (n as usize).pow(arity as u32);
        for idx in 0..total {
            if rng.gen_bool(density) {
                let mut vals = Vec::with_capacity(arity);
                let mut rest = idx;
                for _ in 0..arity {
                    vals.push(Value::Int((rest % n as usize) as i64));
                    rest /= n as usize;
                }
                let _ = instance.insert(rid, Tuple::new(vals));
            }
        }
    }
    let mut prices = PriceList::new();
    for attr in catalog.schema().all_attrs() {
        for v in catalog.column(attr).iter() {
            prices.set(
                SelectionView::new(attr, v.clone()),
                Price::dollars(rng.gen_range(1..=5)),
            );
        }
    }
    let q = parse_rule(catalog.schema(), query).unwrap();
    Problem::new(catalog, instance, prices, q)
}

fn exact_price(p: &Problem) -> Price {
    certificate_price(
        &p.catalog,
        &p.instance,
        &p.prices,
        &p.query,
        CertificateConfig::default(),
    )
    .unwrap()
    .price
}

/// Step 1 (predicates and constants) preserves the price:
/// `p_{S'}^{D'}(Q') = p_S^D(Q)`.
#[test]
fn step1_preserves_price() {
    let mut rng = StdRng::seed_from_u64(1001);
    for case in 0..20 {
        let density = [0.25, 0.55, 0.85][case % 3];
        let p = random_problem(
            &mut rng,
            &[("R", 1), ("S", 2), ("T", 1)],
            4,
            density,
            "Q(x, y) :- R(x), S(x, y), T(y), x > 0, y in {0, 1, 3}",
        );
        let before = exact_price(&p);
        let after_problem = step1_predicates::apply(p).unwrap();
        let after = exact_price(&after_problem);
        assert_eq!(before, after, "step1/{case} (density {density})");
        assert!(after_problem.query.preds().is_empty());
    }
}

/// Step 2 (repeated in-atom variables) preserves the price.
#[test]
fn step2_preserves_price() {
    let mut rng = StdRng::seed_from_u64(1002);
    for case in 0..20 {
        let density = [0.25, 0.55, 0.85][case % 3];
        let p = random_problem(
            &mut rng,
            &[("R", 1), ("S", 3), ("T", 1)],
            3,
            density,
            "Q(x, y) :- R(x), S(x, x, y), T(y)",
        );
        let before = exact_price(&p);
        let after_problem = step2_repeated::apply(p).unwrap();
        let after = exact_price(&after_problem);
        assert_eq!(before, after, "step2/{case} (density {density})");
    }
}

/// Step 3 (hanging variables, Lemma 3.11): the ORIGINAL price equals the
/// minimum over the cover/skip branches of base-cost + branch price.
#[test]
fn step3_branch_minimum_is_the_price() {
    let mut rng = StdRng::seed_from_u64(1003);
    for case in 0..20 {
        let density = [0.25, 0.55, 0.85][case % 3];
        let p = random_problem(
            &mut rng,
            &[("R", 2), ("S", 2), ("T", 1)],
            3,
            density,
            "Q(x, y, z) :- R(x, y), S(y, z), T(z)",
        );
        let before = exact_price(&p);
        let mut best = Price::INFINITE;
        for branch in step3_hanging::branches(p).unwrap() {
            let branch_price = exact_price(&branch.problem);
            best = best.min(branch.base_cost.saturating_add(branch_price));
        }
        assert_eq!(before, best, "step3/{case} (density {density})");
    }
}
