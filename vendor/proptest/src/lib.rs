//! Offline stand-in for the subset of `proptest 1.x` that qbdp's tests
//! use: the `proptest!` macro, integer-range / tuple / `Vec` strategies,
//! `collection::vec`, `Just`, `any::<bool>()`, `prop_oneof!`, and the
//! `prop_assert*` macros.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. A failing case panics with the deterministic seed and
//! case number so it can be re-run, but the input is not minimized.
//! Generation is deterministic per (test name, case index), so failures
//! reproduce exactly across runs.

use std::fmt;

/// Deterministic generator handed to strategies (splitmix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary 64-bit value.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5bf0_3635_0c47_9f3d,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` for strategy internals.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of random values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Integers drawable uniformly from a range.
pub trait RangeValue: Copy {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Saturating successor, to widen `..=hi` into a half-open bound.
    fn successor(self) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
            fn successor(self) -> Self {
                self.checked_add(1).unwrap_or(self)
            }
        }
    )*};
}
impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangeValue + PartialOrd> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::draw(rng, self.start, self.end)
    }
}

impl<T: RangeValue + PartialOrd> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        T::draw(rng, lo, hi.successor())
    }
}

/// Always produces a clone of the given value (upstream's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Type-erased strategy (upstream's `BoxedStrategy`).
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct OneOf<T> {
    /// The alternatives; must be non-empty.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// A `Vec` of strategies samples each element in order (upstream
/// implements this for heterogeneously-built generator lists).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (upstream's `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Acceptable length specifications for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy: each element drawn from `element`, length drawn
    /// from `size` (a `usize`, `Range`, or `RangeInclusive`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Why a test case failed (upstream's `TestCaseError`, simplified).
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

/// Number-of-cases knob (upstream's `ProptestConfig`, cases only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the test name: the per-test base seed. Deterministic so
/// failures reproduce; mixed with the case index per case.
#[doc(hidden)]
pub fn __seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Common imports (upstream's `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

/// Define property tests (upstream's `proptest!` block form).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let seed = $crate::__seed_for(stringify!($name), case);
                let mut rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}):\n{}",
                        case + 1, config.cases, seed, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let (a, b, c) = (0usize..5, 1u64..=3, -2i64..3).sample(&mut rng);
            assert!(a < 5 && (1..=3).contains(&b) && (-2..3).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let w = crate::collection::vec(0u8..10, 3).sample(&mut rng);
            assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn vec_of_strategies_samples_each() {
        let mut rng = TestRng::new(3);
        let strategies: Vec<_> = (1usize..=4)
            .map(|n| crate::collection::vec(0usize..9, n..=n))
            .collect();
        let sampled = strategies.sample(&mut rng);
        let lens: Vec<usize> = sampled.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![1, 2, 3, 4]);
    }

    #[test]
    fn oneof_flat_map_and_just() {
        let mut rng = TestRng::new(4);
        let s = (1usize..4).prop_flat_map(|n| {
            (Just(n), prop_oneof![10u64..20, Just(99u64)]).prop_map(|(n, x)| (n, x))
        });
        let mut saw_99 = false;
        for _ in 0..200 {
            let (n, x) = s.sample(&mut rng);
            assert!((1..4).contains(&n));
            assert!((10..20).contains(&x) || x == 99);
            saw_99 |= x == 99;
        }
        assert!(saw_99);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies to arguments and handles early return.
        #[test]
        fn macro_roundtrip(x in 0u64..100, v in crate::collection::vec(0i64..5, 0..4)) {
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(x < 100, "x = {}", x);
            prop_assert_eq!(v.len(), v.iter().len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_seed() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
