//! Offline stand-in for the subset of `parking_lot` that qbdp uses.
//!
//! Wraps `std::sync` primitives but preserves parking_lot's signature
//! difference that matters to callers: `lock()`/`read()`/`write()` return
//! guards directly instead of `Result`s, and the locks are **not
//! poisoned** by panics — a panicking holder leaves the data accessible,
//! which the market relies on to keep serving after an isolated engine
//! panic.

use std::sync::{self, PoisonError};

/// Guard for shared access to a [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for exclusive access to a [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard for a [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot semantics (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquire shared access, ignoring poison from a previous panic.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive access, ignoring poison from a previous panic.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutex with parking_lot semantics (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poison from a previous panic.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_survives_panicking_writer() {
        let lock = std::sync::Arc::new(RwLock::new(0u32));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still usable after a holder panicked.
        *lock.write() += 1;
        assert_eq!(*lock.read(), 1);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
