//! Offline stand-in for the subset of `crossbeam` that qbdp uses:
//! `crossbeam::thread::scope` for borrowing scoped threads, and
//! `crossbeam::deque::Injector` as the shared job queue of the
//! batch-pricing worker pool. The scope is implemented over
//! `std::thread::scope` (stable since 1.63), adapting to crossbeam's
//! callback signatures: spawn closures take a `&Scope` argument and
//! `scope` returns a `Result` that is `Err` if any scoped thread panicked
//! without its panic being claimed by an explicit `join`. That matches
//! `std::thread::scope`, which re-raises unjoined panics when the scope
//! ends — so the adapter only needs `catch_unwind` around the call.

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    /// Handle passed to the `scope` closure and to every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` if it panicked. Joining a
        /// panicked thread claims the panic so the surrounding `scope`
        /// call still returns `Ok`, as in crossbeam.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let handle = self.inner.spawn(move || {
                let scope = Scope { inner: inner_scope };
                f(&scope)
            });
            ScopedJoinHandle { inner: handle }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. `Err` carries the panic payload if a scoped thread (or
    /// `f` itself) panicked and the panic wasn't claimed by `join`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Work-stealing queues (mirrors the `crossbeam::deque` API surface qbdp
/// uses: a FIFO [`deque::Injector`] that many workers steal from).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Outcome of a [`Injector::steal`] attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One job was stolen.
        Success(T),
        /// The attempt lost a race; try again. (The mutex-based stand-in
        /// never returns this, but callers loop on it as with upstream.)
        Retry,
    }

    impl<T> Steal<T> {
        /// `true` for [`Steal::Success`].
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// Extract the stolen job, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A FIFO injector queue shared by a pool of workers. Upstream's is a
    /// lock-free Chase–Lev-style queue; this stand-in is a mutexed
    /// `VecDeque` with the same interface, which is plenty for pricing
    /// jobs that each cost far more than a lock handoff.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// An empty queue.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a job at the back.
        pub fn push(&self, job: T) {
            self.queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(job);
        }

        /// Steal the job at the front.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front()
            {
                Some(job) => Steal::Success(job),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .is_empty()
        }

        /// Number of queued jobs.
        pub fn len(&self) -> usize {
            self.queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn injector_is_fifo_and_thread_safe() {
        use super::deque::{Injector, Steal};
        let q = Injector::new();
        for i in 0..100 {
            q.push(i);
        }
        assert_eq!(q.len(), 100);
        assert_eq!(q.steal(), Steal::Success(0));
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| loop {
                    match q.steal() {
                        Steal::Success(i) => {
                            total.fetch_add(i, std::sync::atomic::Ordering::SeqCst);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
        })
        .unwrap();
        assert!(q.is_empty());
        assert_eq!(total.into_inner(), (1..100).sum::<u64>());
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn unjoined_panic_yields_err() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        std::panic::set_hook(prev);
        assert!(r.is_err());
    }

    #[test]
    fn joined_panic_is_claimed() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        });
        std::panic::set_hook(prev);
        assert!(r.is_ok());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.into_inner());
    }
}
