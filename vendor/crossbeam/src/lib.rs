//! Offline stand-in for the subset of `crossbeam` that qbdp uses:
//! `crossbeam::thread::scope` for borrowing scoped threads. Implemented
//! over `std::thread::scope` (stable since 1.63), adapting to crossbeam's
//! callback signatures: spawn closures take a `&Scope` argument and
//! `scope` returns a `Result` that is `Err` if any scoped thread panicked
//! without its panic being claimed by an explicit `join`. That matches
//! `std::thread::scope`, which re-raises unjoined panics when the scope
//! ends — so the adapter only needs `catch_unwind` around the call.

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    /// Handle passed to the `scope` closure and to every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` if it panicked. Joining a
        /// panicked thread claims the panic so the surrounding `scope`
        /// call still returns `Ok`, as in crossbeam.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let handle = self.inner.spawn(move || {
                let scope = Scope { inner: inner_scope };
                f(&scope)
            });
            ScopedJoinHandle { inner: handle }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. `Err` carries the panic payload if a scoped thread (or
    /// `f` itself) panicked and the panic wasn't claimed by `join`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn unjoined_panic_yields_err() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        std::panic::set_hook(prev);
        assert!(r.is_err());
    }

    #[test]
    fn joined_panic_is_claimed() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        });
        std::panic::set_hook(prev);
        assert!(r.is_ok());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.into_inner());
    }
}
