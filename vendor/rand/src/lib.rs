//! Offline stand-in for the subset of the `rand 0.8` API that qbdp uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of entry points it needs: [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::gen`], and a seedable [`rngs::StdRng`].
//! The generator is xoshiro256++ seeded via splitmix64 — statistically
//! solid for test-data generation, *not* cryptographic. Streams differ
//! from upstream `rand`, so seeds reproduce within this codebase only.

/// Core RNG interface: a source of `u64`s plus derived sampling helpers.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a range (`gen_range`).
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Widening successor used to turn `..=hi` into a half-open bound.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0, "gen_range requires a non-empty range");
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias at test-data scale is irrelevant.
                let x = rng.next_u64() as u128;
                let v = (x.wrapping_mul(span)) >> 64;
                (lo as i128 + v as i128) as $t
            }
            fn successor(self) -> Self {
                self.checked_add(1).unwrap_or(self)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_half_open(rng, lo, hi.successor())
    }
}

/// Types producible by the bare [`Rng::gen`] call (the `Standard`
/// distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Sampling helpers over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a `Range` / `RangeInclusive`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }

    /// A value from the standard distribution of `T`.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded by
    /// splitmix64. Deterministic per seed; not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the seed into four lanes.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(7);
                a.gen_range(0u32..1000) == c.gen_range(0u32..1000)
            })
            .count();
        assert!(same < 50, "independent seeds should disagree mostly");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
