//! Offline stand-in for the subset of `criterion 0.5` that qbdp's benches
//! use. It is a *timing harness*, not a statistics engine: each benchmark
//! runs a short calibration pass, then a fixed measurement pass, and
//! prints mean time per iteration. `cargo bench` therefore still produces
//! useful relative numbers offline, and `cargo test --benches` compiles.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark's measurement pass runs.
const MEASURE_FOR: Duration = Duration::from_millis(300);

/// Set when the bench binary is invoked by `cargo test` (`--test` flag):
/// run each routine once instead of measuring, as real criterion does.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Mark this process as running benches in test mode (single iteration).
#[doc(hidden)]
pub fn __set_test_mode(on: bool) {
    TEST_MODE.store(on, Ordering::SeqCst);
}

/// Identifier for a parameterized benchmark (mirrors `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<S: fmt::Display, P: fmt::Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier showing only the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (accepted, displayed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timer handle (mirrors `criterion::Bencher`).
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it repeatedly until the measurement
    /// window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if TEST_MODE.load(Ordering::SeqCst) {
            let start = Instant::now();
            black_box(routine());
            self.iters_done = 1;
            self.elapsed = start.elapsed();
            return;
        }
        // Calibrate: find an iteration count that takes ≥ ~10ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(10) || batch >= 1 << 20 {
                // Measure: keep running whole batches until the window ends.
                let mut iters = batch;
                let mut total = took;
                while total < MEASURE_FOR {
                    let start = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    total += start.elapsed();
                    iters += batch;
                }
                self.iters_done = iters;
                self.elapsed = total;
                return;
            }
            batch = batch.saturating_mul(4);
        }
    }
}

fn report(label: &str, throughput: Option<Throughput>, b: &Bencher) {
    let per_iter = if b.iters_done == 0 {
        Duration::ZERO
    } else {
        b.elapsed / (b.iters_done.min(u32::MAX as u64) as u32)
    };
    let mut line = format!(
        "bench: {label:<50} {per_iter:>12.2?}/iter ({} iters)",
        b.iters_done
    );
    if let Some(t) = throughput {
        let per_sec = |n: u64| {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                n as f64 / secs
            } else {
                f64::INFINITY
            }
        };
        match t {
            Throughput::Elements(n) => line.push_str(&format!("  {:.0} elem/s", per_sec(n))),
            Throughput::Bytes(n) => line.push_str(&format!("  {:.0} B/s", per_sec(n))),
        }
    }
    println!("{line}");
}

/// Group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set sample size (accepted for API compatibility; the shim's
    /// fixed-window measurement ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), self.throughput, &b);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), self.throughput, &b);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name, None, &b);
        self
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declare the benchmark entry list (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark main function (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes bench binaries with `--test`: run each
            // routine once instead of measuring.
            if std::env::args().any(|a| a == "--test") {
                $crate::__set_test_mode(true);
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(3));
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(2), &2u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
