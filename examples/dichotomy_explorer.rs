//! Dichotomy explorer (Theorem 3.16): classify queries as PTIME or
//! NP-complete and price them on a demo database.
//!
//! Pass your own rules as arguments (quote each rule), or run without
//! arguments for a tour of the paper's named queries:
//!
//! ```text
//! cargo run --example dichotomy_explorer
//! cargo run --example dichotomy_explorer -- "Q(x, y) :- A(x, y), B(y, x)"
//! ```
//!
//! The demo schema: unary `P`, `U1`, `U2`, `U3`; binary `A`, `B`, `C`;
//! ternary `R3` — all over the column `{0..3}`.

use qbdp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let col = Column::int_range(0, 3);
    let catalog = CatalogBuilder::new()
        .uniform_relation("P", &["X"], &col)
        .uniform_relation("U1", &["X"], &col)
        .uniform_relation("U2", &["X"], &col)
        .uniform_relation("U3", &["X"], &col)
        .uniform_relation("A", &["X", "Y"], &col)
        .uniform_relation("B", &["X", "Y"], &col)
        .uniform_relation("C", &["X", "Y"], &col)
        .uniform_relation("R3", &["X", "Y", "Z"], &col)
        .build()?;
    // A small random-ish database.
    let mut d = catalog.empty_instance();
    for (rel, tuples) in [
        ("P", vec![tuple![0], tuple![1]]),
        ("U1", vec![tuple![0]]),
        ("U2", vec![tuple![1], tuple![2]]),
        ("U3", vec![tuple![2]]),
        ("A", vec![tuple![0, 1], tuple![1, 2], tuple![2, 0]]),
        ("B", vec![tuple![1, 0], tuple![2, 1]]),
        ("C", vec![tuple![0, 2]]),
        ("R3", vec![tuple![0, 1, 2], tuple![1, 1, 1]]),
    ] {
        let rid = catalog.schema().rel_id(rel).expect("declared relation");
        d.insert_all(rid, tuples)?;
    }
    let prices = PriceList::uniform(&catalog, Price::dollars(1));
    let pricer = Pricer::new(catalog.clone(), d, prices)?;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let tour: Vec<(&str, String)> = if args.is_empty() {
        vec![
            (
                "path join (GChQ, Thm 3.7)",
                "Q(x,y,z) :- A(x,y), B(y,z)".into(),
            ),
            (
                "star join (GChQ)",
                "Q(x,y,z) :- A(x,y), C(x,z), P(x)".into(),
            ),
            ("cycle C2 (Thm 3.15)", "Q(x,y) :- A(x,y), B(y,x)".into()),
            (
                "cycle C3 (Thm 3.15)",
                "Q(x,y,z) :- A(x,y), B(y,z), C(z,x)".into(),
            ),
            (
                "H1 (NP-complete, Thm 3.5)",
                "Q(x,y,z) :- R3(x,y,z), U1(x), U2(y), U3(z)".into(),
            ),
            (
                "H2 = C2 + unary (NP-complete)",
                "Q(x,y) :- P(x), A(x,y), B(x,y)".into(),
            ),
            (
                "H3 (self-join, outside dichotomy)",
                "Q(x,y) :- P(x), A(x,y), P(y)".into(),
            ),
            ("H4 (projection, NP-complete)", "Q(x) :- A(x,y)".into()),
            (
                "boolean of a chain (PTIME via Qf)",
                "Q() :- A(x,y), B(y,z)".into(),
            ),
            (
                "disconnected mix",
                "Q(x,u,v) :- P(x), A(u,v), C(u,v)".into(),
            ),
        ]
    } else {
        args.into_iter().map(|a| ("from command line", a)).collect()
    };

    println!("{:38} {:28} {:>9}  engine", "query", "class", "price");
    println!("{}", "-".repeat(100));
    for (label, src) in tour {
        let q = match parse_rule(catalog.schema(), &src) {
            Ok(q) => q,
            Err(e) => {
                println!("{label:38} parse error: {e}");
                continue;
            }
        };
        let class = classify(&q);
        match pricer.price_cq(&q) {
            Ok(quote) => println!(
                "{label:38} {:28} {:>9}  {:?}",
                format!("{class:?}"),
                quote.price.to_string(),
                quote.method
            ),
            Err(e) => println!("{label:38} {:28} {e}", format!("{class:?}")),
        }
    }
    println!(
        "\nPTIME classes run the Min-Cut / cycle engines; NP-complete classes fall back to\n\
         the exact certificate engine (fine on demo-sized data, exponential in general)."
    );
    Ok(())
}
