//! An Infochimps-style MLB data market (paper §3): selection APIs priced
//! per lookup, and chain queries joining across them priced by Min-Cut.
//!
//! Demonstrates: chain-query quotes across three APIs, bundle subadditivity
//! (Proposition 2.8), and that pricing is *not* monotone w.r.t. query
//! containment (Example 4.1).
//!
//! ```text
//! cargo run --example sports_api
//! ```

use qbdp::core::support::{arbitrage_price, SupportConfig};
use qbdp::prelude::*;
use qbdp::workload::scenarios::sports::{generate, SportsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1908);
    let config = SportsConfig {
        teams: 8,
        games: 20,
        ..SportsConfig::default()
    };
    let m = generate(&mut rng, config)?;
    let market = Market::open(m.catalog.clone(), m.instance.clone(), m.prices.clone())?;
    let schema = m.catalog.schema();

    println!(
        "MLB market: {} teams, {} games\n",
        config.teams, config.games
    );

    // A chain across all three APIs: name → team id → games.
    // Team(name, tid), Game(gid, tid, att): join on tid.
    println!("-- chain queries across the APIs --");
    for (label, q) in [
        (
            "games of team3 (name → id → games)",
            "Q(tid, g, a) :- Team('team3', tid), Game(g, tid, a)",
        ),
        (
            "stats of team3",
            "Q(tid, w, l) :- Team('team3', tid), Stats(tid, w, l)",
        ),
        ("the whole team table", "Q(n, tid) :- Team(n, tid)"),
    ] {
        let quote = market.quote_str(q)?;
        println!(
            "{label:45} -> {:>8} via {:?}",
            quote.price.to_string(),
            quote.method
        );
    }

    // Bundle subadditivity (Proposition 2.8): two queries bought together
    // never cost more than separately — shared views are paid once.
    println!("\n-- bundle subadditivity (Proposition 2.8) --");
    let q1 = parse_rule(
        schema,
        "Q1(tid, w, l) :- Team('team1', tid), Stats(tid, w, l)",
    )?;
    let q2 = parse_rule(
        schema,
        "Q2(tid, g, a) :- Team('team1', tid), Game(g, tid, a)",
    )?;
    let pricer = Pricer::new(m.catalog.clone(), m.instance.clone(), m.prices.clone())?;
    let p1 = pricer.price_cq(&q1)?.price;
    let p2 = pricer.price_cq(&q2)?.price;
    let bundle = Bundle::new([Ucq::single(q1), Ucq::single(q2)]);
    let pb = pricer.price_bundle(&bundle)?.price;
    println!("price(Q1) = {p1},  price(Q2) = {p2},  price(Q1, Q2 bundled) = {pb}");
    assert!(pb <= p1.saturating_add(p2));
    println!("bundle ≤ sum holds: {pb} ≤ {}", p1.saturating_add(p2));

    // Containment non-monotonicity (Example 4.1): Q1 ⊆ Q2 imposes no
    // price relation — the narrower query joins through the Team relation
    // and so additionally prices Team information.
    println!("\n-- containment vs price (Example 4.1) --");
    let narrow = parse_rule(
        schema,
        "Q(g, tid, a) :- Team('team1', tid), Game(g, tid, a)",
    )?;
    let wide = parse_rule(schema, "Q(g, tid, a) :- Game(g, tid, a)")?;
    assert!(qbdp::query::homomorphism::is_contained_in(&narrow, &wide));
    let p_narrow = pricer.price_cq(&narrow)?.price;
    let p_wide = pricer.price_cq(&wide)?.price;
    println!("Q_narrow ⊆ Q_wide, price(narrow) = {p_narrow}, price(wide) = {p_wide}");
    println!("(no ≤ relation is imposed — §4 argues monotonicity w.r.t. containment is wrong)");

    // The §2 general framework: compare the per-view price list with a
    // schedule that also offers the whole dataset at a premium.
    println!("\n-- the whole dataset as a §2 price point --");
    let mut schedule = PriceSchedule::new();
    schedule.add(PricePoint::new(
        "ID",
        ViewDef::identity(&m.catalog),
        Price::dollars(500),
    ));
    let target = Bundle::identity(schema)?;
    let r = arbitrage_price(
        &m.catalog,
        &m.instance,
        &schedule,
        &target,
        SupportConfig::default(),
    )?;
    println!("price(entire dataset) under {{(ID, $500)}} = {}", r.price);
    Ok(())
}
