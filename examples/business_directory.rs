//! The paper's §1 motivation, made executable: a CustomLists-style USA
//! business directory selling per-state views ($199) and per-county views
//! ($49).
//!
//! Demonstrates:
//! 1. query-based pricing frees the seller from anticipating every view:
//!    buyers ask for arbitrary county subsets, joins with the Restaurant
//!    tag, or single businesses, and prices derive automatically;
//! 2. the §1 arbitrage anecdote: when some counties are empty, buying the
//!    remaining counties of a state is cheaper than the state view, yet
//!    determines the same data — the arbitrage-price charges the cheaper
//!    amount automatically, so the cunning buyer has no edge.
//!
//! ```text
//! cargo run --example business_directory
//! ```

use qbdp::prelude::*;
use qbdp::workload::scenarios::business::{generate, BusinessConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2012);
    let config = BusinessConfig {
        states: 8,
        counties_per_state: 5,
        businesses: 150,
        empty_county_fraction: 0.4,
        ..BusinessConfig::default()
    };
    let m = generate(&mut rng, config)?;
    let market = Market::open(m.catalog.clone(), m.instance.clone(), m.prices.clone())?;

    let business = m
        .catalog
        .schema()
        .rel_id("Business")
        .expect("declared relation");
    println!(
        "directory: {} businesses across {} states x {} counties\n",
        m.instance.relation(business).len(),
        config.states,
        config.counties_per_state
    );

    // 1. Ad-hoc queries the seller never anticipated.
    println!("-- ad hoc queries --");
    for (label, q) in [
        (
            "all businesses in state S3",
            "Q(n, c) :- Business(n, 'S3', c)".to_string(),
        ),
        (
            "restaurants in state S3",
            "Q(n, c) :- Business(n, 'S3', c), Restaurant(n)".to_string(),
        ),
        (
            "one county (full record)",
            "Q(n, s) :- Business(n, s, 'S3_C0')".to_string(),
        ),
    ] {
        match market.quote_str(&q) {
            Ok(quote) => println!("{label:35} -> {}", quote.price),
            Err(e) => println!("{label:35} -> {e}"),
        }
    }

    // 2. The arbitrage anecdote of §1: the state view S3 costs $199, but
    // the same information — all S3 businesses, county by county — can be
    // had through the county views. The buyer restricts the county column
    // with an `in` predicate (Step 1 of the GChQ algorithm shrinks the
    // problem to those counties), and the Min-Cut picks whichever mix of
    // state/county/name views is cheapest.
    let county_attr = m.catalog.schema().resolve_attr("Business.County")?;
    let s3_counties: Vec<String> = m
        .catalog
        .column(county_attr)
        .iter()
        .filter(|c| c.as_text().is_some_and(|s| s.starts_with("S3_")))
        .map(|c| c.to_string())
        .collect();
    let live = s3_counties
        .iter()
        .filter(|c| {
            m.instance
                .relation(business)
                .select_count(county_attr.attr, &Value::text(c.as_str()))
                > 0
        })
        .count();
    println!("\n-- the §1 arbitrage anecdote --");
    println!(
        "state S3 sells for {}; its {} counties sell for {} each ({} of them hold data)",
        config.state_price,
        s3_counties.len(),
        config.county_price,
        live,
    );
    let quoted_counties: Vec<String> = s3_counties.iter().map(|c| format!("'{c}'")).collect();
    let slice_q = format!(
        "Q(n, c) :- Business(n, 'S3', c), c in {{{}}}",
        quoted_counties.join(", ")
    );
    let quote = market.quote_str(&slice_q)?;
    let county_cover: Price = s3_counties.iter().map(|_| config.county_price).sum();
    println!(
        "buying the S3 slice county-by-county would cost {county_cover}; the state view {}",
        config.state_price
    );
    println!(
        "the arbitrage-price quotes {} — the Min-Cut takes the cheaper route \
         automatically, so a cunning buyer has no edge over the listed price.",
        quote.price
    );
    assert!(quote.price <= config.state_price.min(county_cover));

    // 3. A consistency check the seller runs before going live: if the
    // county prices were raised to $60, 5 counties ($300) could exceed...
    // actually the binding constraint is per-relation (Prop 3.2): a state
    // selection must not exceed the full *county* cover of the whole
    // column. Demonstrate a deliberately broken list being rejected.
    let mut broken = m.prices.clone();
    let state_attr = m.catalog.schema().resolve_attr("Business.State")?;
    let name_attr = m.catalog.schema().resolve_attr("Business.Name")?;
    // Names are 50¢ each; with 150 names the full Name cover is $75.
    // Price one state at $99,999 — more than revealing everything by name.
    broken.set(
        SelectionView::new(state_attr, Value::text("S0")),
        Price::dollars(99_999),
    );
    let _ = name_attr;
    match Market::open(m.catalog.clone(), m.instance.clone(), broken) {
        Err(MarketError::InconsistentPrices(msg)) => {
            println!("\n-- consistency guard --\nrejected broken price list: {msg}");
        }
        other => {
            println!("unexpected: {:?}", other.is_ok());
        }
    }
    Ok(())
}
