//! A WebScaled-style crawl market (paper §5): selling hyperlink data by
//! domain, with the "mutual links" query exercising the cycle machinery of
//! Theorem 3.15.
//!
//! ```text
//! cargo run --example web_crawl
//! ```

use qbdp::core::cycle::{cycle_bounds, cycle_price};
use qbdp::core::exact::certificates::CertificateConfig;
use qbdp::core::normalize::Problem;
use qbdp::prelude::*;
use qbdp::workload::scenarios::webgraph::{generate, WebGraphConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2026);
    let config = WebGraphConfig {
        domains: 6,
        links: 18,
        ..WebGraphConfig::default()
    };
    let m = generate(&mut rng, config)?;
    let market = Market::open(m.catalog.clone(), m.instance.clone(), m.prices.clone())?;
    let links = m
        .catalog
        .schema()
        .rel_id("Links")
        .expect("declared relation");
    println!(
        "crawl: {} domains, {} links; outlink lists {} / backlink lists {} per domain\n",
        config.domains,
        m.instance.relation(links).len(),
        config.outlink_price,
        config.backlink_price,
    );

    // Ordinary chain queries through the crawl products.
    println!("-- chain queries --");
    for (label, q) in [
        ("outlinks of site0", "Q(d) :- Links('site0', d)"),
        (
            "sites advertising AND linked from site0",
            "Q(d) :- Links('site0', d), Ads(d)",
        ),
    ] {
        let quote = market.quote_str(q)?;
        println!(
            "{label:42} -> {:>8} via {:?}",
            quote.price.to_string(),
            quote.method
        );
    }

    // The mutual-links query is the cycle C2 (Theorem 3.15).
    println!("\n-- mutual links: the cycle query C2 --");
    let src = "M(x, y) :- Links(x, y), Backlinks(x, y)";
    let q = parse_rule(m.catalog.schema(), src)?;
    println!("query   : {src}");
    println!("class   : {:?}", classify(&q));
    let problem = Problem::new(
        m.catalog.clone(),
        m.instance.clone(),
        m.prices.clone(),
        q.clone(),
    );
    let (lb, ub) = cycle_bounds(&problem)?;
    let exact = cycle_price(&problem, CertificateConfig::default())?;
    println!(
        "bounds  : {lb} ≤ price ≤ {}   (polynomial sandwich on the unrolled cycle)",
        ub.price
    );
    println!(
        "price   : {}   ({} views){}",
        exact.price,
        exact.views.len(),
        if lb == ub.price {
            "  — certified optimal in PTIME"
        } else {
            "  — exact fallback"
        },
    );

    // The same quote through the marketplace, with audit.
    let quote = market.quote_str(src)?;
    assert_eq!(quote.price, exact.price);
    let pricer = Pricer::new(m.catalog.clone(), m.instance.clone(), m.prices.clone())?;
    let audited = pricer.verify_quote(&q, &pricer.price_cq(&q)?)?;
    println!("audit   : buyer-side verification of the receipt -> {audited}");
    let purchase = market.purchase_str(src)?;
    println!(
        "answer  : {} mutually-linked pair(s)",
        purchase.answer.len()
    );
    Ok(())
}
