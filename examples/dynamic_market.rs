//! Dynamic pricing (§2.7): prices under database growth.
//!
//! Part 1 replays **Example 2.18** with the general §2 machinery: the
//! schedule `S1 = {(V, $1), (Q, $10), (ID, $100)}` with the join view
//! `V(x,y) = R(x), S(x,y)` and the boolean `Q() = ∃x R(x)` is consistent on
//! the empty database but becomes inconsistent after two insertions, and
//! under `S2 = {(V, $1), (ID, $100)}` the price of `Q` *drops* from $100 to
//! $1 — the anomaly that motivates restricting to selection views + full
//! queries.
//!
//! Part 2 shows the fix: with a selection-view price list and full CQs,
//! prices are monotone under every insertion (Propositions 2.20/2.22) and
//! consistency can never be lost (Proposition 3.2 is instance-independent).
//!
//! ```text
//! cargo run --example dynamic_market
//! ```

use qbdp::core::dynamic::price_trajectory;
use qbdp::core::support::{arbitrage_price, find_arbitrage, SupportConfig};
use qbdp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    part1_example_2_18()?;
    part2_monotone_fullcq()?;
    Ok(())
}

fn part1_example_2_18() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Part 1: Example 2.18 — the projection anomaly ==\n");
    let col = Column::int_range(0, 2);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .build()?;
    let schema = catalog.schema();
    let v = parse_rule(schema, "V(x, y) :- R(x), S(x, y)")?;
    let q = parse_rule(schema, "Q() :- R(x)")?;
    let qb = Bundle::from(q.clone());

    let mut s1 = PriceSchedule::new();
    s1.add(PricePoint::new(
        "V",
        ViewDef::Queries(Bundle::from(v.clone())),
        Price::dollars(1),
    ));
    s1.add(PricePoint::new(
        "Q",
        ViewDef::Queries(qb.clone()),
        Price::dollars(10),
    ));
    s1.add(PricePoint::new(
        "ID",
        ViewDef::identity(&catalog),
        Price::dollars(100),
    ));

    let mut s2 = PriceSchedule::new();
    s2.add(PricePoint::new(
        "V",
        ViewDef::Queries(Bundle::from(v)),
        Price::dollars(1),
    ));
    s2.add(PricePoint::new(
        "ID",
        ViewDef::identity(&catalog),
        Price::dollars(100),
    ));

    let d1 = catalog.empty_instance();
    let mut d2 = catalog.empty_instance();
    d2.insert(schema.rel_id("R").expect("declared relation"), tuple![0])?;
    d2.insert(schema.rel_id("S").expect("declared relation"), tuple![0, 1])?;

    let cfg = SupportConfig::default();
    println!("S1 = {{(V, $1), (Q, $10), (ID, $100)}} with V(x,y) = R(x), S(x,y):");
    println!(
        "  on D1 = ∅:              consistent = {}",
        find_arbitrage(&catalog, &d1, &s1, cfg)?.is_empty()
    );
    let arb = find_arbitrage(&catalog, &d2, &s1, cfg)?;
    println!(
        "  on D2 = {{R(0), S(0,1)}}: consistent = {} — {}",
        arb.is_empty(),
        arb.first()
            .map(|a| format!("point #{} sellable for {} instead", a.point, a.cheaper))
            .unwrap_or_default()
    );

    let p_d1 = arbitrage_price(&catalog, &d1, &s2, &qb, cfg)?.price;
    let p_d2 = arbitrage_price(&catalog, &d2, &s2, &qb, cfg)?.price;
    println!("\nS2 = {{(V, $1), (ID, $100)}}: price of Q() = ∃x R(x)");
    println!("  p_D1(Q) = {p_d1}   (must buy ID: V reveals nothing about R alone)");
    println!("  p_D2(Q) = {p_d2}   (V(D2) ≠ ∅ certifies R ≠ ∅) — the price DROPPED");
    assert_eq!(p_d1, Price::dollars(100));
    assert_eq!(p_d2, Price::dollars(1));
    Ok(())
}

fn part2_monotone_fullcq() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== Part 2: selection views + full CQs are monotone ==\n");
    let col = Column::int_range(0, 4);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["Y"], &col)
        .build()?;
    let prices = PriceList::uniform(&catalog, Price::dollars(1));
    let mut pricer = Pricer::new(catalog.clone(), catalog.empty_instance(), prices)?;
    let q = parse_rule(catalog.schema(), "Q(x, y) :- R(x), S(x, y), T(y)")?;
    let r = catalog.schema().rel_id("R").expect("declared relation");
    let s = catalog.schema().rel_id("S").expect("declared relation");
    let t = catalog.schema().rel_id("T").expect("declared relation");

    let batches = vec![
        vec![(r, tuple![0])],
        vec![(s, tuple![0, 1]), (t, tuple![1])],
        vec![(r, tuple![2]), (s, tuple![2, 3])],
        vec![(t, tuple![3])],
        vec![(s, tuple![1, 1]), (s, tuple![3, 3])],
        vec![(r, tuple![1]), (t, tuple![0])],
    ];
    let traj = price_trajectory(&mut pricer, batches, &q)?;
    println!("price of Q(x,y) = R(x), S(x,y), T(y) as the database grows:");
    for (tuples, price) in &traj.steps {
        println!("  |D| = {tuples:>2}  ->  {price}");
    }
    assert!(
        traj.is_monotone(),
        "Prop 2.22 violated: {:?}",
        traj.first_violation()
    );
    println!("monotone ✓ (Proposition 2.22); consistency held at every step ✓ (Prop 3.2)");
    Ok(())
}
