//! Quickstart: the paper's running example (Figure 1 / Example 3.8),
//! end to end through the marketplace API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use qbdp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The seller publishes schema, columns, data, and per-view prices as a
    // `.qdp` document — every selection view costs $1, as in Example 3.8.
    let mut qdp = String::from(
        "schema R(X)\nschema S(X, Y)\nschema T(Y)\n\
         column R.X = {a1, a2, a3, a4}\n\
         column S.X = {a1, a2, a3, a4}\n\
         column S.Y = {b1, b2, b3}\n\
         column T.Y = {b1, b2, b3}\n\
         tuple R(a1)\ntuple R(a2)\n\
         tuple S(a1, b1)\ntuple S(a1, b2)\ntuple S(a2, b2)\ntuple S(a4, b1)\n\
         tuple T(b1)\ntuple T(b3)\n",
    );
    for view in [
        "R.X=a1", "R.X=a2", "R.X=a3", "R.X=a4", "S.X=a1", "S.X=a2", "S.X=a3", "S.X=a4", "S.Y=b1",
        "S.Y=b2", "S.Y=b3", "T.Y=b1", "T.Y=b2", "T.Y=b3",
    ] {
        qdp.push_str(&format!("price {view} 100\n"));
    }

    let market = Market::open_qdp(&qdp)?;
    println!("market open; price list is arbitrage-free (Proposition 3.2)\n");

    // A buyer asks for the chain query Q(x, y) = R(x), S(x, y), T(y).
    let query = "Q(x, y) :- R(x), S(x, y), T(y)";
    let quote = market.quote_str(query)?;
    println!("query : {}", quote.query);
    println!("class : {:?} (priced by {:?})", quote.class, quote.method);
    println!(
        "price : {}   <- the paper computes 6 (Example 3.8)",
        quote.price
    );
    println!("the cheapest determining views (the min-cut of Figure 1c):");
    for item in &quote.receipt {
        println!("  {item}");
    }
    assert_eq!(quote.price, Price::dollars(6));

    // Purchasing delivers the answer and records the sale.
    let purchase = market.purchase_str(query)?;
    println!("\nanswer tuples:");
    for t in &purchase.answer {
        println!("  {t}");
    }
    println!(
        "\nledger: {} sale(s), revenue {}",
        market.sales(),
        market.revenue()
    );

    // A cheaper, narrower question: "is there any business chain through
    // a1?" — boolean queries are priced by their cheapest secured witness.
    let boolean = market.quote_str("Exists() :- R(x), S(x, y), T(y)")?;
    println!(
        "\nboolean query price: {} (secure one witness)",
        boolean.price
    );
    Ok(())
}
