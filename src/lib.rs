//! # qbdp — query-based data pricing
//!
//! A complete Rust implementation of *Koutris, Upadhyaya, Balazinska, Howe,
//! Suciu: "Query-Based Data Pricing" (PODS 2012)*: given explicit prices on
//! a few selection views, derive the unique arbitrage-free, discount-free
//! price of **any** relational query.
//!
//! ```
//! use qbdp::prelude::*;
//!
//! // Figure 1 of the paper: three relations, $1 per selection view.
//! let ax = Column::texts(["a1", "a2", "a3", "a4"]);
//! let by = Column::texts(["b1", "b2", "b3"]);
//! let catalog = CatalogBuilder::new()
//!     .relation("R", &[("X", ax.clone())])
//!     .relation("S", &[("X", ax), ("Y", by.clone())])
//!     .relation("T", &[("Y", by)])
//!     .build()
//!     .unwrap();
//! let mut d = catalog.empty_instance();
//! let (r, s, t) = (
//!     catalog.schema().rel_id("R").unwrap(),
//!     catalog.schema().rel_id("S").unwrap(),
//!     catalog.schema().rel_id("T").unwrap(),
//! );
//! d.insert_all(r, [tuple!["a1"], tuple!["a2"]]).unwrap();
//! d.insert_all(s, [tuple!["a1", "b1"], tuple!["a1", "b2"],
//!                  tuple!["a2", "b2"], tuple!["a4", "b1"]]).unwrap();
//! d.insert_all(t, [tuple!["b1"], tuple!["b3"]]).unwrap();
//!
//! let prices = PriceList::uniform(&catalog, Price::dollars(1));
//! let pricer = Pricer::new(catalog.clone(), d, prices).unwrap();
//! let q = parse_rule(catalog.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
//! let quote = pricer.price_cq(&q).unwrap();
//! assert_eq!(quote.price, Price::dollars(6)); // Example 3.8
//! ```
//!
//! The workspace crates, each documented on its own:
//!
//! * [`catalog`] — schemas, finite columns, instances;
//! * [`query`] — CQ/UCQ ASTs, datalog parser, evaluator, chain analysis;
//! * [`flow`] — max-flow / min-cut (Dinic + Edmonds–Karp), from scratch;
//! * [`determinacy`] — instance-based determinacy `D ⊢ V ։ Q`;
//! * [`core`] — the pricing framework: arbitrage-price, consistency, the
//!   GChQ Min-Cut algorithm, cycle queries, the dichotomy classifier,
//!   exact engines, dynamic pricing;
//! * [`market`] — a thread-safe marketplace with quotes, purchases, a
//!   ledger, and live updates;
//! * [`store`] — durable market state: a write-ahead log, atomic
//!   snapshots, and crash recovery;
//! * [`workload`] — generators and realistic scenarios for benchmarks.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cli;

pub use qbdp_catalog as catalog;
pub use qbdp_core as core;
pub use qbdp_determinacy as determinacy;
pub use qbdp_flow as flow;
pub use qbdp_market as market;
pub use qbdp_query as query;
pub use qbdp_store as store;
pub use qbdp_workload as workload;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use qbdp_catalog::{
        tuple, AttrRef, Catalog, CatalogBuilder, Column, Instance, QdpFile, RelId, Schema, Tuple,
        Value,
    };
    pub use qbdp_core::consistency::{find_list_arbitrage, list_is_consistent};
    pub use qbdp_core::dichotomy::{classify, QueryClass};
    pub use qbdp_core::price_points::{PriceList, PricePoint, PriceSchedule, ViewDef};
    pub use qbdp_core::{Budget, Price, Pricer, PricingError, PricingMethod, Quote, QuoteQuality};
    pub use qbdp_determinacy::selection::{SelectionView, ViewSet};
    pub use qbdp_market::{
        DurableMarket, Market, MarketError, MarketOps, MarketPolicy, MarketQuote, Purchase,
    };
    pub use qbdp_query::ast::{ConjunctiveQuery, CqBuilder, Pred, Ucq};
    pub use qbdp_query::bundle::Bundle;
    pub use qbdp_query::parser::{parse_query, parse_rule};
    pub use qbdp_store::{FsyncPolicy, MarketEvent, StoreError};
}
