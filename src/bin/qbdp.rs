//! `qbdp` — price queries against a `.qdp` market from the command line.
//!
//! ```text
//! qbdp <market.qdp> quote "Q(x, y) :- R(x), S(x, y), T(y)"
//! qbdp <market.qdp> repl
//! ```

use qbdp::cli;
use qbdp::prelude::Market;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, rest) = match args.split_first() {
        Some((p, r)) if !r.is_empty() => (p, r),
        _ => {
            eprintln!(
                "usage: qbdp <market.qdp> <command> [args…]\n\
                 commands: quote | buy | classify | insert | catalog | ledger | repl"
            );
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let market = match Market::open_qdp(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot open market: {e}");
            return ExitCode::FAILURE;
        }
    };
    if rest[0] == "repl" {
        let stdin = std::io::stdin();
        cli::repl(&market, stdin.lock(), std::io::stdout());
        return ExitCode::SUCCESS;
    }
    let command = rest.join(" ");
    println!("{}", cli::run_command(&market, &command));
    ExitCode::SUCCESS
}
