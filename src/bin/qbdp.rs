//! `qbdp` — price queries against a `.qdp` market from the command line.
//!
//! ```text
//! qbdp <market.qdp> quote "Q(x, y) :- R(x), S(x, y), T(y)"
//! qbdp <market.qdp> price --batch queries.txt --threads 4
//! qbdp --deadline-ms 50 --sell-degraded <market.qdp> repl
//! ```
//!
//! `--deadline-ms N` bounds every pricing call by a wall-clock deadline;
//! `--sell-degraded` allows the market to sell sound upper-bound quotes
//! when the deadline runs out (otherwise such quotes are refused).

use qbdp::cli;
use qbdp::prelude::{Market, MarketPolicy};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: qbdp [--deadline-ms N] [--sell-degraded] <market.qdp> <command> [args…]\n\
         commands: quote | price [--batch <file> [--threads N]] | explain | buy |\n\
         \x20         classify | insert | catalog | ledger | save | repl"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut deadline_ms: Option<u64> = None;
    let mut sell_degraded = false;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sell-degraded" => sell_degraded = true,
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => deadline_ms = Some(ms),
                None => {
                    eprintln!("--deadline-ms expects an integer (milliseconds)");
                    return ExitCode::from(2);
                }
            },
            _ => positional.push(arg),
        }
    }
    let (path, rest) = match positional.split_first() {
        Some((p, r)) if !r.is_empty() => (p, r),
        _ => return usage(),
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let market = match Market::open_qdp(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot open market: {e}");
            return ExitCode::FAILURE;
        }
    };
    if deadline_ms.is_some() || sell_degraded {
        market.set_policy(MarketPolicy {
            deadline: deadline_ms.map(Duration::from_millis),
            sell_degraded,
            ..MarketPolicy::default()
        });
    }
    if rest[0] == "repl" {
        let stdin = std::io::stdin();
        cli::repl(&market, stdin.lock(), std::io::stdout());
        return ExitCode::SUCCESS;
    }
    let command = rest.join(" ");
    let out = cli::run_command(&market, &command);
    println!("{out}");
    // `run_command` renders failures as text so the repl can share it; a
    // one-shot invocation still needs a non-zero exit for scripts.
    if out.starts_with("error:") {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
