//! `qbdp` — price queries against a `.qdp` market from the command line.
//!
//! ```text
//! qbdp <market.qdp> quote "Q(x, y) :- R(x), S(x, y), T(y)"
//! qbdp <market.qdp> price --batch queries.txt --threads 4
//! qbdp --deadline-ms 50 --sell-degraded <market.qdp> repl
//!
//! qbdp serve-dir <dir> --from <market.qdp> repl     # durable market
//! qbdp serve-dir <dir> buy "Q(x) :- R(x)"           # recover + mutate
//! qbdp serve <dir> --addr 0.0.0.0:7878              # HTTP quote server
//! qbdp snapshot <dir>                               # compact the log
//! qbdp replay <dir> --probe "Q(x) :- R(x)"          # recovery report
//! qbdp scrub <dir>                                  # integrity check
//! qbdp chaos --schedules 100 [market.qdp]           # fault injection
//! ```
//!
//! `--deadline-ms N` bounds every pricing call by a wall-clock deadline;
//! `--sell-degraded` allows the market to sell sound upper-bound quotes
//! when the deadline runs out (otherwise such quotes are refused).
//!
//! `serve-dir` runs commands against a durable market persisted under a
//! directory: every mutation is written to a write-ahead log before it is
//! applied, and reopening the directory recovers the exact state. The
//! first run needs `--from <market.qdp>` to seed the genesis snapshot;
//! `--fsync always|every=N|never` picks the log's durability/throughput
//! trade-off (default `always`). `replay` prints what recovery did,
//! including §2.7 price-trajectory monotonicity verdicts for `--probe`
//! queries.

#![forbid(unsafe_code)]

use qbdp::cli;
use qbdp::prelude::{DurableMarket, FsyncPolicy, Market, MarketPolicy};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    qbdp_obs::log_error!(
        "usage: qbdp [--deadline-ms N] [--sell-degraded] [--telemetry] [--quiet]\n\
         \x20           <market.qdp> <command> [args…]\n\
         \x20      qbdp serve-dir <dir> [--from <market.qdp>] [--fsync always|every=N|never]\n\
         \x20                           <command> [args…]\n\
         \x20      qbdp serve <dir> [--from <market.qdp>] [--fsync …] [--addr host:port]\n\
         \x20                 [--threads N] [--max-conns N]\n\
         \x20      qbdp snapshot <dir>\n\
         \x20      qbdp replay <dir> [--probe <rule>]…\n\
         \x20      qbdp scrub <dir>\n\
         \x20      qbdp chaos [--seed N] [--schedules N] [--ops N]\n\
         \x20                 [--faults all|transient,enospc,fsync,torn] [market.qdp]\n\
         commands: quote | price [--batch <file> [--threads N] | --trace <rule>] |\n\
         \x20         explain | buy | classify | insert | setprice | catalog |\n\
         \x20         ledger | stats [--json|--flight] | save | compact | sync | repl"
    );
    ExitCode::from(2)
}

fn parse_fsync(v: &str) -> Option<FsyncPolicy> {
    match v {
        "always" => Some(FsyncPolicy::Always),
        "never" => Some(FsyncPolicy::Never),
        _ => v
            .strip_prefix("every=")
            .and_then(|n| n.parse().ok())
            .map(FsyncPolicy::EveryN),
    }
}

fn run<M: qbdp::market::MarketOps>(market: &M, rest: &[String]) -> ExitCode {
    if rest[0] == "repl" {
        let stdin = std::io::stdin();
        cli::repl(market, stdin.lock(), std::io::stdout());
        return ExitCode::SUCCESS;
    }
    let command = rest.join(" ");
    let out = cli::run_command(market, &command);
    println!("{out}");
    // `run_command` renders failures as text so the repl can share it; a
    // one-shot invocation still needs a non-zero exit for scripts.
    if out.starts_with("error:") {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut deadline_ms: Option<u64> = None;
    let mut sell_degraded = false;
    let mut telemetry = false;
    let mut seed_path: Option<String> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut probes: Vec<String> = Vec::new();
    let mut chaos_seed = 0u64;
    let mut chaos_schedules = 25u64;
    let mut chaos_ops = 40u32;
    let mut chaos_faults = String::from("all");
    let mut serve_addr = String::from("127.0.0.1:7878");
    let mut serve_threads = 0usize;
    let mut serve_max_conns = 1024usize;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sell-degraded" => sell_degraded = true,
            "--telemetry" => telemetry = true,
            "--quiet" => qbdp_obs::log::set_level(qbdp_obs::log::Level::Error),
            "--verbose" => qbdp_obs::log::set_level(qbdp_obs::log::Level::Debug),
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => deadline_ms = Some(ms),
                None => {
                    qbdp_obs::log_error!("--deadline-ms expects an integer (milliseconds)");
                    return ExitCode::from(2);
                }
            },
            "--from" => match args.next() {
                Some(p) => seed_path = Some(p),
                None => {
                    qbdp_obs::log_error!("--from expects a .qdp file path");
                    return ExitCode::from(2);
                }
            },
            "--fsync" => match args.next().as_deref().and_then(parse_fsync) {
                Some(p) => fsync = p,
                None => {
                    qbdp_obs::log_error!("--fsync expects always, never, or every=N");
                    return ExitCode::from(2);
                }
            },
            "--probe" => match args.next() {
                Some(rule) => probes.push(rule),
                None => {
                    qbdp_obs::log_error!("--probe expects a datalog rule");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => chaos_seed = n,
                None => {
                    qbdp_obs::log_error!("--seed expects an integer");
                    return ExitCode::from(2);
                }
            },
            "--schedules" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => chaos_schedules = n,
                None => {
                    qbdp_obs::log_error!("--schedules expects an integer");
                    return ExitCode::from(2);
                }
            },
            "--ops" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => chaos_ops = n,
                None => {
                    qbdp_obs::log_error!("--ops expects an integer");
                    return ExitCode::from(2);
                }
            },
            "--faults" => match args.next() {
                Some(list) => chaos_faults = list,
                None => {
                    qbdp_obs::log_error!("--faults expects `all` or a comma list");
                    return ExitCode::from(2);
                }
            },
            "--addr" => match args.next() {
                Some(a) => serve_addr = a,
                None => {
                    qbdp_obs::log_error!("--addr expects host:port");
                    return ExitCode::from(2);
                }
            },
            "--threads" if positional.first().map(String::as_str) == Some("serve") => {
                match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => serve_threads = n,
                    None => {
                        qbdp_obs::log_error!("--threads expects an integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--max-conns" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => serve_max_conns = n,
                None => {
                    qbdp_obs::log_error!("--max-conns expects an integer");
                    return ExitCode::from(2);
                }
            },
            _ => positional.push(arg),
        }
    }
    match positional.first().map(String::as_str) {
        Some("snapshot") => {
            let Some(dir) = positional.get(1) else {
                return usage();
            };
            let out = cli::snapshot_dir(dir);
            println!("{out}");
            if out.starts_with("error:") {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("replay") => {
            let Some(dir) = positional.get(1) else {
                return usage();
            };
            let out = cli::replay_dir(dir, &probes);
            println!("{out}");
            if out.starts_with("error:") {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("scrub") => {
            let Some(dir) = positional.get(1) else {
                return usage();
            };
            let out = cli::scrub_dir(dir);
            println!("{out}");
            if out.contains("DAMAGE") {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("chaos") => {
            let qdp = match positional.get(1) {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        qbdp_obs::log_error!("cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                },
                None => include_str!("../../data/figure1.qdp").to_string(),
            };
            let out = cli::chaos_cmd(&qdp, chaos_seed, chaos_schedules, chaos_ops, &chaos_faults);
            println!("{out}");
            if out.starts_with("error:") {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("serve") => {
            let Some(dir) = positional.get(1) else {
                return usage();
            };
            let seed = match &seed_path {
                Some(p) => match std::fs::read_to_string(p) {
                    Ok(t) => Some(t),
                    Err(e) => {
                        qbdp_obs::log_error!("cannot read {p}: {e}");
                        return ExitCode::from(2);
                    }
                },
                None => None,
            };
            let out = cli::serve_cmd(
                dir,
                seed.as_deref(),
                fsync,
                &serve_addr,
                serve_threads,
                serve_max_conns,
            );
            println!("{out}");
            if out.starts_with("error:") {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("serve-dir") => {
            let (Some(dir), rest) = (positional.get(1), &positional[2.min(positional.len())..])
            else {
                return usage();
            };
            if rest.is_empty() {
                return usage();
            }
            let seed = match &seed_path {
                Some(p) => match std::fs::read_to_string(p) {
                    Ok(t) => Some(t),
                    Err(e) => {
                        qbdp_obs::log_error!("cannot read {p}: {e}");
                        return ExitCode::from(2);
                    }
                },
                None => None,
            };
            let market = match DurableMarket::open_or_create(dir, seed.as_deref(), fsync) {
                Ok(m) => m,
                Err(e) => {
                    qbdp_obs::log_error!("cannot open durable market: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if deadline_ms.is_some() || sell_degraded || telemetry {
                let policy = MarketPolicy {
                    deadline: deadline_ms.map(Duration::from_millis),
                    sell_degraded,
                    telemetry,
                    ..market.market().policy()
                };
                if let Err(e) = market.set_policy(policy) {
                    qbdp_obs::log_error!("cannot set policy: {e}");
                    return ExitCode::FAILURE;
                }
            }
            run(&market, rest)
        }
        Some(path) => {
            let rest = &positional[1..];
            if rest.is_empty() {
                return usage();
            }
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    qbdp_obs::log_error!("cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let market = match Market::open_qdp(&text) {
                Ok(m) => m,
                Err(e) => {
                    qbdp_obs::log_error!("cannot open market: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if deadline_ms.is_some() || sell_degraded || telemetry {
                market.set_policy(MarketPolicy {
                    deadline: deadline_ms.map(Duration::from_millis),
                    sell_degraded,
                    telemetry,
                    ..MarketPolicy::default()
                });
            }
            run(&market, rest)
        }
        None => usage(),
    }
}
