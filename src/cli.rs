//! The `qbdp` command-line driver: load a `.qdp` market and run pricing
//! commands against it.
//!
//! ```text
//! qbdp data/figure1.qdp quote    "Q(x, y) :- R(x), S(x, y), T(y)"
//! qbdp data/figure1.qdp price    --batch queries.txt --threads 4
//! qbdp data/figure1.qdp buy      "Q(x, y) :- R(x), S(x, y), T(y)"
//! qbdp data/figure1.qdp classify "Q(x) :- S(x, y)"
//! qbdp data/figure1.qdp catalog
//! qbdp data/figure1.qdp repl     # interactive session on stdin
//! ```
//!
//! The command logic lives here (library-tested); `src/bin/qbdp.rs` is a
//! thin argv/stdin wrapper. The binary accepts two governance flags before
//! the market path: `--deadline-ms N` bounds each pricing call by a
//! wall-clock deadline, and `--sell-degraded` lets the market sell sound
//! upper-bound quotes when a budget runs out (without it, such quotes are
//! refused with a deadline error). Degraded quotes are printed with their
//! `[lower bound, price]` interval.

use qbdp_catalog::{AttrRef, Tuple, Value};
use qbdp_core::dichotomy::classify;
use qbdp_core::Price;
use qbdp_market::{MarketError, MarketOps};
use std::fmt::Write as _;

/// Run one CLI command against a market — in-memory or durable (the
/// latter write-ahead-logs every mutation); returns the text to print.
pub fn run_command<M: MarketOps>(market: &M, command: &str) -> String {
    let command = command.trim();
    let (verb, rest) = match command.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (command, ""),
    };
    match verb {
        "" => String::new(),
        "help" => help_text(),
        "quote" => quote(market, rest),
        "price" => price_cmd(market, rest),
        "explain" => match market.base().explain_str(rest) {
            Ok(text) => text,
            Err(e) => render_err(e),
        },
        "save" => {
            let qdp = market.base().to_qdp();
            match std::fs::write(rest, &qdp) {
                Ok(()) => format!("market saved to {rest} ({} bytes)", qdp.len()),
                Err(e) => format!("cannot write {rest}: {e}"),
            }
        }
        "buy" | "purchase" => buy(market, rest),
        "classify" => classify_cmd(market, rest),
        "insert" => insert(market, rest),
        "setprice" => setprice(market, rest),
        "catalog" => catalog(market),
        "ledger" => ledger(market),
        "stats" => stats_cmd(market, rest),
        "compact" => match market.durable() {
            Some(d) => match d.compact() {
                Ok(bytes) => format!(
                    "snapshot written to {}; {bytes} log byte(s) compacted",
                    d.dir().display()
                ),
                Err(e) => render_err(e),
            },
            None => "compact needs a durable market — run via `qbdp serve-dir <dir>`".to_string(),
        },
        "sync" => match market.durable() {
            Some(d) => match d.sync() {
                Ok(()) => "log forced to stable storage".to_string(),
                Err(e) => render_err(e),
            },
            None => "sync needs a durable market — run via `qbdp serve-dir <dir>`".to_string(),
        },
        other => format!("unknown command `{other}` — try `help`"),
    }
}

/// The REPL: feed lines from `input`, collect output into `output`. Stops
/// at EOF or `quit`.
pub fn repl<M: MarketOps>(
    market: &M,
    input: impl std::io::BufRead,
    mut output: impl std::io::Write,
) {
    let _ = writeln!(
        output,
        "qbdp marketplace — `help` lists commands, `quit` exits"
    );
    for line in input.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let _ = writeln!(output, "{}", run_command(market, line));
    }
}

fn help_text() -> String {
    "commands:\n\
     \x20 quote <rule>      price a query, e.g. quote Q(x) :- R(x)\n\
     \x20 price <rule>      same as quote; or batch mode:\n\
     \x20 price --batch <file> [--threads N]\n\
     \x20                   price one rule per line in parallel (N workers;\n\
     \x20                   0 or omitted = one per core)\n\
     \x20 price --incremental <rule>\n\
     \x20                   price through the plan cache: repeated query\n\
     \x20                   shapes reprice by residual warm start\n\
     \x20 price --trace <rule>\n\
     \x20                   quote with the pricing-pipeline span tree\n\
     \x20                   (cache lookup → plan → normalize → flow → \n\
     \x20                   hitting set) appended as JSONL\n\
     \x20 explain <rule>    quote with a full narrative\n\
     \x20 save <path>       write the market back to a .qdp file\n\
     \x20 buy <rule>        purchase: price + answer + ledger entry\n\
     \x20 classify <rule>   dichotomy class (Theorem 3.16)\n\
     \x20 insert R(a, b)    seller-side tuple insertion\n\
     \x20 setprice R.X=a N  seller-side price revision (N in cents)\n\
     \x20 catalog           schema, columns, price list summary\n\
     \x20 ledger            sales and revenue\n\
     \x20 stats             telemetry registry, Prometheus text format\n\
     \x20 stats --json      telemetry registry as JSON\n\
     \x20 stats --flight    flight recorder: span trees of quotes that\n\
     \x20                   went wrong (slow/degraded/contended/panicked)\n\
     \x20 compact           durable markets: snapshot + truncate the log\n\
     \x20 sync              durable markets: force the log to disk\n\
     \x20 quit              leave the repl\n\
     binary flags (before the .qdp path):\n\
     \x20 --deadline-ms N   wall-clock budget per pricing call\n\
     \x20 --sell-degraded   sell sound upper-bound quotes on budget exhaustion\n\
     \x20 --telemetry       record metrics/traces from the start\n\
     \x20 --quiet           suppress informational progress on stderr"
        .to_string()
}

fn quote<M: MarketOps>(market: &M, rule: &str) -> String {
    match market.base().quote_str(rule) {
        Ok(q) => {
            let mut out = String::new();
            let _ = writeln!(out, "query : {}", q.query);
            let _ = writeln!(out, "class : {:?}  (engine: {:?})", q.class, q.method);
            let _ = writeln!(out, "price : {}", q.price);
            if !q.quality.is_exact() {
                let _ = writeln!(
                    out,
                    "note  : UPPER BOUND — budget ran out; exact price lies in [{}, {}]",
                    q.lower_bound, q.price
                );
            }
            let _ = writeln!(out, "views :");
            for item in &q.receipt {
                let _ = writeln!(out, "  {item}");
            }
            out.truncate(out.trim_end().len());
            out
        }
        Err(e) => render_err(e),
    }
}

/// `price <rule>` is an alias for `quote`; `price --batch <file>
/// [--threads N]` prices one rule per line of `file` on the market's
/// parallel batch path (`--threads 0` or omitted = one worker per core);
/// `price --incremental <rule>` enables the incremental pricing engine
/// on the market's policy and quotes through the shape-keyed plan cache,
/// reporting its hit/warm-reprice counters alongside the quote.
fn price_cmd<M: MarketOps>(market: &M, rest: &str) -> String {
    if let Some(rule) = rest.strip_prefix("--trace") {
        // Tracing needs the telemetry pipeline recording for this quote.
        let mut policy = market.base().policy();
        if !policy.telemetry {
            policy.telemetry = true;
            if let Err(e) = market.set_policy(policy) {
                return render_err(e);
            }
        }
        // Keep-last mode parks the span tree on this thread so it can be
        // fetched after the market finishes the quote.
        qbdp_obs::trace::set_keep_last(true);
        let mut out = quote(market, rule.trim_start());
        qbdp_obs::trace::set_keep_last(false);
        let spans = qbdp_obs::trace::take_last();
        if spans.is_empty() {
            let _ = write!(out, "\ntrace : (no spans recorded)");
        } else {
            let _ = write!(
                out,
                "\ntrace ({} span(s), JSONL):\n{}",
                spans.len(),
                qbdp_obs::trace::to_jsonl(&spans).trim_end()
            );
        }
        return out;
    }
    if let Some(rule) = rest.strip_prefix("--incremental") {
        let mut policy = market.base().policy();
        if !policy.incremental {
            policy.incremental = true;
            if let Err(e) = market.set_policy(policy) {
                return render_err(e);
            }
        }
        let mut out = quote(market, rule.trim_start());
        let s = market.base().plan_stats();
        let _ = write!(
            out,
            "\nplan  : {} hit(s), {} miss(es), {} warm reprice(s), {} eviction(s)",
            s.hits, s.misses, s.warm_reprices, s.evictions
        );
        return out;
    }
    if !rest.starts_with("--batch") {
        return quote(market, rest);
    }
    let mut tokens = rest.split_whitespace().skip(1);
    let Some(path) = tokens.next() else {
        return "price --batch expects a file path (one datalog rule per line)".to_string();
    };
    let mut threads: Option<usize> = None;
    while let Some(tok) = tokens.next() {
        match tok {
            "--threads" => match tokens.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = Some(n),
                None => return "--threads expects an integer (0 = one per core)".to_string(),
            },
            other => return format!("unknown batch flag `{other}`"),
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return format!("cannot read {path}: {e}"),
    };
    let rules: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if rules.is_empty() {
        return format!("{path}: no queries (one datalog rule per line; # comments)");
    }
    if let Some(n) = threads {
        let mut policy = market.base().policy();
        policy.batch_workers = n;
        if let Err(e) = market.set_policy(policy) {
            return render_err(e);
        }
    }
    let results = market.base().quote_batch(&rules);
    let mut out = String::new();
    let mut priced = 0usize;
    for (rule, res) in rules.iter().zip(&results) {
        match res {
            Ok(q) => {
                priced += 1;
                let tag = if q.quality.is_exact() {
                    ""
                } else {
                    "  [upper bound]"
                };
                let _ = writeln!(out, "{:>10}  {}{tag}", q.price.to_string(), q.query);
            }
            Err(e) => {
                let _ = writeln!(out, "{:>10}  {rule} — {e}", "error");
            }
        }
    }
    let _ = write!(out, "priced {priced}/{} queries", rules.len());
    out
}

fn buy<M: MarketOps>(market: &M, rule: &str) -> String {
    match market.purchase_str(rule) {
        Ok(p) => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "charged {} (transaction #{})",
                p.quote.price, p.transaction_id
            );
            let _ = writeln!(out, "{} answer tuple(s):", p.answer.len());
            for t in p.answer.iter().take(20) {
                let _ = writeln!(out, "  {t}");
            }
            if p.answer.len() > 20 {
                let _ = writeln!(out, "  … {} more", p.answer.len() - 20);
            }
            out.truncate(out.trim_end().len());
            out
        }
        Err(e) => render_err(e),
    }
}

fn classify_cmd<M: MarketOps>(market: &M, rule: &str) -> String {
    market.base().with_pricer(|pricer| {
        match qbdp_query::parser::parse_rule(pricer.catalog().schema(), rule) {
            Ok(q) => {
                let class = classify(&q);
                let ptime = if class.is_ptime() {
                    "PTIME"
                } else {
                    "NP-complete / exact engines"
                };
                format!("{class:?} — {ptime}")
            }
            Err(e) => format!("parse error: {e}"),
        }
    })
}

fn insert<M: MarketOps>(market: &M, fact: &str) -> String {
    // Syntax: R(a, b).
    let Some(open) = fact.find('(') else {
        return "insert expects `Relation(v1, v2, …)`".to_string();
    };
    if !fact.ends_with(')') {
        return "insert expects `Relation(v1, v2, …)`".to_string();
    }
    let rel = fact[..open].trim();
    let values: Option<Vec<Value>> = fact[open + 1..fact.len() - 1]
        .split(',')
        .map(|s| Value::parse_literal(s.trim()))
        .collect();
    let Some(values) = values else {
        return "bad value in tuple".to_string();
    };
    match market.insert(rel, vec![Tuple::new(values)]) {
        Ok(added) => format!("{added} tuple(s) added to {rel}"),
        Err(e) => render_err(e),
    }
}

/// `setprice R.X=a <cents>` — revise (or add) one selection-view price.
fn setprice<M: MarketOps>(market: &M, rest: &str) -> String {
    let Some((view, cents)) = rest.rsplit_once(char::is_whitespace) else {
        return "setprice expects `R.X=a <cents>`".to_string();
    };
    let Ok(cents) = cents.trim().parse::<u64>() else {
        return "setprice expects an integer price in cents".to_string();
    };
    match market.set_price(view.trim(), Price::cents(cents)) {
        Ok(()) => format!("{} now priced at {}", view.trim(), Price::cents(cents)),
        Err(e) => render_err(e),
    }
}

fn catalog<M: MarketOps>(market: &M) -> String {
    market.base().with_pricer(|pricer| {
        let mut out = String::new();
        let catalog = pricer.catalog();
        let schema = catalog.schema();
        for (rid, rel) in schema.iter() {
            let _ = writeln!(
                out,
                "{}({})  — {} tuple(s)",
                rel.name(),
                rel.attrs().join(", "),
                pricer.instance().relation(rid).len()
            );
            for (pos, attr) in rel.attrs().iter().enumerate() {
                let aref = AttrRef::new(rid, pos as u32);
                let col = catalog.column(aref);
                let priced = pricer.prices().views_on(aref).count();
                let _ = writeln!(
                    out,
                    "  .{attr:12} column of {:3} value(s), {priced:3} priced",
                    col.len()
                );
            }
        }
        let _ = write!(
            out,
            "price list: {} views priced; dataset sellable: {}",
            pricer.prices().len(),
            pricer.prices().sells_identity(catalog)
        );
        out
    })
}

fn ledger<M: MarketOps>(market: &M) -> String {
    market
        .base()
        .with_ledger(|l| format!("{} sale(s), revenue {}", l.sales(), l.revenue()))
}

/// `stats [--json|--flight]` — export the process-wide telemetry
/// registry (Prometheus text by default, JSON with `--json`), or dump
/// the flight recorder's retained span trees of quotes that went wrong
/// (`--flight`, JSONL, oldest first). Metrics accumulate only while the
/// market policy's `telemetry` flag is on (`--telemetry`, `price
/// --trace`, or a `set_policy` call).
fn stats_cmd<M: MarketOps>(market: &M, rest: &str) -> String {
    match rest {
        "" => market.metrics_snapshot(),
        "--json" => qbdp_obs::export::json(qbdp_obs::global()),
        "--flight" => {
            let records = qbdp_obs::flight::dump();
            if records.is_empty() {
                "flight recorder is empty (no slow/degraded/contended/panicked quote captured)"
                    .to_string()
            } else {
                let mut text = qbdp_obs::flight::to_jsonl(&records);
                text.truncate(text.trim_end().len());
                text
            }
        }
        other => format!("stats: unknown flag `{other}` (expected --json or --flight)"),
    }
}

fn render_err(e: MarketError) -> String {
    format!("error: {e}")
}

/// `qbdp snapshot <dir>`: open a durable market directory (recovering if
/// needed), write a fresh snapshot, and truncate the log.
pub fn snapshot_dir(dir: &str) -> String {
    let market = match qbdp_market::DurableMarket::open(dir, qbdp_market::FsyncPolicy::Always) {
        Ok(m) => m,
        Err(e) => return render_err(e),
    };
    match market.compact() {
        Ok(bytes) => format!("snapshot written to {dir}; {bytes} log byte(s) compacted"),
        Err(e) => render_err(e),
    }
}

/// `qbdp serve <dir> --addr <host:port> [--threads N] [--max-conns N]`:
/// recover (or seed) a durable market under `dir` and serve quotes over
/// HTTP until SIGTERM/SIGINT, then drain in-flight requests, flush the
/// WAL, and snapshot. Returns the shutdown summary (or the error).
///
/// Serving turns telemetry on (the `/metrics` endpoint is the whole
/// point of running a server); `threads` maps to
/// `MarketPolicy::batch_workers` — the worker pool every tick's
/// `quote_batch` fans out on (`0` = one per core).
pub fn serve_cmd(
    dir: &str,
    seed_qdp: Option<&str>,
    fsync: qbdp_market::FsyncPolicy,
    addr: &str,
    threads: usize,
    max_conns: usize,
) -> String {
    use qbdp_serve::{Server, ServerConfig, ShutdownFlag};

    let market = match qbdp_market::DurableMarket::open_or_create(dir, seed_qdp, fsync) {
        Ok(m) => m,
        Err(e) => return render_err(e),
    };
    let policy = qbdp_market::MarketPolicy {
        telemetry: true,
        batch_workers: threads,
        ..market.market().policy()
    };
    if let Err(e) = market.set_policy(policy) {
        return render_err(e);
    }
    let shutdown = match ShutdownFlag::with_signals() {
        Ok(f) => f,
        Err(e) => return format!("error: cannot install signal handlers: {e}"),
    };
    let mut server = match Server::bind(ServerConfig {
        addr: addr.to_string(),
        max_conns,
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => return format!("error: {e}"),
    };
    qbdp_obs::log_info!(
        "serving quotes on http://{} ({} readiness backend); SIGTERM drains and snapshots",
        server.local_addr(),
        server.backend()
    );
    let stats = match server.run(&market, &shutdown) {
        Ok(s) => s,
        Err(e) => return format!("error: {e}"),
    };
    // The drain answered everything fully received; now make the log
    // durable (the EveryN tail) and leave a fresh snapshot so the next
    // open recovers without replay.
    if let Err(e) = market.sync() {
        return render_err(e);
    }
    let compacted = match market.compact() {
        Ok(bytes) => bytes,
        Err(e) => return render_err(e),
    };
    format!(
        "served {} request(s) on {} connection(s): {} quote(s), {} purchase(s), \
         {} http error(s), {} rejected at capacity; log synced, {compacted} \
         byte(s) compacted into the shutdown snapshot",
        stats.requests,
        stats.conns_accepted,
        stats.quotes,
        stats.purchases,
        stats.http_errors,
        stats.conns_rejected,
    )
}

/// `qbdp replay <dir> [--probe <rule>]…`: recover a durable market by
/// snapshot-load + log replay, reporting the recovered state and — for
/// each probe query — the §2.7 price trajectory observed across the
/// replayed insertions, with its Proposition 2.22 monotonicity verdict.
pub fn replay_dir(dir: &str, probes: &[String]) -> String {
    use qbdp_core::dynamic::PriceTrajectory;
    use qbdp_market::{DurableMarket, FsyncPolicy, MarketEvent, ReplayStep};

    let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    let mut trajectories: Vec<PriceTrajectory> = probes
        .iter()
        .map(|_| PriceTrajectory { steps: Vec::new() })
        .collect();
    let market = DurableMarket::open_with_observer(dir, FsyncPolicy::Never, |step, market| {
        let observe = match &step {
            ReplayStep::SnapshotLoaded => true,
            ReplayStep::Applied(event) => {
                *counts.entry(event.kind()).or_insert(0) += 1;
                // Prices move only when the data does (§2.7: the explicit
                // price list is fixed between seller revisions).
                matches!(event, MarketEvent::InsertTuple { .. })
            }
        };
        if !observe {
            return;
        }
        let tuples = market.with_pricer(|p| p.instance().total_tuples());
        for (probe, traj) in probes.iter().zip(&mut trajectories) {
            if let Ok(q) = market.quote_str(probe) {
                traj.steps.push((tuples, q.price));
            }
        }
    });
    let market = match market {
        Ok(m) => m,
        Err(e) => return render_err(e),
    };
    let mut out = String::new();
    let replayed: usize = counts.values().sum();
    let _ = writeln!(out, "recovered {dir}: {replayed} event(s) replayed");
    for (kind, n) in &counts {
        let _ = writeln!(out, "  {n:>6} × {kind}");
    }
    let tuples = market.market().with_pricer(|p| p.instance().total_tuples());
    let _ = writeln!(
        out,
        "state : {tuples} tuple(s), {} sale(s), revenue {}",
        market.market().with_ledger(qbdp_market::Ledger::sales),
        market.market().revenue()
    );
    for (probe, traj) in probes.iter().zip(&trajectories) {
        let _ = write!(
            out,
            "probe : {probe} — {} observation(s); ",
            traj.steps.len()
        );
        match traj.first_violation() {
            None => {
                let _ = writeln!(out, "monotone (Prop 2.22 holds along the replay)");
            }
            Some((step, before, after)) => {
                let _ = writeln!(
                    out,
                    "NOT monotone — step {step}: {before} dropped to {after}"
                );
            }
        }
    }
    out.truncate(out.trim_end().len());
    out
}

/// `qbdp scrub <dir>`: read-only integrity pass over a durable market
/// directory — verifies snapshot structure and every log frame's
/// checksum, reporting damage (file + byte offset) without repairing or
/// even opening the market.
pub fn scrub_dir(dir: &str) -> String {
    use qbdp_market::durable::{SNAPSHOT_FILE, WAL_FILE};
    use qbdp_store::{scrub, RealFs};
    let dir = std::path::Path::new(dir);
    let report = scrub(&RealFs, &dir.join(SNAPSHOT_FILE), &dir.join(WAL_FILE));
    report.to_string()
}

/// Build a [`qbdp_market::chaos::FaultMix`] from the `--faults` flag:
/// `all`, or a comma list drawn from `transient`, `enospc`, `fsync`,
/// `torn` (each enabled at its default intensity).
pub fn parse_fault_mix(spec: &str) -> Option<qbdp_market::chaos::FaultMix> {
    use qbdp_market::chaos::FaultMix;
    if spec == "all" {
        return Some(FaultMix::all());
    }
    let defaults = FaultMix::all();
    let mut mix = FaultMix::none();
    for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match name {
            "transient" => mix.transient = defaults.transient,
            "enospc" => mix.enospc = defaults.enospc,
            "fsync" | "fsync-fail" => mix.fsync_fail = defaults.fsync_fail,
            "torn" | "torn-write" => mix.torn_write = defaults.torn_write,
            _ => return None,
        }
    }
    Some(mix)
}

/// `qbdp chaos [--seed N] [--schedules N] [--ops N] [--faults LIST]
/// [market.qdp]`: run randomized fault schedules against a scratch
/// durable market and check the three robustness invariants (prefix
/// consistency, no lost ack, sound degraded quotes). Returns an
/// `error:`-prefixed report (non-zero exit) on any violation; every
/// schedule is deterministic in its seed, so a failure names the exact
/// seed to replay.
pub fn chaos_cmd(qdp: &str, seed0: u64, schedules: u64, ops: u32, faults: &str) -> String {
    use qbdp_market::chaos::{run_schedule, ChaosConfig};
    let Some(mix) = parse_fault_mix(faults) else {
        return format!(
            "error: --faults expects `all` or a comma list of \
             transient, enospc, fsync, torn (got `{faults}`)"
        );
    };
    let scratch = std::env::temp_dir().join(format!("qbdp_chaos_cli_{}", std::process::id()));
    let mut out = String::new();
    let mut acked = 0u64;
    let mut injected = 0u64;
    let mut refused = 0u64;
    let mut tails = 0u64;
    let mut bad = 0u64;
    // audit: bounded(--schedules seeds, one schedule each)
    for seed in seed0..seed0.saturating_add(schedules) {
        let mut cfg = ChaosConfig::new(seed);
        cfg.ops = ops;
        cfg.fault = mix;
        match run_schedule(qdp, &scratch, &cfg) {
            Ok(report) => {
                acked += report.acked;
                injected += report.faults_injected;
                refused += report.store_errors + report.degraded_ops;
                tails += u64::from(report.recovered_pending_tail);
                if !report.is_sound() {
                    bad += 1;
                    let _ = writeln!(out, "seed {seed} VIOLATED:\n{report}");
                }
            }
            Err(e) => {
                bad += 1;
                let _ = writeln!(out, "seed {seed} setup failed: {e}");
            }
        }
    }
    std::fs::remove_dir_all(&scratch).ok();
    let _ = write!(
        out,
        "{schedules} schedule(s) from seed {seed0}: {acked} acked, {injected} fault(s) \
         injected, {refused} op(s) refused, {tails} pending tail(s) recovered"
    );
    if bad > 0 {
        format!("error: {bad} schedule(s) violated the invariants\n{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_market::Market;

    fn market() -> Market {
        Market::open_qdp(include_str!("../data/figure1.qdp")).unwrap()
    }

    #[test]
    fn quote_and_buy() {
        let m = market();
        let out = run_command(&m, "quote Q(x, y) :- R(x), S(x, y), T(y)");
        assert!(out.contains("price : $6.00"), "{out}");
        assert!(out.contains("σ[R.X=a1]"));
        let out = run_command(&m, "buy Q(x, y) :- R(x), S(x, y), T(y)");
        assert!(out.contains("charged $6.00"), "{out}");
        assert!(out.contains("(a1, b1)"));
        let out = run_command(&m, "ledger");
        assert!(out.contains("1 sale(s), revenue $6.00"), "{out}");
    }

    #[test]
    fn classify_and_catalog() {
        let m = market();
        let out = run_command(&m, "classify Q(x, y) :- R(x), S(x, y), T(y)");
        assert!(out.contains("GeneralizedChain"), "{out}");
        let out = run_command(&m, "classify Q(x) :- S(x, y)");
        assert!(out.contains("NpComplete"), "{out}");
        let out = run_command(&m, "catalog");
        assert!(out.contains("S(X, Y)"), "{out}");
        assert!(out.contains("dataset sellable: true"), "{out}");
    }

    #[test]
    fn insert_via_cli() {
        let m = market();
        let out = run_command(&m, "insert T(b2)");
        assert!(out.contains("1 tuple(s) added"), "{out}");
        let out = run_command(&m, "insert T(nope)");
        assert!(out.contains("error"), "{out}");
        let out = run_command(&m, "insert garbage");
        assert!(out.contains("insert expects"), "{out}");
    }

    #[test]
    fn price_is_a_quote_alias() {
        let m = market();
        let out = run_command(&m, "price Q(x, y) :- R(x), S(x, y), T(y)");
        assert!(out.contains("price : $6.00"), "{out}");
    }

    #[test]
    fn price_batch_from_file() {
        let m = market();
        let path = std::env::temp_dir().join("qbdp_cli_batch_test.txt");
        std::fs::write(
            &path,
            "# batch of three, one bad\n\
             Q(x, y) :- R(x), S(x, y), T(y)\n\
             \n\
             Q(x) :- R(x)\n\
             not a rule\n",
        )
        .unwrap();
        let out = run_command(&m, &format!("price --batch {} --threads 2", path.display()));
        std::fs::remove_file(&path).ok();
        assert!(out.contains("$6.00"), "{out}");
        assert!(out.contains("error"), "{out}");
        assert!(out.contains("priced 2/3 queries"), "{out}");
    }

    #[test]
    fn price_batch_flag_errors_are_friendly() {
        let m = market();
        assert!(run_command(&m, "price --batch").contains("expects a file path"));
        assert!(run_command(&m, "price --batch /nonexistent-qbdp").contains("cannot read"));
        let out = run_command(&m, "price --batch x --threads many");
        assert!(out.contains("--threads expects"), "{out}");
    }

    #[test]
    fn unknown_and_help() {
        let m = market();
        assert!(run_command(&m, "frobnicate").contains("unknown command"));
        assert!(run_command(&m, "help").contains("quote <rule>"));
        assert_eq!(run_command(&m, ""), "");
    }

    #[test]
    fn repl_session() {
        let m = market();
        let input = "help\n# a comment\nquote Q(x) :- R(x)\nquit\nnever reached\n";
        let mut out = Vec::new();
        repl(&m, input.as_bytes(), &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("commands:"));
        assert!(text.contains("price :"));
        assert!(!text.contains("never reached"));
    }

    #[test]
    fn mini_market_file_loads() {
        let m = Market::open_qdp(include_str!("../data/mini_market.qdp")).unwrap();
        let out = run_command(&m, "quote Q(n, s) :- Company(n, s), Deal(n, z)");
        assert!(out.contains("price"), "{out}");
    }

    #[test]
    fn setprice_revises_and_validates() {
        let m = market();
        let out = run_command(&m, "setprice T.Y=b2 250");
        assert!(out.contains("now priced at $2.50"), "{out}");
        assert!(run_command(&m, "setprice T.Y=b2").contains("setprice expects"));
        assert!(run_command(&m, "setprice T.Y=b2 lots").contains("integer price"));
        assert!(run_command(&m, "setprice T.Y=zz 5").starts_with("error:"));
    }

    #[test]
    fn compact_and_sync_need_a_durable_market() {
        let m = market();
        assert!(run_command(&m, "compact").contains("needs a durable market"));
        assert!(run_command(&m, "sync").contains("needs a durable market"));
    }

    #[test]
    fn durable_serve_snapshot_replay_cycle() {
        use qbdp_market::{DurableMarket, FsyncPolicy};
        let dir = std::env::temp_dir().join(format!("qbdp_cli_durable_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.display().to_string();

        // serve-dir semantics: seed, mutate through the generic CLI path.
        let dm = DurableMarket::create(
            &dir,
            include_str!("../data/figure1.qdp"),
            FsyncPolicy::Never,
        )
        .unwrap();
        assert!(run_command(&dm, "insert T(b2)").contains("1 tuple(s) added"));
        assert!(run_command(&dm, "buy Q(x) :- R(x)").contains("charged"));
        assert!(run_command(&dm, "setprice T.Y=b2 250").contains("now priced"));
        assert!(run_command(&dm, "sync").contains("stable storage"));
        let live_qdp = dm.market().to_qdp();
        drop(dm);

        // replay reports the recovered state and a monotone probe verdict.
        let probes = vec!["Q(x, y) :- R(x), S(x, y), T(y)".to_string()];
        let out = replay_dir(&dir_s, &probes);
        assert!(out.contains("event(s) replayed"), "{out}");
        assert!(out.contains("1 sale(s)"), "{out}");
        assert!(out.contains("monotone (Prop 2.22"), "{out}");

        // snapshot compacts; reopening still reproduces the state.
        let out = snapshot_dir(&dir_s);
        assert!(out.contains("compacted"), "{out}");
        let back = DurableMarket::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(back.market().to_qdp(), live_qdp);
        assert_eq!(back.wal_position(), 0);
        drop(back);

        // replay after compaction: nothing left to replay, state intact.
        let out = replay_dir(&dir_s, &[]);
        assert!(out.contains("0 event(s) replayed"), "{out}");
        assert!(out.contains("1 sale(s)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_unknown_dir_is_an_error() {
        let out = replay_dir("/nonexistent-qbdp-dir", &[]);
        assert!(out.starts_with("error:"), "{out}");
        let out = snapshot_dir("/nonexistent-qbdp-dir");
        assert!(out.starts_with("error:"), "{out}");
    }
}
