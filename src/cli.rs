//! The `qbdp` command-line driver: load a `.qdp` market and run pricing
//! commands against it.
//!
//! ```text
//! qbdp data/figure1.qdp quote    "Q(x, y) :- R(x), S(x, y), T(y)"
//! qbdp data/figure1.qdp price    --batch queries.txt --threads 4
//! qbdp data/figure1.qdp buy      "Q(x, y) :- R(x), S(x, y), T(y)"
//! qbdp data/figure1.qdp classify "Q(x) :- S(x, y)"
//! qbdp data/figure1.qdp catalog
//! qbdp data/figure1.qdp repl     # interactive session on stdin
//! ```
//!
//! The command logic lives here (library-tested); `src/bin/qbdp.rs` is a
//! thin argv/stdin wrapper. The binary accepts two governance flags before
//! the market path: `--deadline-ms N` bounds each pricing call by a
//! wall-clock deadline, and `--sell-degraded` lets the market sell sound
//! upper-bound quotes when a budget runs out (without it, such quotes are
//! refused with a deadline error). Degraded quotes are printed with their
//! `[lower bound, price]` interval.

use qbdp_catalog::{AttrRef, Tuple, Value};
use qbdp_core::dichotomy::classify;
use qbdp_market::{Market, MarketError};
use std::fmt::Write as _;

/// Run one CLI command against a market; returns the text to print.
pub fn run_command(market: &Market, command: &str) -> String {
    let command = command.trim();
    let (verb, rest) = match command.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (command, ""),
    };
    match verb {
        "" => String::new(),
        "help" => help_text(),
        "quote" => quote(market, rest),
        "price" => price_cmd(market, rest),
        "explain" => match market.explain_str(rest) {
            Ok(text) => text,
            Err(e) => render_err(e),
        },
        "save" => {
            let qdp = market.to_qdp();
            match std::fs::write(rest, &qdp) {
                Ok(()) => format!("market saved to {rest} ({} bytes)", qdp.len()),
                Err(e) => format!("cannot write {rest}: {e}"),
            }
        }
        "buy" | "purchase" => buy(market, rest),
        "classify" => classify_cmd(market, rest),
        "insert" => insert(market, rest),
        "catalog" => catalog(market),
        "ledger" => ledger(market),
        other => format!("unknown command `{other}` — try `help`"),
    }
}

/// The REPL: feed lines from `input`, collect output into `output`. Stops
/// at EOF or `quit`.
pub fn repl(market: &Market, input: impl std::io::BufRead, mut output: impl std::io::Write) {
    let _ = writeln!(
        output,
        "qbdp marketplace — `help` lists commands, `quit` exits"
    );
    for line in input.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let _ = writeln!(output, "{}", run_command(market, line));
    }
}

fn help_text() -> String {
    "commands:\n\
     \x20 quote <rule>      price a query, e.g. quote Q(x) :- R(x)\n\
     \x20 price <rule>      same as quote; or batch mode:\n\
     \x20 price --batch <file> [--threads N]\n\
     \x20                   price one rule per line in parallel (N workers;\n\
     \x20                   0 or omitted = one per core)\n\
     \x20 explain <rule>    quote with a full narrative\n\
     \x20 save <path>       write the market back to a .qdp file\n\
     \x20 buy <rule>        purchase: price + answer + ledger entry\n\
     \x20 classify <rule>   dichotomy class (Theorem 3.16)\n\
     \x20 insert R(a, b)    seller-side tuple insertion\n\
     \x20 catalog           schema, columns, price list summary\n\
     \x20 ledger            sales and revenue\n\
     \x20 quit              leave the repl\n\
     binary flags (before the .qdp path):\n\
     \x20 --deadline-ms N   wall-clock budget per pricing call\n\
     \x20 --sell-degraded   sell sound upper-bound quotes on budget exhaustion"
        .to_string()
}

fn quote(market: &Market, rule: &str) -> String {
    match market.quote_str(rule) {
        Ok(q) => {
            let mut out = String::new();
            let _ = writeln!(out, "query : {}", q.query);
            let _ = writeln!(out, "class : {:?}  (engine: {:?})", q.class, q.method);
            let _ = writeln!(out, "price : {}", q.price);
            if !q.quality.is_exact() {
                let _ = writeln!(
                    out,
                    "note  : UPPER BOUND — budget ran out; exact price lies in [{}, {}]",
                    q.lower_bound, q.price
                );
            }
            let _ = writeln!(out, "views :");
            for item in &q.receipt {
                let _ = writeln!(out, "  {item}");
            }
            out.truncate(out.trim_end().len());
            out
        }
        Err(e) => render_err(e),
    }
}

/// `price <rule>` is an alias for `quote`; `price --batch <file>
/// [--threads N]` prices one rule per line of `file` on the market's
/// parallel batch path (`--threads 0` or omitted = one worker per core).
fn price_cmd(market: &Market, rest: &str) -> String {
    if !rest.starts_with("--batch") {
        return quote(market, rest);
    }
    let mut tokens = rest.split_whitespace().skip(1);
    let Some(path) = tokens.next() else {
        return "price --batch expects a file path (one datalog rule per line)".to_string();
    };
    let mut threads: Option<usize> = None;
    while let Some(tok) = tokens.next() {
        match tok {
            "--threads" => match tokens.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = Some(n),
                None => return "--threads expects an integer (0 = one per core)".to_string(),
            },
            other => return format!("unknown batch flag `{other}`"),
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return format!("cannot read {path}: {e}"),
    };
    let rules: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if rules.is_empty() {
        return format!("{path}: no queries (one datalog rule per line; # comments)");
    }
    if let Some(n) = threads {
        let mut policy = market.policy();
        policy.batch_workers = n;
        market.set_policy(policy);
    }
    let results = market.quote_batch(&rules);
    let mut out = String::new();
    let mut priced = 0usize;
    for (rule, res) in rules.iter().zip(&results) {
        match res {
            Ok(q) => {
                priced += 1;
                let tag = if q.quality.is_exact() {
                    ""
                } else {
                    "  [upper bound]"
                };
                let _ = writeln!(out, "{:>10}  {}{tag}", q.price.to_string(), q.query);
            }
            Err(e) => {
                let _ = writeln!(out, "{:>10}  {rule} — {e}", "error");
            }
        }
    }
    let _ = write!(out, "priced {priced}/{} queries", rules.len());
    out
}

fn buy(market: &Market, rule: &str) -> String {
    match market.purchase_str(rule) {
        Ok(p) => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "charged {} (transaction #{})",
                p.quote.price, p.transaction_id
            );
            let _ = writeln!(out, "{} answer tuple(s):", p.answer.len());
            for t in p.answer.iter().take(20) {
                let _ = writeln!(out, "  {t}");
            }
            if p.answer.len() > 20 {
                let _ = writeln!(out, "  … {} more", p.answer.len() - 20);
            }
            out.truncate(out.trim_end().len());
            out
        }
        Err(e) => render_err(e),
    }
}

fn classify_cmd(market: &Market, rule: &str) -> String {
    market.with_pricer(|pricer| {
        match qbdp_query::parser::parse_rule(pricer.catalog().schema(), rule) {
            Ok(q) => {
                let class = classify(&q);
                let ptime = if class.is_ptime() {
                    "PTIME"
                } else {
                    "NP-complete / exact engines"
                };
                format!("{class:?} — {ptime}")
            }
            Err(e) => format!("parse error: {e}"),
        }
    })
}

fn insert(market: &Market, fact: &str) -> String {
    // Syntax: R(a, b).
    let Some(open) = fact.find('(') else {
        return "insert expects `Relation(v1, v2, …)`".to_string();
    };
    if !fact.ends_with(')') {
        return "insert expects `Relation(v1, v2, …)`".to_string();
    }
    let rel = fact[..open].trim();
    let values: Option<Vec<Value>> = fact[open + 1..fact.len() - 1]
        .split(',')
        .map(|s| Value::parse_literal(s.trim()))
        .collect();
    let Some(values) = values else {
        return "bad value in tuple".to_string();
    };
    match market.insert(rel, [Tuple::new(values)]) {
        Ok(added) => format!("{added} tuple(s) added to {rel}"),
        Err(e) => render_err(e),
    }
}

fn catalog(market: &Market) -> String {
    market.with_pricer(|pricer| {
        let mut out = String::new();
        let catalog = pricer.catalog();
        let schema = catalog.schema();
        for (rid, rel) in schema.iter() {
            let _ = writeln!(
                out,
                "{}({})  — {} tuple(s)",
                rel.name(),
                rel.attrs().join(", "),
                pricer.instance().relation(rid).len()
            );
            for (pos, attr) in rel.attrs().iter().enumerate() {
                let aref = AttrRef::new(rid, pos as u32);
                let col = catalog.column(aref);
                let priced = pricer.prices().views_on(aref).count();
                let _ = writeln!(
                    out,
                    "  .{attr:12} column of {:3} value(s), {priced:3} priced",
                    col.len()
                );
            }
        }
        let _ = write!(
            out,
            "price list: {} views priced; dataset sellable: {}",
            pricer.prices().len(),
            pricer.prices().sells_identity(catalog)
        );
        out
    })
}

fn ledger(market: &Market) -> String {
    market.with_ledger(|l| format!("{} sale(s), revenue {}", l.sales(), l.revenue()))
}

fn render_err(e: MarketError) -> String {
    format!("error: {e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> Market {
        Market::open_qdp(include_str!("../data/figure1.qdp")).unwrap()
    }

    #[test]
    fn quote_and_buy() {
        let m = market();
        let out = run_command(&m, "quote Q(x, y) :- R(x), S(x, y), T(y)");
        assert!(out.contains("price : $6.00"), "{out}");
        assert!(out.contains("σ[R.X=a1]"));
        let out = run_command(&m, "buy Q(x, y) :- R(x), S(x, y), T(y)");
        assert!(out.contains("charged $6.00"), "{out}");
        assert!(out.contains("(a1, b1)"));
        let out = run_command(&m, "ledger");
        assert!(out.contains("1 sale(s), revenue $6.00"), "{out}");
    }

    #[test]
    fn classify_and_catalog() {
        let m = market();
        let out = run_command(&m, "classify Q(x, y) :- R(x), S(x, y), T(y)");
        assert!(out.contains("GeneralizedChain"), "{out}");
        let out = run_command(&m, "classify Q(x) :- S(x, y)");
        assert!(out.contains("NpComplete"), "{out}");
        let out = run_command(&m, "catalog");
        assert!(out.contains("S(X, Y)"), "{out}");
        assert!(out.contains("dataset sellable: true"), "{out}");
    }

    #[test]
    fn insert_via_cli() {
        let m = market();
        let out = run_command(&m, "insert T(b2)");
        assert!(out.contains("1 tuple(s) added"), "{out}");
        let out = run_command(&m, "insert T(nope)");
        assert!(out.contains("error"), "{out}");
        let out = run_command(&m, "insert garbage");
        assert!(out.contains("insert expects"), "{out}");
    }

    #[test]
    fn price_is_a_quote_alias() {
        let m = market();
        let out = run_command(&m, "price Q(x, y) :- R(x), S(x, y), T(y)");
        assert!(out.contains("price : $6.00"), "{out}");
    }

    #[test]
    fn price_batch_from_file() {
        let m = market();
        let path = std::env::temp_dir().join("qbdp_cli_batch_test.txt");
        std::fs::write(
            &path,
            "# batch of three, one bad\n\
             Q(x, y) :- R(x), S(x, y), T(y)\n\
             \n\
             Q(x) :- R(x)\n\
             not a rule\n",
        )
        .unwrap();
        let out = run_command(&m, &format!("price --batch {} --threads 2", path.display()));
        std::fs::remove_file(&path).ok();
        assert!(out.contains("$6.00"), "{out}");
        assert!(out.contains("error"), "{out}");
        assert!(out.contains("priced 2/3 queries"), "{out}");
    }

    #[test]
    fn price_batch_flag_errors_are_friendly() {
        let m = market();
        assert!(run_command(&m, "price --batch").contains("expects a file path"));
        assert!(run_command(&m, "price --batch /nonexistent-qbdp").contains("cannot read"));
        let out = run_command(&m, "price --batch x --threads many");
        assert!(out.contains("--threads expects"), "{out}");
    }

    #[test]
    fn unknown_and_help() {
        let m = market();
        assert!(run_command(&m, "frobnicate").contains("unknown command"));
        assert!(run_command(&m, "help").contains("quote <rule>"));
        assert_eq!(run_command(&m, ""), "");
    }

    #[test]
    fn repl_session() {
        let m = market();
        let input = "help\n# a comment\nquote Q(x) :- R(x)\nquit\nnever reached\n";
        let mut out = Vec::new();
        repl(&m, input.as_bytes(), &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("commands:"));
        assert!(text.contains("price :"));
        assert!(!text.contains("never reached"));
    }

    #[test]
    fn mini_market_file_loads() {
        let m = Market::open_qdp(include_str!("../data/mini_market.qdp")).unwrap();
        let out = run_command(&m, "quote Q(n, s) :- Company(n, s), Deal(n, z)");
        assert!(out.contains("price"), "{out}");
    }
}
