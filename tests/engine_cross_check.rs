//! Three-engine cross-check: on ~200 seeded random instances, the
//! subset-enumeration engine (Equation 2 verbatim), the certificate
//! hitting-set engine, and the PTIME dispatch path (GChQ Min-Cut /
//! Theorem 3.15 cycle algorithm) must produce the *same* `Price`, to the
//! cent. The three implementations share no pricing code above the
//! determinacy oracle, so exact agreement across random data is strong
//! evidence each one computes the arbitrage-price of Equation 2.
//!
//! Additionally, every query in this suite is PTIME-classified (Theorem
//! 3.16), and we assert the dispatcher really routed it to a PTIME
//! engine — a silent fallback to exact search would keep prices right
//! while voiding the Theorem 3.7/3.15 complexity claim.

use qbdp::catalog::{Catalog, CatalogBuilder, Column, Instance, Tuple, Value};
use qbdp::core::exact::certificates::{certificate_price, CertificateConfig};
use qbdp::core::exact::subset::{subset_price, SubsetConfig};
use qbdp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Setup {
    catalog: Catalog,
    instance: Instance,
    prices: PriceList,
}

/// Random instance + fully covering random price list over `rels`.
/// Column values are `0..n`; every candidate tuple appears with
/// probability `density`. Full coverage keeps prices finite, and random
/// per-view prices (1–5 dollars) make min-cut/hitting-set ties rare, so
/// agreement is a real test rather than a constant-price coincidence.
fn random_setup(rng: &mut StdRng, rels: &[(&str, usize)], n: i64, density: f64) -> Setup {
    let col = Column::int_range(0, n);
    let mut builder = CatalogBuilder::new();
    for &(name, arity) in rels {
        let attrs: Vec<String> = (0..arity).map(|i| format!("A{i}")).collect();
        let attr_refs: Vec<(&str, Column)> =
            attrs.iter().map(|a| (a.as_str(), col.clone())).collect();
        builder = builder.relation(name, &attr_refs);
    }
    let catalog = builder.build().unwrap();
    let mut instance = catalog.empty_instance();
    for (rid, rel) in catalog.schema().iter() {
        let arity = rel.arity();
        let total = (n as usize).pow(arity as u32);
        for idx in 0..total {
            if rng.gen_bool(density) {
                let mut vals = Vec::with_capacity(arity);
                let mut rest = idx;
                for _ in 0..arity {
                    vals.push(Value::Int((rest % n as usize) as i64));
                    rest /= n as usize;
                }
                instance.insert(rid, Tuple::new(vals)).unwrap();
            }
        }
    }
    let mut prices = PriceList::new();
    for attr in catalog.schema().all_attrs() {
        for v in catalog.column(attr).iter() {
            prices.set(
                SelectionView::new(attr, v.clone()),
                Price::dollars(rng.gen_range(1..=5)),
            );
        }
    }
    Setup {
        catalog,
        instance,
        prices,
    }
}

/// Does the dispatcher's engine choice match the PTIME classification?
fn is_ptime_method(m: &PricingMethod) -> bool {
    match m {
        PricingMethod::ChainFlow
        | PricingMethod::ChainBundleFlow
        | PricingMethod::CycleCertificates
        | PricingMethod::BooleanWitness
        | PricingMethod::Trivial => true,
        PricingMethod::BooleanEmpty(inner) => is_ptime_method(inner),
        PricingMethod::Disconnected(parts) => parts.iter().all(is_ptime_method),
        PricingMethod::ExactCertificates
        | PricingMethod::ExactSubset
        | PricingMethod::StructuralCover => false,
    }
}

/// Price `query` three independent ways and demand cent-exact agreement.
fn cross_check(setup: &Setup, query: &str, case: &str) {
    let q = parse_rule(setup.catalog.schema(), query).unwrap();
    let class = classify(&q);
    assert!(
        class.is_ptime(),
        "{case}: `{query}` classified {class:?}, suite expects PTIME queries"
    );

    // Engine 1: the dispatch path (Min-Cut for GChQ, Theorem 3.15 for
    // cycles) — and prove it really took a PTIME engine.
    let pricer = Pricer::new(
        setup.catalog.clone(),
        setup.instance.clone(),
        setup.prices.clone(),
    )
    .unwrap();
    let quote = pricer.price_cq(&q).unwrap();
    assert!(
        quote.quality.is_exact(),
        "{case}: unlimited budget must give an exact quote"
    );
    assert!(
        is_ptime_method(&quote.method),
        "{case}: PTIME-classified `{query}` priced by non-PTIME engine {:?}",
        quote.method
    );

    // Engine 2: subset enumeration over Equation 2.
    let bundle = Bundle::single(Ucq::single(q.clone()));
    let subset = subset_price(
        &setup.catalog,
        &setup.instance,
        &setup.prices,
        &bundle,
        SubsetConfig::default(),
    )
    .unwrap();

    // Engine 3: weighted hitting set over determinacy certificates.
    let cert = certificate_price(
        &setup.catalog,
        &setup.instance,
        &setup.prices,
        &q,
        CertificateConfig::default(),
    )
    .unwrap();

    assert_eq!(
        quote.price, subset.price,
        "{case}: dispatch vs subset enumeration on `{query}`"
    );
    assert_eq!(
        subset.price, cert.price,
        "{case}: subset enumeration vs hitting set on `{query}`"
    );
}

/// 80 chain instances (Theorem 3.7 pipeline): the Figure-1 shape
/// R(x), S(x,y), T(y) across densities and price draws. 8 priced views
/// at n = 2, 12 at n = 3 — both within the subset engine's cap.
#[test]
fn chains_three_engines_agree() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..80 {
        let density = [0.15, 0.35, 0.6, 0.85][case % 4];
        let n = if case % 2 == 0 { 2 } else { 3 };
        let setup = random_setup(&mut rng, &[("R", 1), ("S", 2), ("T", 1)], n, density);
        cross_check(
            &setup,
            "Q(x, y) :- R(x), S(x, y), T(y)",
            &format!("chain/{case}"),
        );
    }
}

/// 60 star instances: R(x,y), S(x,z), T(x) — y and z hang, exercising
/// Step 3 of the normalization before the Min-Cut.
#[test]
fn stars_three_engines_agree() {
    let mut rng = StdRng::seed_from_u64(0x5A5A);
    for case in 0..60 {
        let density = [0.2, 0.45, 0.75][case % 3];
        let setup = random_setup(&mut rng, &[("R", 2), ("S", 2), ("T", 1)], 2, density);
        cross_check(
            &setup,
            "Q(x, y, z) :- R(x, y), S(x, z), T(x)",
            &format!("star/{case}"),
        );
    }
}

/// 60 cycle instances: C_3 = P0(x,y), P1(y,z), P2(z,x), the smallest
/// query priced by the Theorem 3.15 algorithm (12 priced views at n = 2).
#[test]
fn cycles_three_engines_agree() {
    let mut rng = StdRng::seed_from_u64(0xCCCC);
    for case in 0..60 {
        let density = [0.2, 0.5, 0.8][case % 3];
        let setup = random_setup(&mut rng, &[("P0", 2), ("P1", 2), ("P2", 2)], 2, density);
        cross_check(
            &setup,
            "Q(x, y, z) :- P0(x, y), P1(y, z), P2(z, x)",
            &format!("cycle/{case}"),
        );
    }
}
