//! Resource-governance acceptance tests: deadlines on NP-hard queries,
//! degraded-quote soundness, panic isolation, and admission control.
//!
//! Timing assertions use a 2× tolerance in release builds (the CI deadline
//! job runs these with `--release`); debug builds get a wider factor so
//! tier-1 `cargo test` stays deterministic on slow machines — wide enough
//! to absorb unoptimized code, still tight enough to catch a hang.

use qbdp::core::fault;
use qbdp::prelude::*;
use qbdp::workload::{dbgen, prices as wprices, queries};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Deadline-overshoot tolerance factor (× the deadline).
fn tolerance() -> u32 {
    if cfg!(debug_assertions) {
        20
    } else {
        2
    }
}

/// A ~10k-tuple Zipf-skewed instance for an NP-hard query family.
fn big_instance(qs: &queries::QuerySet) -> Instance {
    let mut rng = StdRng::seed_from_u64(42);
    let d = dbgen::populate_zipf(&qs.catalog, &mut rng, 40_000, 0.8).unwrap();
    assert!(
        d.total_tuples() >= 10_000,
        "instance too small: {} tuples",
        d.total_tuples()
    );
    d
}

/// Acceptance: an H4-class query (`H4(x) :- R(x, y)`, NP-complete by
/// Theorem 3.5) against a 10k-tuple instance with a 50 ms deadline returns
/// a `QuoteQuality::UpperBound` quote — not an error, not a hang — within
/// tolerance of the deadline.
#[test]
fn h4_large_instance_meets_deadline() {
    let qs = queries::h4_schema(199).unwrap();
    let d = big_instance(&qs);
    let prices = wprices::uniform(&qs.catalog, Price::dollars(1));
    let market = Market::open(qs.catalog.clone(), d, prices).unwrap();
    let deadline = Duration::from_millis(50);
    market.set_policy(MarketPolicy {
        deadline: Some(deadline),
        sell_degraded: true,
        ..MarketPolicy::default()
    });

    let start = Instant::now();
    let quote = market.quote_str("H4(x) :- R(x, y)").unwrap();
    let elapsed = start.elapsed();

    assert!(!quote.quality.is_exact(), "expected a degraded quote");
    assert!(quote.price.is_finite());
    assert!(quote.lower_bound <= quote.price);
    assert!(
        elapsed <= deadline * tolerance(),
        "quote took {elapsed:?}, deadline {deadline:?}"
    );
}

/// Same discipline for H2 (`H2(x,y) :- P(x), R(x,y), S(x,y)`, the hard
/// full-CQ shape): the certificate engine is interrupted mid-enumeration
/// and must still return a sound interval promptly.
#[test]
fn h2_large_instance_meets_deadline() {
    let qs = queries::h2_schema(199).unwrap();
    let d = big_instance(&qs);
    let prices = wprices::uniform(&qs.catalog, Price::dollars(1));
    let pricer = Pricer::new(qs.catalog.clone(), d, prices).unwrap();
    let deadline = Duration::from_millis(50);
    let budget = Budget::with_deadline(deadline);

    let start = Instant::now();
    let quote = pricer.price_cq_within(&qs.query, &budget).unwrap();
    let elapsed = start.elapsed();

    assert!(!quote.quality.is_exact(), "expected a degraded quote");
    assert!(quote.price.is_finite());
    assert!(quote.lower_bound <= quote.price);
    assert!(
        elapsed <= deadline * tolerance(),
        "quote took {elapsed:?}, deadline {deadline:?}"
    );
}

/// Soundness: on a small instance where the exact price is computable, a
/// budget-starved quote is an over-estimate (selling at it creates no
/// arbitrage) and its reported lower bound really lower-bounds the truth.
#[test]
fn degraded_quote_bounds_the_exact_price() {
    for (name, qs) in [
        ("h2", queries::h2_schema(3).unwrap()),
        ("h4", queries::h4_schema(3).unwrap()),
        ("chain", queries::chain_schema(2, 3).unwrap()),
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let d = dbgen::populate_random(&qs.catalog, &mut rng, 12).unwrap();
        let prices = wprices::uniform(&qs.catalog, Price::dollars(1));
        let pricer = Pricer::new(qs.catalog.clone(), d, prices).unwrap();

        let exact = pricer.price_cq(&qs.query).unwrap();
        assert!(
            exact.quality.is_exact(),
            "{name}: unlimited budget degraded"
        );

        for fuel in [1, 64, 1024] {
            let degraded = pricer
                .price_cq_within(&qs.query, &Budget::with_fuel(fuel))
                .unwrap();
            assert!(
                degraded.price >= exact.price,
                "{name}/fuel={fuel}: degraded {} below exact {}",
                degraded.price,
                exact.price
            );
            assert!(
                degraded.lower_bound <= exact.price,
                "{name}/fuel={fuel}: lower bound {} above exact {}",
                degraded.lower_bound,
                exact.price
            );
        }
    }
}

const FIG1_QDP: &str = include_str!("../data/figure1.qdp");

/// Acceptance: an injected engine panic is contained at the market
/// boundary as `MarketError::Internal`, and the market serves the very
/// next quote normally.
#[test]
fn market_survives_engine_panic() {
    let market = Market::open_qdp(FIG1_QDP).unwrap();
    let q = "Q(x, y) :- R(x), S(x, y), T(y)";

    fault::arm_panic();
    let err = market.quote_str(q);
    assert!(
        matches!(err, Err(MarketError::Internal(_))),
        "expected Internal, got {err:?}"
    );

    // The trap is one-shot; the market must keep serving.
    let quote = market.quote_str(q).unwrap();
    assert_eq!(quote.price, Price::dollars(6));
    let purchase = market.purchase_str(q).unwrap();
    assert_eq!(purchase.quote.price, Price::dollars(6));
}

/// Acceptance: in a batch, an injected engine panic poisons only its own
/// slot — batch-mates still get their quotes, and the next batch is
/// completely healthy.
#[test]
fn injected_panic_poisons_only_its_own_batch_slot() {
    let market = Market::open_qdp(FIG1_QDP).unwrap();
    // One worker makes job order deterministic: slot 0 trips the one-shot
    // trap, the rest price normally.
    market.set_policy(MarketPolicy {
        batch_workers: 1,
        ..MarketPolicy::default()
    });
    let queries = [
        "Q(x, y) :- R(x), S(x, y), T(y)",
        "Q(x) :- R(x)",
        "Q(y) :- T(y)",
    ];

    fault::arm_panic();
    let out = market.quote_batch(&queries);
    assert!(
        matches!(out[0], Err(MarketError::Internal(_))),
        "expected slot 0 poisoned, got {:?}",
        out[0]
    );
    assert!(out[1].is_ok(), "{:?}", out[1]);
    assert!(out[2].is_ok(), "{:?}", out[2]);

    // The trap is one-shot; the next batch is fully healthy.
    let healthy = market.quote_batch(&queries);
    assert!(healthy.iter().all(|r| r.is_ok()));
    assert_eq!(
        healthy[0].as_ref().unwrap().price,
        Price::dollars(6),
        "post-panic batch must price Figure 1 exactly"
    );
}

/// Policy: with `sell_degraded` off (the default), a budget-starved quote
/// is refused with `DeadlineExceeded` instead of silently over-charging;
/// flipping the policy sells the same quote as an upper bound.
#[test]
fn sell_degraded_policy_gates_upper_bound_quotes() {
    let qs = queries::h4_schema(30).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let d = dbgen::populate_random(&qs.catalog, &mut rng, 200).unwrap();
    let prices = wprices::uniform(&qs.catalog, Price::dollars(1));
    let market = Market::open(qs.catalog.clone(), d, prices).unwrap();

    market.set_policy(MarketPolicy {
        fuel: Some(1),
        ..MarketPolicy::default()
    });
    let err = market.quote_str("H4(x) :- R(x, y)");
    assert!(
        matches!(err, Err(MarketError::DeadlineExceeded)),
        "expected DeadlineExceeded, got {err:?}"
    );

    market.set_policy(MarketPolicy {
        fuel: Some(1),
        sell_degraded: true,
        ..MarketPolicy::default()
    });
    let quote = market.quote_str("H4(x) :- R(x, y)").unwrap();
    assert!(!quote.quality.is_exact());
    assert!(quote.price.is_finite());
}

/// Admission control: a zero-capacity market refuses with `Overloaded`.
#[test]
fn admission_cap_refuses_excess_quotes() {
    let market = Market::open_qdp(FIG1_QDP).unwrap();
    market.set_policy(MarketPolicy {
        max_in_flight: 0,
        ..MarketPolicy::default()
    });
    let err = market.quote_str("Q(x) :- R(x)");
    assert!(matches!(err, Err(MarketError::Overloaded)), "{err:?}");

    // Restoring capacity restores service (slots were released on error).
    market.set_policy(MarketPolicy::default());
    assert!(market.quote_str("Q(x) :- R(x)").is_ok());
}
