//! Differential battery for the incremental pricing engine: a market
//! serving through the plan cache + residual warm starts
//! (`MarketPolicy::incremental`) must be *observationally identical* to
//! a shadow market pricing every quote cold. Random catalogs of the
//! chain shape × random update streams (`set_price` / `insert`
//! interleaved with quotes) are replayed against both markets; every
//! quote must match field for field — price, lower bound, receipt,
//! views, method, class, and `QuoteQuality` — and every error must
//! match variant for variant. A separate run exercises tight fuel
//! budgets with `sell_degraded`, where the degraded `[lower, upper]`
//! intervals must also coincide (the incremental path refuses budgeted
//! policies and prices cold, and this is what holds it to that).
//!
//! The headline test is a seeded exhaustion loop with an explicit
//! comparison counter: in release mode it must certify at least 10,000
//! quote comparisons (the acceptance bar), with a smaller stream count
//! under `debug_assertions` so `cargo test` stays quick.

use proptest::prelude::*;
use qbdp::prelude::*;

const N: i64 = 6; // column size: {0, …, 5}

/// xorshift64* — deterministic, dependency-free stream generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn chain_catalog() -> Catalog {
    let col = Column::int_range(0, N);
    CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["Y"], &col)
        .build()
        .unwrap()
}

/// Uniform starting price list: cheap enough that the random revisions
/// below keep the list arbitrage-free (see `random_set_price`).
fn base_prices(catalog: &Catalog) -> PriceList {
    let mut prices = PriceList::new();
    for attr in catalog.schema().all_attrs() {
        let name = catalog.schema().attr_display(attr);
        let cents = if name.starts_with("S.") { 150 } else { 100 };
        for v in catalog.column(attr).iter() {
            prices.set(SelectionView::new(attr, v.clone()), Price::cents(cents));
        }
    }
    prices
}

/// Query pool: every engine path the plan cache fronts. The chain join
/// exercises the GChQ flow network (and thus residual warm starts);
/// full single-relation queries take the certificate path; the
/// repeated-variable and constant-carrying shapes exercise the
/// transformed-attribute pre-seeding; the projection and boolean
/// shapes are priced outside the flow engine entirely.
const QUERIES: &[&str] = &[
    "Q(x, y) :- R(x), S(x, y), T(y)",
    "Q(x) :- R(x)",
    "Q(y) :- T(y)",
    "Q(x, y) :- S(x, y)",
    "Q(x) :- S(x, x)",
    "Q(y) :- S(0, y)",
    "Q(x) :- S(x, y)",
    "Q() :- S(x, y)",
    "Q() :- R(x), T(y)",
];

/// Open the warm/cold market pair over identical state. Only the warm
/// one serves through the plan cache.
fn market_pair() -> (Market, Market) {
    let catalog = chain_catalog();
    let instance = catalog.empty_instance();
    let prices = base_prices(&catalog);
    let warm = Market::open(catalog.clone(), instance.clone(), prices.clone()).unwrap();
    let cold = Market::open(catalog, instance, prices).unwrap();
    warm.set_policy(MarketPolicy {
        incremental: true,
        ..MarketPolicy::default()
    });
    (warm, cold)
}

/// Every observable field of a quote must agree — bit-identical, not
/// merely equal prices.
#[track_caller]
fn assert_same_quote(query: &str, warm: &MarketQuote, cold: &MarketQuote) {
    assert_eq!(warm.price, cold.price, "price drift on `{query}`");
    assert_eq!(
        warm.lower_bound, cold.lower_bound,
        "lower-bound drift on `{query}`"
    );
    assert_eq!(warm.quality, cold.quality, "quality drift on `{query}`");
    assert_eq!(warm.method, cold.method, "method drift on `{query}`");
    assert_eq!(warm.class, cold.class, "class drift on `{query}`");
    assert_eq!(warm.views, cold.views, "view-set drift on `{query}`");
    assert_eq!(warm.receipt, cold.receipt, "receipt drift on `{query}`");
    assert_eq!(warm.query, cold.query, "rendering drift on `{query}`");
}

/// Quote `query` on both markets and demand identical outcomes
/// (matching quotes, or matching error variants). Returns 1 for the
/// comparison made.
#[track_caller]
fn compare_quote(warm: &Market, cold: &Market, query: &str) -> u64 {
    match (warm.quote_str(query), cold.quote_str(query)) {
        (Ok(w), Ok(c)) => assert_same_quote(query, &w, &c),
        (w, c) => {
            let (w, c) = (format!("{w:?}"), format!("{c:?}"));
            assert_eq!(w, c, "outcome drift on `{query}`");
        }
    }
    1
}

/// Revise one price on both markets, identically. Revisions on the
/// single-attribute relations (`R.X`, `T.Y`) draw from 50–449¢ — any
/// price is arbitrage-free there, since no bundle of other views covers
/// a selection on a relation's only column. Revisions on `S` stay in
/// 100–299¢: every alternative cover of an `S` selection needs all six
/// views of the other attribute (≥ 600¢ at the 100¢ floor), so no
/// revision in range can introduce arbitrage. Out of caution the two
/// outcomes are still compared rather than unwrapped.
fn random_set_price(rng: &mut Rng, warm: &Market, cold: &Market) {
    let (view, cents) = match rng.below(4) {
        0 => (format!("R.X={}", rng.below(N as u64)), 50 + rng.below(400)),
        1 => (format!("T.Y={}", rng.below(N as u64)), 50 + rng.below(400)),
        2 => (format!("S.X={}", rng.below(N as u64)), 100 + rng.below(200)),
        _ => (format!("S.Y={}", rng.below(N as u64)), 100 + rng.below(200)),
    };
    let w = warm.set_price(&view, Price::cents(cents));
    let c = cold.set_price(&view, Price::cents(cents));
    assert_eq!(
        w.is_ok(),
        c.is_ok(),
        "set_price({view}) diverged: {w:?} vs {c:?}"
    );
}

/// Insert one random tuple into both markets, identically.
fn random_insert(rng: &mut Rng, warm: &Market, cold: &Market) {
    let (a, b) = (rng.below(N as u64) as i64, rng.below(N as u64) as i64);
    let (rel, tuple) = match rng.below(3) {
        0 => ("R", tuple![a]),
        1 => ("S", tuple![a, b]),
        _ => ("T", tuple![b]),
    };
    let w = warm.insert(rel, [tuple.clone()]);
    let c = cold.insert(rel, [tuple]);
    assert_eq!(
        format!("{w:?}"),
        format!("{c:?}"),
        "insert into {rel} diverged"
    );
}

/// Replay one random update stream against a fresh market pair,
/// returning the number of quote comparisons performed.
fn run_stream(seed: u64, ops: usize) -> u64 {
    let mut rng = Rng(seed | 1);
    let (warm, cold) = market_pair();
    let mut comparisons = 0;
    for _ in 0..ops {
        match rng.below(5) {
            // Updates outnumber quotes 3:2 so plans are repeatedly
            // invalidated/repriced, not filled once and served forever.
            0 | 1 => random_set_price(&mut rng, &warm, &cold),
            2 => random_insert(&mut rng, &warm, &cold),
            _ => {}
        }
        // Two random quotes after every op: one immediately repeated
        // shape (the warm-start / cache-hit path), one fresh draw.
        let q = QUERIES[rng.below(QUERIES.len() as u64) as usize];
        comparisons += compare_quote(&warm, &cold, q);
        comparisons += compare_quote(&warm, &cold, q);
    }
    // Final sweep: after the stream settles, every pool query must
    // agree — catches staleness that the random draws happened to miss.
    for q in QUERIES {
        comparisons += compare_quote(&warm, &cold, q);
    }
    // The warm market must actually have exercised the incremental
    // engine, or the battery proves nothing.
    let stats = warm.plan_stats();
    assert!(
        stats.hits + stats.misses + stats.warm_reprices > 0,
        "incremental path never engaged: {stats:?}"
    );
    comparisons
}

/// The headline battery: ≥ 10,000 randomized update-stream comparisons
/// in release mode (the acceptance bar), a fast subset under debug.
#[test]
fn warm_start_quotes_match_cold_start_over_random_update_streams() {
    let streams: u64 = if cfg!(debug_assertions) { 24 } else { 360 };
    let mut comparisons = 0u64;
    for stream in 0..streams {
        comparisons += run_stream(0x9E37_79B9_7F4A_7C15 ^ (stream * 0x0123_4567_89AB_CDEF), 12);
    }
    if !cfg!(debug_assertions) {
        assert!(
            comparisons >= 10_000,
            "only {comparisons} warm/cold comparisons — below the 10k acceptance bar"
        );
    }
}

/// Under a fuel budget with `sell_degraded`, the `incremental` flag
/// must be inert: budgeted policies price cold on both markets, so the
/// degraded `[lower_bound, price]` intervals and `QuoteQuality` tags
/// must be identical — not merely both sound.
#[test]
fn degraded_intervals_match_under_tight_budgets() {
    let mut rng = Rng(0xD1F_FEED);
    for trial in 0..8u64 {
        let (warm, cold) = market_pair();
        let fuel = trial * 37; // 0 (instant exhaustion) through generous
        for market in [&warm, &cold] {
            let mut policy = market.policy();
            policy.fuel = Some(fuel);
            policy.sell_degraded = true;
            market.set_policy(policy);
        }
        for _ in 0..4 {
            random_insert(&mut rng, &warm, &cold);
        }
        for q in QUERIES {
            match (warm.quote_str(q), cold.quote_str(q)) {
                (Ok(w), Ok(c)) => {
                    assert_same_quote(q, &w, &c);
                    if w.quality == QuoteQuality::UpperBound {
                        // The degraded interval, spelled out: both ends.
                        assert_eq!(w.lower_bound, c.lower_bound);
                        assert_eq!(w.price, c.price);
                    }
                }
                (w, c) => assert_eq!(format!("{w:?}"), format!("{c:?}"), "on `{q}`"),
            }
        }
        // The plan cache must have refused budgeted service entirely.
        let stats = warm.plan_stats();
        assert_eq!(
            stats.hits + stats.misses + stats.warm_reprices,
            0,
            "plan cache served under a fuel budget: {stats:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Proptest wrapper over the same battery: shrinking finds the
    /// minimal op count on a divergence, which the seeded loop cannot.
    #[test]
    fn warm_cold_equivalence_holds_for_proptest_streams(
        seed in any::<u64>(),
        ops in 1usize..10,
    ) {
        run_stream(seed, ops);
    }
}
