//! Observability acceptance (DESIGN §4.6): the three user-visible
//! claims of the telemetry subsystem, driven end-to-end through the
//! CLI command layer the way an operator would reach them.
//!
//! 1. `price --trace` emits the complete pipeline span tree for the
//!    paper's Figure-1 query;
//! 2. after a workload, `stats` exports non-zero metrics in both the
//!    Prometheus text format and JSON;
//! 3. a forced degraded quote lands in the flight recorder and is
//!    visible via `stats --flight`.
//!
//! Telemetry state (the enabled flag, the registry, the flight ring) is
//! process-global, so all three claims live in ONE test fn in its own
//! integration binary: nothing else in this process toggles the flag
//! concurrently, and the counters this test reads are its own.

use qbdp::cli;
use qbdp::prelude::*;
use qbdp::workload::{dbgen, prices as wprices, queries};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const FIG1_QDP: &str = include_str!("../data/figure1.qdp");

#[test]
fn telemetry_acceptance_end_to_end() {
    // --- 1. the pipeline trace for the Figure-1 chain query. -------
    let market = Market::open_qdp(FIG1_QDP).unwrap();
    market.set_policy(MarketPolicy {
        telemetry: true,
        ..MarketPolicy::default()
    });
    let out = cli::run_command(&market, "price --trace Q(x, y) :- R(x), S(x, y), T(y)");
    assert!(out.contains("price : $6.00"), "quote itself wrong:\n{out}");
    for span in [
        r#""span":"cache_lookup","detail":"miss""#,
        r#""span":"classify","detail":"gchq""#,
        r#""span":"normalize","detail":"steps_1_3""#,
        r#""span":"flow_solve","detail":"done""#,
    ] {
        assert!(out.contains(span), "missing span `{span}` in:\n{out}");
    }

    // --- 2. non-zero metrics in both export formats. ---------------
    // The trace run above already served one quote through one cache
    // miss; a second quote hits the cache, so both sides of the
    // hit/miss tally are provably non-zero, not just "some counter".
    let quote = market.quote_str("Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
    assert!(quote.quality.is_exact());
    let prom = cli::run_command(&market, "stats");
    for needle in [
        "# TYPE qbdp_market_quotes_total counter",
        "qbdp_market_cache_hits_total 1",
        "qbdp_market_quote_latency_us_count",
    ] {
        assert!(prom.contains(needle), "missing `{needle}` in:\n{prom}");
    }
    assert!(
        !prom.contains("qbdp_market_quotes_total 0"),
        "quotes counter stayed zero:\n{prom}"
    );
    let json = cli::run_command(&market, "stats --json");
    assert!(
        json.contains(r#""qbdp_market_cache_hits_total": 1"#)
            || json.contains(r#""qbdp_market_cache_hits_total":1"#),
        "cache-hit tally missing from JSON:\n{json}"
    );
    assert!(
        json.contains("qbdp_market_quote_latency_us"),
        "latency histogram missing from JSON:\n{json}"
    );

    // --- 3. a forced degraded quote reaches the flight recorder. ---
    let qs = queries::h4_schema(199).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let d = dbgen::populate_zipf(&qs.catalog, &mut rng, 40_000, 0.8).unwrap();
    let hard = Market::open(
        qs.catalog.clone(),
        d,
        wprices::uniform(&qs.catalog, Price::dollars(1)),
    )
    .unwrap();
    hard.set_policy(MarketPolicy {
        telemetry: true,
        deadline: Some(Duration::from_millis(1)),
        sell_degraded: true,
        ..MarketPolicy::default()
    });
    let degraded = hard.quote_str("H4(x) :- R(x, y)").unwrap();
    assert!(!degraded.quality.is_exact(), "expected a degraded quote");
    let flight = cli::run_command(&hard, "stats --flight");
    assert!(
        flight.contains(r#""why":"degraded""#),
        "degraded quote not captured by the flight recorder:\n{flight}"
    );
    assert!(
        flight.contains("H4(x) :- R(x, y)"),
        "flight record lost the query text:\n{flight}"
    );

    // Leave the process-global flag the way the next binary expects it.
    hard.set_policy(MarketPolicy::default());
    assert!(!qbdp_obs::enabled());
}
