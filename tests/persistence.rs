//! Durable-state round trips: `.qdp` text serialization, snapshot +
//! write-ahead-log recovery, kill-at-any-byte prefix consistency, and
//! checked-arithmetic refusal of overflowing histories.
//!
//! The contract under test: a recovered market is **indistinguishable**
//! from the live one — same quotes to the cent with the same quality,
//! same revenue and ledger, and a cold quote cache at epoch 0 (it must
//! never serve pre-crash entries).

use qbdp::market::durable::WAL_FILE;
use qbdp::market::{DurableMarket, Ledger, Market};
use qbdp::prelude::*;
use qbdp::store::Wal;
use qbdp::workload::scenarios::{business, sports, webgraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const FIG1_QDP: &str = include_str!("../data/figure1.qdp");

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "qbdp_persist_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The scenario satellite: text round trip and durable recovery both
/// reproduce quotes to the cent with the same quality, plus identical
/// books, and the recovered cache starts cold at epoch 0.
fn roundtrip(tag: &str, market: Market, probes: &[&str], buy: &str) {
    // 1. `.qdp` text round trip.
    let reopened = Market::open_qdp(&market.to_qdp()).unwrap();
    for probe in probes {
        let a = market.quote_str(probe).unwrap();
        let b = reopened.quote_str(probe).unwrap();
        assert_eq!(a.price.as_cents(), b.price.as_cents(), "{tag}: {probe}");
        assert_eq!(a.quality, b.quality, "{tag}: {probe}");
    }

    // 2. Durable recovery, with real mutations in the log.
    let dir = temp_dir(tag);
    let dm = DurableMarket::create(&dir, &market.to_qdp(), FsyncPolicy::EveryN(2)).unwrap();
    dm.purchase_str(buy).unwrap();
    dm.purchase_str(probes[0]).unwrap();
    let live: Vec<MarketQuote> = probes.iter().map(|p| dm.quote_str(p).unwrap()).collect();
    let live_revenue = dm.market().revenue();
    let live_sales = dm.market().with_ledger(Ledger::sales);
    let live_ledger = dm.market().with_ledger(Ledger::to_snapshot_text);
    drop(dm);

    for compacted in [false, true] {
        let recovered = DurableMarket::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(
            recovered.market().revenue(),
            live_revenue,
            "{tag} compacted={compacted}: revenue"
        );
        assert_eq!(
            recovered.market().with_ledger(Ledger::sales),
            live_sales,
            "{tag} compacted={compacted}: sales"
        );
        assert_eq!(
            recovered.market().with_ledger(Ledger::to_snapshot_text),
            live_ledger,
            "{tag} compacted={compacted}: ledger"
        );
        for (probe, before) in probes.iter().zip(&live) {
            let after = recovered.market().quote_str(probe).unwrap();
            assert_eq!(
                before.price.as_cents(),
                after.price.as_cents(),
                "{tag} compacted={compacted}: {probe}"
            );
            assert_eq!(before.quality, after.quality, "{tag}: {probe}");
        }
        assert_eq!(
            recovered.market().cache_epoch(),
            0,
            "{tag} compacted={compacted}: recovered cache must be cold at epoch 0"
        );
        if !compacted {
            // Second pass recovers from a snapshot instead of the log.
            recovered.compact().unwrap();
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sports_scenario_roundtrips() {
    let mut rng = StdRng::seed_from_u64(12);
    let m = sports::generate(
        &mut rng,
        sports::SportsConfig {
            teams: 6,
            games: 12,
            ..Default::default()
        },
    )
    .unwrap();
    let market = Market::open(m.catalog, m.instance, m.prices).unwrap();
    roundtrip(
        "sports",
        market,
        &[
            "Q(tid, g, a) :- Team('team2', tid), Game(g, tid, a)",
            "Q(g, t, a) :- Game(g, t, a)",
            "Q(tid) :- Team('nosuch', tid)",
        ],
        "Q(tid, g, a) :- Team('team2', tid), Game(g, tid, a)",
    );
}

#[test]
fn webgraph_scenario_roundtrips() {
    let mut rng = StdRng::seed_from_u64(13);
    let m = webgraph::generate(
        &mut rng,
        webgraph::WebGraphConfig {
            domains: 5,
            links: 12,
            ..Default::default()
        },
    )
    .unwrap();
    let market = Market::open(m.catalog, m.instance, m.prices).unwrap();
    roundtrip(
        "webgraph",
        market,
        &[
            "M(x, y) :- Links(x, y), Backlinks(x, y)",
            "Q(x, y) :- Links(x, y)",
        ],
        "Q(x, y) :- Links(x, y)",
    );
}

#[test]
fn business_scenario_roundtrips() {
    let mut rng = StdRng::seed_from_u64(11);
    let m = business::generate(
        &mut rng,
        business::BusinessConfig {
            states: 6,
            counties_per_state: 4,
            businesses: 80,
            ..Default::default()
        },
    )
    .unwrap();
    let market = Market::open(m.catalog, m.instance, m.prices).unwrap();
    roundtrip(
        "business",
        market,
        &[
            "Q(n, c) :- Business(n, 'S1', c)",
            "Q(n, c) :- Business(n, 'S1', c), Restaurant(n)",
            "Q() :- Business(n, 'S1', c), Restaurant(n)",
        ],
        "Q(n, c) :- Business(n, 'S1', c)",
    );
}

/// Kill-and-recover at **every byte** of the log: the recovered market
/// must equal the live market as it stood after exactly the events whose
/// frames survived the cut — never a blend, never an error, never more.
#[test]
fn figure1_kill_and_recover_is_prefix_consistent() {
    let dir = temp_dir("fig1");
    let dm = DurableMarket::create(&dir, FIG1_QDP, FsyncPolicy::Never).unwrap();

    // One WAL record per step; capture the live state after each.
    let fingerprint = |m: &Market| {
        (
            m.to_qdp(),
            m.revenue().as_cents(),
            m.with_ledger(Ledger::to_snapshot_text),
            m.policy(),
        )
    };
    let mut live = vec![fingerprint(dm.market())];
    let mut step = |dm: &DurableMarket| live.push(fingerprint(dm.market()));

    dm.insert("R", vec![Tuple::new([Value::text("a3")])])
        .unwrap();
    step(&dm);
    dm.purchase_str("Q(x) :- R(x)").unwrap();
    step(&dm);
    dm.set_price("T.Y=b2", Price::cents(250)).unwrap();
    step(&dm);
    dm.insert("T", vec![Tuple::new([Value::text("b2")])])
        .unwrap();
    step(&dm);
    let mut policy = dm.market().policy();
    policy.fuel = Some(5_000_000);
    dm.set_policy(policy).unwrap();
    step(&dm);
    dm.purchase_str("Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
    step(&dm);
    dm.sync().unwrap();
    drop(dm);

    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
    let snapshot_bytes = std::fs::read(dir.join("snapshot.qdps")).unwrap();

    // Record boundaries, to know which prefix each byte cut preserves.
    let mut boundaries = vec![0u64];
    {
        let wal = Wal::open(dir.join(WAL_FILE), FsyncPolicy::Never).unwrap();
        for r in wal.replay().unwrap() {
            boundaries.push(r.end);
        }
    }
    assert_eq!(boundaries.len(), live.len(), "one record per step");

    let crash_dir = temp_dir("fig1_crash");
    for cut in 0..=wal_bytes.len() {
        std::fs::create_dir_all(&crash_dir).unwrap();
        std::fs::write(crash_dir.join("snapshot.qdps"), &snapshot_bytes).unwrap();
        std::fs::write(crash_dir.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
        let recovered = DurableMarket::open(&crash_dir, FsyncPolicy::Never)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: recovery failed: {e}"));
        let prefix = boundaries
            .iter()
            .filter(|&&b| b > 0 && b <= cut as u64)
            .count();
        let expected = &live[prefix];
        assert_eq!(
            fingerprint(recovered.market()),
            *expected,
            "cut at byte {cut} (prefix of {prefix} events)"
        );
        drop(recovered);
        std::fs::remove_dir_all(&crash_dir).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite coverage: recovery equivalence under **every** `FaultFs`
/// fault class. For each class the schedule is the same: one purchase is
/// acknowledged clean, the fault is armed on the WAL, a second purchase
/// runs into it, the disk "crashes", and the reopened market must equal
/// the acknowledged state. The one sanctioned exception is a poisoning
/// fsync, whose single in-flight purchase may legitimately surface after
/// recovery (the at-most-one uncertain tail event) — purchases never
/// change data or prices, so even then the `.qdp` text must match.
fn fault_class_recovery(tag: &str, qdp: &str, clean_buy: &str, armed_buy: &str) {
    use qbdp::market::MarketHealth;
    use qbdp::store::{FaultFs, FaultKind, FaultOp, FaultPlan, RetryPolicy, ScriptedFault};
    use std::sync::Arc;

    // `to_qdp` line order tracks map insertion history, which differs
    // between a market parsed from the scenario text and one re-parsed
    // from its snapshot; sort so the comparison is of state, not order.
    let sorted_fp = |m: &Market| {
        let text = m.to_qdp();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort_unstable();
        (
            lines.join("\n"),
            m.revenue().as_cents(),
            m.with_ledger(Ledger::to_snapshot_text),
        )
    };

    let cases: [(&str, FaultOp, FaultKind, bool); 5] = [
        // (name, faulted op, kind, survivable-by-retry)
        ("eintr", FaultOp::Write, FaultKind::Eintr, true),
        ("eagain", FaultOp::Write, FaultKind::Eagain, true),
        (
            "enospc",
            FaultOp::Write,
            FaultKind::Enospc { keep: 3 },
            false,
        ),
        ("fsync-fail", FaultOp::Fsync, FaultKind::FsyncFail, false),
        (
            "torn-write",
            FaultOp::Write,
            FaultKind::TornWrite { keep: 4 },
            false,
        ),
    ];
    for (case, (name, op, kind, retried_away)) in cases.into_iter().enumerate() {
        let dir = temp_dir(&format!("{tag}_{name}"));
        let fs = FaultFs::new(FaultPlan::none());
        let retry = RetryPolicy {
            attempts: 3,
            base_delay_micros: 1,
            max_delay_micros: 5,
            jitter_seed: 7,
        };
        let dm =
            DurableMarket::create_with(Arc::new(fs.clone()), &dir, qdp, FsyncPolicy::Always, retry)
                .unwrap();
        dm.purchase_str(clean_buy).unwrap();
        let acked = sorted_fp(dm.market());
        let armed_cents = dm.quote_str(armed_buy).unwrap().price.as_cents();

        let is_fsync_poison = matches!(kind, FaultKind::FsyncFail);
        fs.set_plan(FaultPlan {
            script: vec![ScriptedFault {
                op,
                path_contains: "market.wal".into(),
                skip: 0,
                kind,
            }],
            seeded: None,
        });
        let verdict = dm.purchase_str(armed_buy);
        assert!(fs.injected_count() > 0, "{tag}/{name}: fault never fired");
        let acked = if retried_away {
            verdict.unwrap_or_else(|e| {
                panic!("{tag}/{name}: transient fault must be retried away: {e}")
            });
            assert_eq!(dm.health(), MarketHealth::Healthy, "{tag}/{name}");
            sorted_fp(dm.market())
        } else {
            assert!(verdict.is_err(), "{tag}/{name}: faulted purchase must fail");
            assert!(
                matches!(dm.health(), MarketHealth::ReadOnly { .. }),
                "{tag}/{name}: durable damage must degrade the market"
            );
            // Quotes keep serving sound intervals from the frozen state.
            let q = dm.quote_str(clean_buy).unwrap();
            assert!(q.lower_bound <= q.price, "{tag}/{name}: degraded quote");
            acked
        };
        drop(dm);

        fs.clear_plan();
        fs.simulate_crash(0x5eed + case as u64).unwrap();
        let back =
            DurableMarket::open_on(Arc::new(fs), &dir, FsyncPolicy::Never, RetryPolicy::none())
                .unwrap_or_else(|e| panic!("{tag}/{name}: recovery failed: {e}"));
        assert_eq!(back.health(), MarketHealth::Healthy, "{tag}/{name}");
        let got = sorted_fp(back.market());
        assert_eq!(got.0, acked.0, "{tag}/{name}: recovered data+prices");
        if got.1 == acked.1 {
            assert_eq!(got.2, acked.2, "{tag}/{name}: recovered ledger");
        } else {
            // Only a poisoning fsync leaves an uncertain tail, and it is
            // exactly the one in-flight purchase.
            assert!(
                is_fsync_poison,
                "{tag}/{name}: only fsync poison may surface a tail"
            );
            assert_eq!(
                Some(got.1),
                acked.1.checked_add(armed_cents),
                "{tag}/{name}: tail must be the in-flight purchase"
            );
        }
        // The reopened market is fully writable again.
        assert!(back.quote_str(clean_buy).is_ok(), "{tag}/{name}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sports_recovers_under_every_fault_class() {
    let mut rng = StdRng::seed_from_u64(12);
    let m = sports::generate(
        &mut rng,
        sports::SportsConfig {
            teams: 6,
            games: 12,
            ..Default::default()
        },
    )
    .unwrap();
    let market = Market::open(m.catalog, m.instance, m.prices).unwrap();
    fault_class_recovery(
        "sports",
        &market.to_qdp(),
        "Q(tid, g, a) :- Team('team2', tid), Game(g, tid, a)",
        "Q(g, t, a) :- Game(g, t, a)",
    );
}

#[test]
fn webgraph_recovers_under_every_fault_class() {
    let mut rng = StdRng::seed_from_u64(13);
    let m = webgraph::generate(
        &mut rng,
        webgraph::WebGraphConfig {
            domains: 5,
            links: 12,
            ..Default::default()
        },
    )
    .unwrap();
    let market = Market::open(m.catalog, m.instance, m.prices).unwrap();
    fault_class_recovery(
        "webgraph",
        &market.to_qdp(),
        "Q(x, y) :- Links(x, y)",
        "M(x, y) :- Links(x, y), Backlinks(x, y)",
    );
}

#[test]
fn business_recovers_under_every_fault_class() {
    let mut rng = StdRng::seed_from_u64(11);
    let m = business::generate(
        &mut rng,
        business::BusinessConfig {
            states: 6,
            counties_per_state: 4,
            businesses: 80,
            ..Default::default()
        },
    )
    .unwrap();
    let market = Market::open(m.catalog, m.instance, m.prices).unwrap();
    fault_class_recovery(
        "business",
        &market.to_qdp(),
        "Q(n, c) :- Business(n, 'S1', c)",
        "Q(n, c) :- Business(n, 'S1', c), Restaurant(n)",
    );
}

/// A history whose replayed revenue would cross the representable range
/// is refused with a typed error — the books never wrap or saturate.
#[test]
fn overflowing_replay_is_refused() {
    let dir = temp_dir("overflow");
    let dm = DurableMarket::create(&dir, FIG1_QDP, FsyncPolicy::Never).unwrap();
    drop(dm);
    // Forge two near-MAX purchases straight into the log (the live write
    // path pre-checks and would refuse the second).
    {
        let mut wal = Wal::open(dir.join(WAL_FILE), FsyncPolicy::Always).unwrap();
        for _ in 0..2 {
            wal.append(&MarketEvent::Purchase {
                query: "Q(x) :- R(x)".into(),
                price_cents: Price::INFINITE.as_cents() - 1,
                answer_tuples: 1,
                views: 1,
            })
            .unwrap();
        }
    }
    match DurableMarket::open(&dir, FsyncPolicy::Never) {
        Err(MarketError::RevenueOverflow) => {}
        other => panic!("expected RevenueOverflow, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The live write path refuses the overflowing purchase *before* logging
/// it, so the log stays replayable and the first sale stands.
#[test]
fn live_overflow_is_refused_before_logging() {
    let dir = temp_dir("live_overflow");
    let dm = DurableMarket::create(&dir, FIG1_QDP, FsyncPolicy::Never).unwrap();
    drop(dm);
    {
        let mut wal = Wal::open(dir.join(WAL_FILE), FsyncPolicy::Always).unwrap();
        wal.append(&MarketEvent::Purchase {
            query: "Q(x) :- R(x)".into(),
            price_cents: Price::INFINITE.as_cents() - 1,
            answer_tuples: 1,
            views: 1,
        })
        .unwrap();
    }
    let dm = DurableMarket::open(&dir, FsyncPolicy::Never).unwrap();
    let wal_before = dm.wal_position();
    match dm.purchase_str("Q(x) :- R(x)") {
        Err(MarketError::RevenueOverflow) => {}
        other => panic!("expected RevenueOverflow, got {other:?}"),
    }
    assert_eq!(dm.wal_position(), wal_before, "refused purchase not logged");
    // The market keeps serving and stays recoverable.
    assert!(dm.quote_str("Q(x) :- R(x)").is_ok());
    drop(dm);
    assert!(DurableMarket::open(&dir, FsyncPolicy::Never).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}
