//! Property-based tests of the pricing axioms (proptest): the framework's
//! theorems hold on randomized instances, not just the worked examples.

use proptest::prelude::*;
use qbdp::core::chain::graph::TupleEdgeMode;
use qbdp::core::chain::price::FlowAlgo;
use qbdp::core::exact::certificates::{certificate_price, CertificateConfig};
use qbdp::core::pricer::PricerConfig;
use qbdp::prelude::*;

const N: i64 = 3; // column size: {0, 1, 2}

/// Strategy: a random instance of the chain-2 schema R(X), S(X,Y), T(Y).
fn chain2_catalog() -> Catalog {
    let col = Column::int_range(0, N);
    CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["Y"], &col)
        .build()
        .unwrap()
}

#[derive(Debug, Clone)]
struct World {
    r: Vec<i64>,
    s: Vec<(i64, i64)>,
    t: Vec<i64>,
    prices: Vec<u64>, // one price (in dollars, 1..=5) per Σ view
}

fn world_strategy() -> impl Strategy<Value = World> {
    (
        proptest::collection::vec(0..N, 0..4),
        proptest::collection::vec((0..N, 0..N), 0..6),
        proptest::collection::vec(0..N, 0..4),
        proptest::collection::vec(1u64..=5, (N as usize) * 4),
    )
        .prop_map(|(r, s, t, prices)| World { r, s, t, prices })
}

fn build(world: &World) -> (Catalog, Instance, PriceList) {
    let catalog = chain2_catalog();
    let mut d = catalog.empty_instance();
    let (r, s, t) = (
        catalog.schema().rel_id("R").unwrap(),
        catalog.schema().rel_id("S").unwrap(),
        catalog.schema().rel_id("T").unwrap(),
    );
    for &x in &world.r {
        d.insert(r, tuple![x]).unwrap();
    }
    for &(x, y) in &world.s {
        d.insert(s, tuple![x, y]).unwrap();
    }
    for &y in &world.t {
        d.insert(t, tuple![y]).unwrap();
    }
    let mut prices = PriceList::new();
    let mut i = 0;
    for attr in catalog.schema().all_attrs() {
        for v in catalog.column(attr).iter() {
            prices.set(
                SelectionView::new(attr, v.clone()),
                Price::dollars(world.prices[i]),
            );
            i += 1;
        }
    }
    (catalog, d, prices)
}

fn chain_query(catalog: &Catalog) -> ConjunctiveQuery {
    parse_rule(catalog.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 3.13: the flow price equals the exact certificate price, for
    /// every tuple-edge mode and flow algorithm.
    #[test]
    fn flow_price_is_exact(world in world_strategy()) {
        let (catalog, d, prices) = build(&world);
        let q = chain_query(&catalog);
        let exact = certificate_price(&catalog, &d, &prices, &q, CertificateConfig::default())
            .unwrap()
            .price;
        for mode in [TupleEdgeMode::Dense, TupleEdgeMode::Hub] {
            for algo in [FlowAlgo::Dinic, FlowAlgo::EdmondsKarp] {
                let config = PricerConfig { tuple_mode: mode, flow_algo: algo, ..Default::default() };
                let pricer = Pricer::new(catalog.clone(), d.clone(), prices.clone())
                    .unwrap()
                    .with_config(config);
                prop_assert_eq!(pricer.price_cq(&q).unwrap().price, exact);
            }
        }
    }

    /// The quoted views really determine the query and sum to the price
    /// (no phantom discounts, no over-charging).
    #[test]
    fn quotes_are_faithful(world in world_strategy()) {
        let (catalog, d, prices) = build(&world);
        let q = chain_query(&catalog);
        let pricer = Pricer::new(catalog.clone(), d.clone(), prices.clone()).unwrap();
        let quote = pricer.price_cq(&q).unwrap();
        prop_assert!(quote.price.is_finite());
        let total: Price = quote.views.iter().map(|v| prices.get(v)).sum();
        prop_assert_eq!(total, quote.price);
        let vs: ViewSet = quote.views.iter().cloned().collect();
        prop_assert!(qbdp::determinacy::selection::determines_monotone_cq(&catalog, &d, &vs, &q).unwrap());
    }

    /// Proposition 2.8: prices are bounded by the identity price; boolean
    /// and projection variants are never pricier than ID either.
    #[test]
    fn bounded_by_identity(world in world_strategy()) {
        let (catalog, d, prices) = build(&world);
        let id_price = prices.identity_price(&catalog);
        let pricer = Pricer::new(catalog.clone(), d, prices).unwrap();
        for q_src in ["Q(x, y) :- R(x), S(x, y), T(y)", "Q() :- S(x, y)", "Q(x) :- S(x, y)"] {
            let q = parse_rule(catalog.schema(), q_src).unwrap();
            let p = pricer.price_cq(&q).unwrap().price;
            prop_assert!(p <= id_price, "{} > id {} for {}", p, id_price, q_src);
        }
    }

    /// Proposition 2.8(1): bundle subadditivity.
    #[test]
    fn bundle_subadditive(world in world_strategy()) {
        let (catalog, d, prices) = build(&world);
        let pricer = Pricer::new(catalog.clone(), d, prices).unwrap();
        let q1 = parse_rule(catalog.schema(), "Q1(x, y) :- R(x), S(x, y)").unwrap();
        let q2 = parse_rule(catalog.schema(), "Q2(x, y) :- S(x, y), T(y)").unwrap();
        let p1 = pricer.price_cq(&q1).unwrap().price;
        let p2 = pricer.price_cq(&q2).unwrap().price;
        let pb = pricer
            .price_bundle(&Bundle::new([Ucq::single(q1), Ucq::single(q2)]))
            .unwrap()
            .price;
        prop_assert!(pb <= p1.saturating_add(p2), "{} > {} + {}", pb, p1, p2);
        prop_assert!(pb >= p1.max(p2), "bundle below its dearest part");
    }

    /// Proposition 2.22: inserting tuples never lowers the price of a full
    /// CQ under selection-view prices.
    #[test]
    fn insertion_monotonicity(
        world in world_strategy(),
        extra in proptest::collection::vec((0usize..3, 0..N, 0..N), 1..5),
    ) {
        let (catalog, d, prices) = build(&world);
        let q = chain_query(&catalog);
        let mut pricer = Pricer::new(catalog.clone(), d, prices).unwrap();
        let mut last = pricer.price_cq(&q).unwrap().price;
        for (rel_idx, a, b) in extra {
            let (rel, t) = match rel_idx {
                0 => (catalog.schema().rel_id("R").unwrap(), tuple![a]),
                1 => (catalog.schema().rel_id("S").unwrap(), tuple![a, b]),
                _ => (catalog.schema().rel_id("T").unwrap(), tuple![b]),
            };
            pricer.insert(rel, [t]).unwrap();
            let now = pricer.price_cq(&q).unwrap().price;
            prop_assert!(now >= last, "price dropped {} -> {}", last, now);
            last = now;
        }
    }

    /// §4 "Price updates": adding price points (new discounts) never raises
    /// any price.
    #[test]
    fn adding_price_points_never_raises(world in world_strategy()) {
        let (catalog, d, mut prices) = build(&world);
        // Remove one attribute's prices first so there is something to add.
        let sy = catalog.schema().resolve_attr("S.Y").unwrap();
        prices.remove_attr(sy);
        let q = chain_query(&catalog);
        let before = Pricer::new(catalog.clone(), d.clone(), prices.clone())
            .unwrap()
            .price_cq(&q)
            .unwrap()
            .price;
        prices.set_attr_uniform(&catalog, sy, Price::dollars(1));
        let after = Pricer::new(catalog.clone(), d, prices).unwrap().price_cq(&q).unwrap().price;
        prop_assert!(after <= before, "{} > {}", after, before);
    }

    /// Boolean price ≤ full price: knowing whether an answer exists is
    /// never dearer than knowing the whole answer (the full query
    /// determines the boolean one).
    #[test]
    fn boolean_cheaper_than_full(world in world_strategy()) {
        let (catalog, d, prices) = build(&world);
        let pricer = Pricer::new(catalog.clone(), d, prices).unwrap();
        let full = chain_query(&catalog);
        let boolean = parse_rule(catalog.schema(), "B() :- R(x), S(x, y), T(y)").unwrap();
        let pf = pricer.price_cq(&full).unwrap().price;
        let pb = pricer.price_cq(&boolean).unwrap().price;
        prop_assert!(pb <= pf, "boolean {} > full {}", pb, pf);
    }
}
