//! API-surface tests: the public entry points a downstream user reaches
//! first, exercised end to end (UCQ pricing, quote audit, explanations,
//! general schedules with atomic points).

use qbdp::core::support::{arbitrage_price, SupportConfig};
use qbdp::prelude::*;

fn tiny() -> (Catalog, Instance, PriceList) {
    let col = Column::int_range(0, 2);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .build()
        .unwrap();
    let mut d = catalog.empty_instance();
    d.insert(catalog.schema().rel_id("R").unwrap(), tuple![0])
        .unwrap();
    d.insert(catalog.schema().rel_id("S").unwrap(), tuple![0, 1])
        .unwrap();
    let prices = PriceList::uniform(&catalog, Price::dollars(2));
    (catalog, d, prices)
}

#[test]
fn ucq_union_priced_via_subset_engine() {
    let (catalog, d, prices) = tiny();
    let pricer = Pricer::new(catalog.clone(), d, prices).unwrap();
    // U(x) :- R(x)  ∪  U(x) :- S(x, x): determining the union needs enough
    // views to pin down both disjuncts' contributions.
    let u = parse_query(catalog.schema(), "U(x) :- R(x); U(x) :- S(x, x)").unwrap();
    let quote = pricer.price_ucq(&u).unwrap();
    assert!(quote.price.is_finite());
    // The union is determined by R's full cover + S's full cover, so it is
    // bounded by the identity price; and it cannot be free (R(0) must be
    // secured or refuted).
    assert!(quote.price > Price::ZERO);
    assert!(quote.price <= prices_identity(&catalog));
    // A single-disjunct UCQ routes through the dichotomy dispatch.
    let single = parse_query(catalog.schema(), "U(x, y) :- S(x, y)").unwrap();
    let quote = pricer.price_ucq(&single).unwrap();
    assert_eq!(quote.class, QueryClass::GeneralizedChain);
}

fn prices_identity(catalog: &Catalog) -> Price {
    PriceList::uniform(catalog, Price::dollars(2)).identity_price(catalog)
}

#[test]
fn verify_quote_rejects_tampering() {
    let (catalog, d, prices) = tiny();
    let pricer = Pricer::new(catalog.clone(), d, prices).unwrap();
    let q = parse_rule(catalog.schema(), "Q(x, y) :- R(x), S(x, y)").unwrap();
    let quote = pricer.price_cq(&q).unwrap();
    assert!(pricer.verify_quote(&q, &quote).unwrap());
    // Tampered price: mismatch with the views' sum.
    let mut cheaper = quote.clone();
    cheaper.price = Price::cents(1);
    assert!(!pricer.verify_quote(&q, &cheaper).unwrap());
    // Tampered views: dropping one view breaks determinacy (and the sum).
    let mut fewer = quote.clone();
    let dropped = fewer.views.pop().unwrap();
    fewer.price = fewer.views.iter().map(|v| pricer.prices().get(v)).sum();
    assert!(
        !pricer.verify_quote(&q, &fewer).unwrap(),
        "dropping {dropped:?} should break the receipt"
    );
}

#[test]
fn explanations_render_for_every_engine() {
    let (catalog, d, prices) = tiny();
    let pricer = Pricer::new(catalog.clone(), d, prices).unwrap();
    for (src, needle) in [
        ("Q(x, y) :- R(x), S(x, y)", "ChainFlow"),
        ("Q() :- S(x, y)", "BooleanWitness"),
        ("Q(x) :- S(x, y)", "ExactSubset"),
    ] {
        let q = parse_rule(catalog.schema(), src).unwrap();
        let quote = pricer.price_cq(&q).unwrap();
        let text = quote.explain(pricer.catalog(), pricer.prices());
        assert!(text.contains(needle), "`{src}`: {text}");
        assert!(text.contains("price"), "`{src}`: {text}");
    }
}

#[test]
fn atomic_schedules_price_through_the_general_framework() {
    let (catalog, d, _) = tiny();
    // Two bundles: "all of R" and "the S slice at X=0", plus ID.
    let rx = catalog.schema().resolve_attr("R.X").unwrap();
    let sx = catalog.schema().resolve_attr("S.X").unwrap();
    let mut schedule = PriceSchedule::new();
    schedule.add(PricePoint::new(
        "R bundle",
        ViewDef::Atomic(
            (0..2)
                .map(|i| {
                    qbdp::core::price_points::AtomicView::Selection(SelectionView::new(
                        rx,
                        Value::Int(i),
                    ))
                })
                .collect(),
        ),
        Price::dollars(3),
    ));
    schedule.add(PricePoint::new(
        "S slice",
        ViewDef::Atomic(vec![qbdp::core::price_points::AtomicView::Selection(
            SelectionView::new(sx, Value::Int(0)),
        )]),
        Price::dollars(4),
    ));
    schedule.add(PricePoint::new(
        "ID",
        ViewDef::identity(&catalog),
        Price::dollars(20),
    ));
    // Price "all of R": the R bundle at $3 beats ID at $20.
    let target = Bundle::from(parse_rule(catalog.schema(), "QR(x) :- R(x)").unwrap());
    let r = arbitrage_price(&catalog, &d, &schedule, &target, SupportConfig::default()).unwrap();
    assert_eq!(r.price, Price::dollars(3));
    assert_eq!(r.support, vec![0]);
    // Price the full S: only ID covers all of S.
    let target = Bundle::from(parse_rule(catalog.schema(), "QS(x, y) :- S(x, y)").unwrap());
    let r = arbitrage_price(&catalog, &d, &schedule, &target, SupportConfig::default()).unwrap();
    assert_eq!(r.price, Price::dollars(20));
}
