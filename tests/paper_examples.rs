//! Every worked example and named query of the paper, asserted end to end.
//! Each test cites the paper anchor it reproduces.

use qbdp::core::consistency::find_list_arbitrage;
use qbdp::core::dichotomy::NpReason;
use qbdp::core::support::{arbitrage_price, is_consistent, SupportConfig};
use qbdp::prelude::*;

/// Figure 1 + Example 3.8: the example database, price 6, and the exact
/// minimal view set.
#[test]
fn figure1_example_3_8() {
    let ax = Column::texts(["a1", "a2", "a3", "a4"]);
    let by = Column::texts(["b1", "b2", "b3"]);
    let catalog = CatalogBuilder::new()
        .relation("R", &[("X", ax.clone())])
        .relation("S", &[("X", ax), ("Y", by.clone())])
        .relation("T", &[("Y", by)])
        .build()
        .unwrap();
    let mut d = catalog.empty_instance();
    d.insert_all(
        catalog.schema().rel_id("R").unwrap(),
        [tuple!["a1"], tuple!["a2"]],
    )
    .unwrap();
    d.insert_all(
        catalog.schema().rel_id("S").unwrap(),
        [
            tuple!["a1", "b1"],
            tuple!["a1", "b2"],
            tuple!["a2", "b2"],
            tuple!["a4", "b1"],
        ],
    )
    .unwrap();
    d.insert_all(
        catalog.schema().rel_id("T").unwrap(),
        [tuple!["b1"], tuple!["b3"]],
    )
    .unwrap();
    let prices = PriceList::uniform(&catalog, Price::dollars(1));
    let pricer = Pricer::new(catalog.clone(), d, prices).unwrap();

    let q = parse_rule(catalog.schema(), "Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
    let quote = pricer.price_cq(&q).unwrap();
    assert_eq!(quote.price, Price::dollars(6), "Example 3.8: pS_D(Q) = 6");
    let mut views: Vec<String> = quote
        .views
        .iter()
        .map(|v| v.display(catalog.schema()))
        .collect();
    views.sort();
    assert_eq!(
        views,
        vec![
            "σ[R.X=a1]",
            "σ[R.X=a4]",
            "σ[S.Y=b1]",
            "σ[S.Y=b3]",
            "σ[T.Y=b1]",
            "σ[T.Y=b2]"
        ],
        "the minimal determining set of Example 3.8"
    );
    assert_eq!(quote.class, QueryClass::GeneralizedChain);
}

/// §2.3 / Example 2.4 (adapted to the instance-based setting): a fully
/// covered *empty* relation determines any query joining through it, even
/// though information-theoretically it would not.
#[test]
fn example_2_4_instance_based_gap() {
    let col = Column::int_range(0, 2);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X", "Y"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["X", "Y"], &col)
        .build()
        .unwrap();
    let q = parse_rule(catalog.schema(), "Q(x,y,z,u) :- R(x,y), S(y,z), T(z,u)").unwrap();
    // Price only R.X views; R empty ⇒ price of Q is just certifying R = ∅.
    let mut prices = PriceList::new();
    let rx = catalog.schema().resolve_attr("R.X").unwrap();
    prices.set_attr_uniform(&catalog, rx, Price::dollars(1));
    let d = catalog.empty_instance();
    let pricer = Pricer::new(catalog.clone(), d, prices.clone()).unwrap();
    let quote = pricer.price_cq(&q).unwrap();
    assert_eq!(
        quote.price,
        Price::dollars(2),
        "full cover of empty R certifies Q = ∅"
    );
    // With a tuple completing a potential join, the same views no longer
    // suffice... they still do here: covering R fully always determines
    // emptiness *through R* only if R(D) = ∅. Insert R and S tuples: now Q
    // needs more than R's cover, and nothing else is priced → ∞.
    let mut d2 = catalog.empty_instance();
    d2.insert(catalog.schema().rel_id("R").unwrap(), tuple![0, 0])
        .unwrap();
    d2.insert(catalog.schema().rel_id("S").unwrap(), tuple![0, 1])
        .unwrap();
    let pricer2 = Pricer::new(catalog, d2, prices).unwrap();
    assert!(pricer2.price_cq(&q).unwrap().price.is_infinite());
}

/// Example 2.18, literally: S1 loses consistency when D grows; S2 stays
/// consistent but the price of Q drops $100 → $1.
#[test]
fn example_2_18() {
    let col = Column::int_range(0, 2);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .build()
        .unwrap();
    let schema = catalog.schema();
    let v = parse_rule(schema, "V(x, y) :- R(x), S(x, y)").unwrap();
    let q = parse_rule(schema, "Q() :- R(x)").unwrap();
    let qb = Bundle::from(q.clone());

    let mut s1 = PriceSchedule::new();
    s1.add(PricePoint::new(
        "V",
        ViewDef::Queries(Bundle::from(v.clone())),
        Price::dollars(1),
    ));
    s1.add(PricePoint::new(
        "Q",
        ViewDef::Queries(qb.clone()),
        Price::dollars(10),
    ));
    s1.add(PricePoint::new(
        "ID",
        ViewDef::identity(&catalog),
        Price::dollars(100),
    ));
    let mut s2 = PriceSchedule::new();
    s2.add(PricePoint::new(
        "V",
        ViewDef::Queries(Bundle::from(v)),
        Price::dollars(1),
    ));
    s2.add(PricePoint::new(
        "ID",
        ViewDef::identity(&catalog),
        Price::dollars(100),
    ));

    let d1 = catalog.empty_instance();
    let mut d2 = catalog.empty_instance();
    d2.insert(schema.rel_id("R").unwrap(), tuple![0]).unwrap();
    d2.insert(schema.rel_id("S").unwrap(), tuple![0, 1])
        .unwrap();

    let cfg = SupportConfig::default();
    assert!(
        is_consistent(&catalog, &d1, &s1, cfg).unwrap(),
        "S1 consistent on D1"
    );
    assert!(
        !is_consistent(&catalog, &d2, &s1, cfg).unwrap(),
        "S1 inconsistent on D2"
    );
    assert!(
        is_consistent(&catalog, &d1, &s2, cfg).unwrap(),
        "S2 consistent on D1"
    );
    assert!(
        is_consistent(&catalog, &d2, &s2, cfg).unwrap(),
        "S2 consistent on D2"
    );
    assert_eq!(
        arbitrage_price(&catalog, &d1, &s2, &qb, cfg).unwrap().price,
        Price::dollars(100)
    );
    assert_eq!(
        arbitrage_price(&catalog, &d2, &s2, &qb, cfg).unwrap().price,
        Price::dollars(1)
    );
}

/// Proposition 2.8 on a concrete schedule: subadditive, non-negative,
/// empty bundle free, bounded by ID.
#[test]
fn proposition_2_8_properties() {
    let col = Column::int_range(0, 2);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .build()
        .unwrap();
    let mut d = catalog.empty_instance();
    d.insert(catalog.schema().rel_id("R").unwrap(), tuple![0])
        .unwrap();
    d.insert(catalog.schema().rel_id("S").unwrap(), tuple![0, 1])
        .unwrap();
    let prices = PriceList::uniform(&catalog, Price::dollars(2));
    let pricer = Pricer::new(catalog.clone(), d, prices.clone()).unwrap();
    let q1 = parse_rule(catalog.schema(), "Q1(x) :- R(x)").unwrap();
    let q2 = parse_rule(catalog.schema(), "Q2(x, y) :- S(x, y)").unwrap();

    let p1 = pricer.price_cq(&q1).unwrap().price;
    let p2 = pricer.price_cq(&q2).unwrap().price;
    let bundle = Bundle::new([Ucq::single(q1), Ucq::single(q2)]);
    let pb = pricer.price_bundle(&bundle).unwrap().price;
    assert!(pb <= p1.saturating_add(p2), "subadditivity");
    assert!(p1 >= Price::ZERO && p2 >= Price::ZERO, "non-negativity");
    assert_eq!(
        pricer.price_bundle(&Bundle::empty()).unwrap().price,
        Price::ZERO,
        "pD() = 0"
    );
    let id_price = prices.identity_price(&catalog);
    assert!(pb <= id_price, "bounded by ID");
}

/// Theorem 3.5's queries classify as stated, and Theorem 3.15's
/// brittleness: C2 is PTIME, C2 + unary (= H2) is NP-complete.
#[test]
fn theorem_3_5_and_3_15_classification() {
    let col = Column::int_range(0, 3);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R3", &["X", "Y", "Z"], &col)
        .uniform_relation("P", &["X"], &col)
        .uniform_relation("U1", &["X"], &col)
        .uniform_relation("U2", &["X"], &col)
        .uniform_relation("A", &["X", "Y"], &col)
        .uniform_relation("B", &["X", "Y"], &col)
        .build()
        .unwrap();
    let s = catalog.schema();
    let h1 = parse_rule(s, "H1(x,y,z) :- R3(x,y,z), P(x), U1(y), U2(z)").unwrap();
    let h2 = parse_rule(s, "H2(x,y) :- P(x), A(x,y), B(x,y)").unwrap();
    let h3 = parse_rule(s, "H3(x,y) :- P(x), A(x,y), P(y)").unwrap();
    let h4 = parse_rule(s, "H4(x) :- A(x,y)").unwrap();
    let c2 = parse_rule(s, "C2(x,y) :- A(x,y), B(y,x)").unwrap();
    assert_eq!(classify(&h1), QueryClass::NpComplete(NpReason::HardShape));
    assert_eq!(classify(&h2), QueryClass::NpComplete(NpReason::HardShape));
    assert_eq!(classify(&h3), QueryClass::OutsideDichotomy);
    assert_eq!(
        classify(&h4),
        QueryClass::NpComplete(NpReason::NotFullNotBoolean)
    );
    assert_eq!(classify(&c2), QueryClass::Cycle(2));
}

/// Example 4.1: Q1 ⊆ Q2 yet price(Q1) > price(Q2) is achievable — pricing
/// must not be monotone w.r.t. containment.
#[test]
fn example_4_1_containment_non_monotonicity() {
    let names = Column::texts(["apple", "beta", "corp"]);
    let catalog = CatalogBuilder::new()
        .relation("R", &[("X", names.clone())]) // the analyst's secret list
        .relation("S", &[("X", names), ("P", Column::int_range(0, 10))])
        .build()
        .unwrap();
    let s = catalog.schema();
    let q1 = parse_rule(s, "Q(x, p) :- R(x), S(x, p)").unwrap();
    let q2 = parse_rule(s, "Q(x, p) :- S(x, p)").unwrap();
    assert!(qbdp::query::homomorphism::is_contained_in(&q1, &q2));
    let mut d = catalog.empty_instance();
    d.insert(s.rel_id("R").unwrap(), tuple!["apple"]).unwrap();
    d.insert(s.rel_id("S").unwrap(), tuple!["apple", 5])
        .unwrap();
    d.insert(s.rel_id("S").unwrap(), tuple!["beta", 3]).unwrap();
    // R (the secret list) is expensive; S is cheap.
    let mut prices = PriceList::new();
    prices.set_attr_uniform(
        &catalog,
        s.resolve_attr("R.X").unwrap(),
        Price::dollars(500),
    );
    prices.set_attr_uniform(&catalog, s.resolve_attr("S.X").unwrap(), Price::dollars(1));
    let pricer = Pricer::new(catalog.clone(), d, prices).unwrap();
    let p1 = pricer.price_cq(&q1).unwrap().price;
    let p2 = pricer.price_cq(&q2).unwrap().price;
    assert!(p1 > p2, "the contained query is pricier: {p1} > {p2}");
}

/// Proposition 3.14's four cases through the façade.
#[test]
fn proposition_3_14_disconnected() {
    let col = Column::int_range(0, 2);
    let catalog = CatalogBuilder::new()
        .uniform_relation("A", &["X"], &col)
        .uniform_relation("B", &["X"], &col)
        .build()
        .unwrap();
    let q = parse_rule(catalog.schema(), "Q(x, y) :- A(x), B(y)").unwrap();
    let prices = PriceList::uniform(&catalog, Price::dollars(1));
    let a = catalog.schema().rel_id("A").unwrap();
    let b = catalog.schema().rel_id("B").unwrap();
    let price_with = |fill_a: bool, fill_b: bool| {
        let mut d = catalog.empty_instance();
        if fill_a {
            d.insert(a, tuple![0]).unwrap();
        }
        if fill_b {
            d.insert(b, tuple![1]).unwrap();
        }
        Pricer::new(catalog.clone(), d, prices.clone())
            .unwrap()
            .price_cq(&q)
            .unwrap()
            .price
    };
    // Both nonempty: sum of full covers ($2 + $2).
    assert_eq!(price_with(true, true), Price::dollars(4));
    // A empty: certify A's emptiness (full cover of A = $2).
    assert_eq!(price_with(false, true), Price::dollars(2));
    assert_eq!(price_with(true, false), Price::dollars(2));
    // Both empty: min of the two emptiness certificates.
    assert_eq!(price_with(false, false), Price::dollars(2));
}

/// Proposition 3.2's consistency check and the §4 claim that adding price
/// points can only lower prices.
#[test]
fn prop_3_2_and_price_point_additions() {
    let col = Column::int_range(0, 3);
    let catalog = CatalogBuilder::new()
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["Y"], &col)
        .build()
        .unwrap();
    // Start with only S.X priced.
    let mut prices = PriceList::new();
    prices.set_attr_uniform(
        &catalog,
        catalog.schema().resolve_attr("S.X").unwrap(),
        Price::dollars(5),
    );
    prices.set_attr_uniform(
        &catalog,
        catalog.schema().resolve_attr("T.Y").unwrap(),
        Price::dollars(5),
    );
    assert!(find_list_arbitrage(&catalog, &prices).is_empty());
    let mut d = catalog.empty_instance();
    d.insert(catalog.schema().rel_id("S").unwrap(), tuple![0, 1])
        .unwrap();
    d.insert(catalog.schema().rel_id("T").unwrap(), tuple![1])
        .unwrap();
    let q = parse_rule(catalog.schema(), "Q(x, y) :- S(x, y), T(y)").unwrap();
    let before = Pricer::new(catalog.clone(), d.clone(), prices.clone())
        .unwrap()
        .price_cq(&q)
        .unwrap()
        .price;
    // Add S.Y price points (more discounts).
    prices.set_attr_uniform(
        &catalog,
        catalog.schema().resolve_attr("S.Y").unwrap(),
        Price::dollars(2),
    );
    assert!(
        find_list_arbitrage(&catalog, &prices).is_empty(),
        "still consistent"
    );
    let after = Pricer::new(catalog, d, prices)
        .unwrap()
        .price_cq(&q)
        .unwrap()
        .price;
    assert!(
        after <= before,
        "additions never raise prices: {after} ≤ {before}"
    );
}

/// Lemma 2.14(a) in the §3 setting: the arbitrage-price of an explicitly
/// priced view never exceeds its list price.
#[test]
fn lemma_2_14a_view_price_bound() {
    let col = Column::int_range(0, 3);
    let catalog = CatalogBuilder::new()
        .uniform_relation("S", &["X", "Y"], &col)
        .build()
        .unwrap();
    let mut d = catalog.empty_instance();
    d.insert(catalog.schema().rel_id("S").unwrap(), tuple![0, 1])
        .unwrap();
    let prices = PriceList::uniform(&catalog, Price::dollars(3));
    let pricer = Pricer::new(catalog.clone(), d, prices.clone()).unwrap();
    // σ_{S.X=0} as a query: S(0, y) full? no — make it the full slice.
    let q = parse_rule(catalog.schema(), "V(y) :- S(0, y)").unwrap();
    let quote = pricer.price_cq(&q).unwrap();
    assert!(
        quote.price <= Price::dollars(3),
        "pS_D(V) ≤ explicit price: {}",
        quote.price
    );
}

/// Proposition 2.24: the restricted relation `։*` repairs Example 2.18 —
/// the restricted price of Q stays at $100 after the insertions (no drop),
/// and restricted prices never undercut plain prices (part (c)).
#[test]
fn proposition_2_24_restricted_prices() {
    use qbdp::core::support::arbitrage_price_restricted;
    use qbdp::core::support::{arbitrage_price, SupportConfig};
    let col = Column::int_range(0, 2);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .build()
        .unwrap();
    let schema = catalog.schema();
    let v = parse_rule(schema, "V(x, y) :- R(x), S(x, y)").unwrap();
    let q = parse_rule(schema, "Q() :- R(x)").unwrap();
    let qb = Bundle::from(q);
    let mut s2 = PriceSchedule::new();
    s2.add(PricePoint::new(
        "V",
        ViewDef::Queries(Bundle::from(v)),
        Price::dollars(1),
    ));
    s2.add(PricePoint::new(
        "ID",
        ViewDef::identity(&catalog),
        Price::dollars(100),
    ));

    let d1 = catalog.empty_instance();
    let mut d2 = catalog.empty_instance();
    d2.insert(schema.rel_id("R").unwrap(), tuple![0]).unwrap();
    d2.insert(schema.rel_id("S").unwrap(), tuple![0, 1])
        .unwrap();

    let cfg = SupportConfig {
        max_points: 8,
        bruteforce_limit: 8,
    };
    let plain_d1 = arbitrage_price(&catalog, &d1, &s2, &qb, cfg).unwrap().price;
    let plain_d2 = arbitrage_price(&catalog, &d2, &s2, &qb, cfg).unwrap().price;
    let restr_d1 = arbitrage_price_restricted(&catalog, &d1, &s2, &qb, cfg)
        .unwrap()
        .price;
    let restr_d2 = arbitrage_price_restricted(&catalog, &d2, &s2, &qb, cfg)
        .unwrap()
        .price;
    // The plain relation drops $100 → $1; the restricted one does not.
    assert_eq!(plain_d1, Price::dollars(100));
    assert_eq!(plain_d2, Price::dollars(1));
    assert_eq!(restr_d1, Price::dollars(100), "restricted price at D1");
    assert_eq!(
        restr_d2,
        Price::dollars(100),
        "restricted price must not drop"
    );
    // Prop 2.24(c): plain ≤ restricted, pointwise.
    assert!(plain_d1 <= restr_d1 && plain_d2 <= restr_d2);
}

/// Proposition 2.17 (spirit): determinacy reduces to price-consistency.
/// Price every view of V at $0 and Q at $1; then the Q price point admits
/// arbitrage (is flagged by Theorem 2.15's check) exactly when V determines
/// Q on D.
#[test]
fn proposition_2_17_determinacy_via_consistency() {
    use qbdp::core::support::{find_arbitrage, SupportConfig};
    use qbdp::determinacy::bruteforce::determines_bruteforce;
    let col = Column::int_range(0, 2);
    let catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .build()
        .unwrap();
    let schema = catalog.schema();
    let cases = [
        // (V sources, Q source, databases to try)
        ("V(x, y) :- R(x), S(x, y)", "Q() :- R(x)"),
        ("V(x) :- R(x)", "Q() :- R(x)"),
        ("V(x, y) :- S(x, y)", "Q(x) :- S(x, x)"),
    ];
    let mut rng_state = 0xabcdefu64;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let cfg = SupportConfig {
        max_points: 6,
        bruteforce_limit: 10,
    };
    let mut agreements = 0;
    for (v_src, q_src) in cases {
        let v = parse_rule(schema, v_src).unwrap();
        let q = parse_rule(schema, q_src).unwrap();
        for _ in 0..6 {
            let mut d = catalog.empty_instance();
            for x in 0..2i64 {
                if next() % 2 == 0 {
                    let _ = d.insert(schema.rel_id("R").unwrap(), tuple![x]);
                }
                for y in 0..2i64 {
                    if next() % 2 == 0 {
                        let _ = d.insert(schema.rel_id("S").unwrap(), tuple![x, y]);
                    }
                }
            }
            // The reduction's schedule: V free, Q at $1.
            let mut s = PriceSchedule::new();
            s.add(PricePoint::new(
                "V",
                ViewDef::Queries(Bundle::from(v.clone())),
                Price::ZERO,
            ));
            s.add(PricePoint::new(
                "Q",
                ViewDef::Queries(Bundle::from(q.clone())),
                Price::dollars(1),
            ));
            let arb = find_arbitrage(&catalog, &d, &s, cfg).unwrap();
            let q_flagged = arb.iter().any(|a| a.point == 1 && a.cheaper == Price::ZERO);
            let determined = determines_bruteforce(
                &catalog,
                &d,
                &Bundle::from(v.clone()),
                &Bundle::from(q.clone()),
                10,
            )
            .unwrap();
            assert_eq!(
                q_flagged, determined,
                "{v_src} / {q_src}: consistency-flag vs determinacy mismatch"
            );
            agreements += 1;
        }
    }
    assert_eq!(agreements, 18);
}

/// Golden pinned prices for the paper's named query families: Figure 1,
/// the hard queries H1–H4 of Theorem 3.5, and cycles `C_k` for k = 3..6
/// (Theorem 3.15), each on a fixed seeded instance with seeded random
/// view prices.
///
/// The engine cross-check suite proves the three engines agree with
/// *each other*; these pins anchor them to fixed absolute values, so a
/// bug that shifts all engines together (e.g. in the shared determinacy
/// oracle or in `Money` arithmetic) still trips a test. The cent values
/// were computed by this implementation under three-engine agreement and
/// must never drift.
#[test]
fn golden_prices_h_family_and_cycles() {
    use qbdp::workload::{dbgen, prices as wprices, queries};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn priced(qs: &qbdp::workload::queries::QuerySet, seed: u64, tuples: usize) -> Quote {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = dbgen::populate_random(&qs.catalog, &mut rng, tuples).unwrap();
        let prices = wprices::random(&qs.catalog, &mut rng, 1, 5);
        let pricer = Pricer::new(qs.catalog.clone(), d, prices).unwrap();
        pricer.price_cq(&qs.query).unwrap()
    }

    // H1(x,y,z) = R(x,y,z), S(x), T(y), U(z) — NP-complete, certificates.
    let q = priced(&queries::h1_schema(3).unwrap(), 11, 12);
    assert_eq!(q.price, Price::cents(3800), "H1 golden price drifted");
    assert_eq!(q.method, PricingMethod::ExactCertificates);

    // H2(x,y) = P(x), R(x,y), S(x,y) — NP-complete (C_2 + unary).
    let q = priced(&queries::h2_schema(3).unwrap(), 12, 10);
    assert_eq!(q.price, Price::cents(1700), "H2 golden price drifted");
    assert_eq!(q.method, PricingMethod::ExactCertificates);

    // H3(x,y) = P(x), A(x,y), P(y) — self-join, outside the dichotomy,
    // priced by the exact engines regardless.
    let col = Column::int_range(0, 3);
    let catalog = CatalogBuilder::new()
        .relation("P", &[("X", col.clone())])
        .relation("A", &[("X", col.clone()), ("Y", col)])
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let d = dbgen::populate_random(&catalog, &mut rng, 8).unwrap();
    let prices = wprices::random(&catalog, &mut rng, 1, 5);
    let h3 = parse_rule(catalog.schema(), "H3(x, y) :- P(x), A(x, y), P(y)").unwrap();
    assert_eq!(classify(&h3), QueryClass::OutsideDichotomy);
    let q = Pricer::new(catalog, d, prices)
        .unwrap()
        .price_cq(&h3)
        .unwrap();
    assert_eq!(q.price, Price::cents(1800), "H3 golden price drifted");
    assert_eq!(q.method, PricingMethod::ExactCertificates);

    // H4(x) = R(x,y) — the simplest non-full CQ, subset engine.
    let q = priced(&queries::h4_schema(3).unwrap(), 14, 8);
    assert_eq!(q.price, Price::cents(700), "H4 golden price drifted");
    assert_eq!(q.method, PricingMethod::ExactSubset);

    // C_k for k = 3..6 — the Theorem 3.15 cycle algorithm.
    let golden_cycles = [(3usize, 1400u64), (4, 1500), (5, 2400), (6, 2100)];
    for (k, cents) in golden_cycles {
        let q = priced(&queries::cycle_schema(k, 2).unwrap(), 20 + k as u64, 3);
        assert_eq!(q.price, Price::cents(cents), "C_{k} golden price drifted");
        assert_eq!(q.method, PricingMethod::CycleCertificates, "C_{k}");
    }
}

/// Golden pin for Figure 1: the exact $6.00 (Example 3.8) *and* the exact
/// minimal view multiset the receipt stands for, via the market layer so
/// rendering is covered too.
#[test]
fn golden_figure1_receipt() {
    let market = Market::open_qdp(include_str!("../data/figure1.qdp")).unwrap();
    let quote = market.quote_str("Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
    assert_eq!(quote.price, Price::dollars(6));
    assert_eq!(quote.quality, QuoteQuality::Exact);
    let mut receipt = quote.receipt.clone();
    receipt.sort();
    assert_eq!(
        receipt,
        vec![
            "σ[R.X=a1] @ $1.00",
            "σ[R.X=a4] @ $1.00",
            "σ[S.Y=b1] @ $1.00",
            "σ[S.Y=b3] @ $1.00",
            "σ[T.Y=b1] @ $1.00",
            "σ[T.Y=b2] @ $1.00",
        ],
        "Figure 1 golden receipt drifted"
    );
}
