//! End-to-end marketplace runs over all three named scenarios: open,
//! consistency, quotes across the dichotomy classes, purchases, updates,
//! price revisions, persistence.

use qbdp::market::Market;
use qbdp::prelude::*;
use qbdp::workload::scenarios::{business, sports, webgraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn business_directory_end_to_end() {
    let mut rng = StdRng::seed_from_u64(11);
    let m = business::generate(
        &mut rng,
        business::BusinessConfig {
            states: 6,
            counties_per_state: 4,
            businesses: 80,
            ..Default::default()
        },
    )
    .unwrap();
    let market = Market::open(m.catalog.clone(), m.instance, m.prices).unwrap();

    // Quotes across classes.
    let chain = market.quote_str("Q(n, c) :- Business(n, 'S1', c)").unwrap();
    assert!(chain.price.is_finite());
    let join = market
        .quote_str("Q(n, c) :- Business(n, 'S1', c), Restaurant(n)")
        .unwrap();
    assert!(join.price.is_finite());
    let boolean = market
        .quote_str("Q() :- Business(n, 'S1', c), Restaurant(n)")
        .unwrap();
    assert!(boolean.price <= join.price, "boolean above full");

    // Purchase records revenue.
    let p = market
        .purchase_str("Q(n, c) :- Business(n, 'S1', c)")
        .unwrap();
    assert_eq!(market.revenue(), p.quote.price);

    // Insertions keep quotes monotone.
    let before = market
        .quote_str("Q(n, c) :- Business(n, 'S2', c)")
        .unwrap()
        .price;
    market
        .insert(
            "Business",
            [tuple!["biz0", "S2", "S2_C0"], tuple!["biz1", "S2", "S2_C1"]],
        )
        .unwrap();
    let after = market
        .quote_str("Q(n, c) :- Business(n, 'S2', c)")
        .unwrap()
        .price;
    assert!(after >= before);

    // Persistence round-trips quotes.
    let saved = market.to_qdp();
    let reopened = Market::open_qdp(&saved).unwrap();
    assert_eq!(
        reopened
            .quote_str("Q(n, c) :- Business(n, 'S2', c)")
            .unwrap()
            .price,
        after
    );
}

#[test]
fn sports_market_end_to_end() {
    let mut rng = StdRng::seed_from_u64(12);
    let m = sports::generate(
        &mut rng,
        sports::SportsConfig {
            teams: 6,
            games: 12,
            ..Default::default()
        },
    )
    .unwrap();
    let market = Market::open(m.catalog.clone(), m.instance, m.prices).unwrap();
    // A three-relation chain through all APIs.
    let q = "Q(tid, g, a) :- Team('team2', tid), Game(g, tid, a)";
    let quote = market.quote_str(q).unwrap();
    assert!(quote.price.is_finite());
    assert_eq!(quote.method, qbdp::core::pricer::PricingMethod::ChainFlow);
    // Attendance selections are not for sale; a query needing them alone
    // still prices through key covers.
    let whole_game_table = market.quote_str("Q(g, t, a) :- Game(g, t, a)").unwrap();
    assert!(whole_game_table.price.is_finite());
    // A team name outside the declared column can never exist in any
    // possible world, so the query is vacuously determined — price 0.
    let ghost = market.quote_str("Q(tid) :- Team('nosuch', tid)").unwrap();
    assert_eq!(ghost.price, Price::ZERO);
}

#[test]
fn webgraph_market_end_to_end() {
    let mut rng = StdRng::seed_from_u64(13);
    let m = webgraph::generate(
        &mut rng,
        webgraph::WebGraphConfig {
            domains: 5,
            links: 12,
            ..Default::default()
        },
    )
    .unwrap();
    let market = Market::open(m.catalog.clone(), m.instance.clone(), m.prices.clone()).unwrap();
    // The cycle query prices and audits.
    let src = "M(x, y) :- Links(x, y), Backlinks(x, y)";
    let quote = market.quote_str(src).unwrap();
    assert!(quote.price.is_finite());
    let pricer = Pricer::new(m.catalog.clone(), m.instance, m.prices).unwrap();
    let q = parse_rule(m.catalog.schema(), src).unwrap();
    let direct = pricer.price_cq(&q).unwrap();
    assert_eq!(direct.price, quote.price);
    assert!(pricer.verify_quote(&q, &direct).unwrap());
    // Explanations render.
    let explain = market.explain_str(src).unwrap();
    assert!(explain.contains("Cycle"), "{explain}");
}
