//! Property-based soundness of budget-degraded quotes: on small random
//! instances, an `UpperBound` quote never under-cuts the exact
//! arbitrage-price (Equation 2), its lower bound never over-shoots it, and
//! the quoted views are a genuine determining set sold at list price — so
//! selling the quote is exactly selling those explicit price points, which
//! introduces no arbitrage.

use proptest::prelude::*;
use qbdp::prelude::*;

const N: i64 = 3; // column size: {0, 1, 2}

fn chain2_catalog() -> Catalog {
    let col = Column::int_range(0, N);
    CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["Y"], &col)
        .build()
        .unwrap()
}

#[derive(Debug, Clone)]
struct World {
    r: Vec<i64>,
    s: Vec<(i64, i64)>,
    t: Vec<i64>,
    prices: Vec<u64>, // one price (in dollars, 1..=5) per Σ view
}

fn world_strategy() -> impl Strategy<Value = World> {
    (
        proptest::collection::vec(0..N, 0..4),
        proptest::collection::vec((0..N, 0..N), 0..6),
        proptest::collection::vec(0..N, 0..4),
        proptest::collection::vec(1u64..=5, (N as usize) * 4),
    )
        .prop_map(|(r, s, t, prices)| World { r, s, t, prices })
}

fn build(world: &World) -> (Catalog, Instance, PriceList) {
    let catalog = chain2_catalog();
    let mut d = catalog.empty_instance();
    let (r, s, t) = (
        catalog.schema().rel_id("R").unwrap(),
        catalog.schema().rel_id("S").unwrap(),
        catalog.schema().rel_id("T").unwrap(),
    );
    for &x in &world.r {
        d.insert(r, tuple![x]).unwrap();
    }
    for &(x, y) in &world.s {
        d.insert(s, tuple![x, y]).unwrap();
    }
    for &y in &world.t {
        d.insert(t, tuple![y]).unwrap();
    }
    let mut prices = PriceList::new();
    let mut i = 0;
    for attr in catalog.schema().all_attrs() {
        for v in catalog.column(attr).iter() {
            prices.set(
                SelectionView::new(attr, v.clone()),
                Price::dollars(world.prices[i]),
            );
            i += 1;
        }
    }
    (catalog, d, prices)
}

/// The query shapes that exercise every budget-governed engine: the GChQ
/// flow path, the certificate path (full single-atom), the subset path
/// (projection), and the boolean path.
const QUERIES: &[&str] = &[
    "Q(x, y) :- R(x), S(x, y), T(y)",
    "Q(x, y) :- S(x, y)",
    "Q(x) :- S(x, y)",
    "Q() :- S(x, y)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Budget-exhausted quotes bracket the exact price from above, their
    /// lower bounds from below, and the quoted views are a real
    /// determining set summing to the quoted price.
    #[test]
    fn degraded_quotes_are_sound(world in world_strategy(), fuel in 0u64..2000) {
        let (catalog, d, prices) = build(&world);
        let pricer = Pricer::new(catalog.clone(), d.clone(), prices.clone()).unwrap();
        for q_src in QUERIES {
            let q = parse_rule(catalog.schema(), q_src).unwrap();
            let exact = pricer.price_cq(&q).unwrap();
            prop_assert!(exact.quality.is_exact(), "unlimited budget degraded on {}", q_src);

            let degraded = pricer.price_cq_within(&q, &Budget::with_fuel(fuel)).unwrap();
            prop_assert!(
                degraded.price >= exact.price,
                "{}: degraded {} < exact {} (fuel {})",
                q_src, degraded.price, exact.price, fuel
            );
            prop_assert!(
                degraded.lower_bound <= exact.price,
                "{}: lower bound {} > exact {} (fuel {})",
                q_src, degraded.lower_bound, exact.price, fuel
            );
            prop_assert!(degraded.lower_bound <= degraded.price);

            // No-arbitrage: the quote is backed by explicit views sold at
            // list price — the receipt sums to the price and determines Q.
            if degraded.price.is_finite() {
                let total: Price = degraded.views.iter().map(|v| prices.get(v)).sum();
                prop_assert_eq!(
                    total, degraded.price,
                    "{}: views sum {} != price {} (fuel {})",
                    q_src, total, degraded.price, fuel
                );
                let vs: ViewSet = degraded.views.iter().cloned().collect();
                prop_assert!(
                    qbdp::determinacy::selection::determines_monotone_cq(&catalog, &d, &vs, &q)
                        .unwrap(),
                    "{}: quoted views do not determine the query (fuel {})",
                    q_src, fuel
                );
            }
        }
    }

    /// Zero fuel is the harshest budget: the structural fallback must
    /// still produce a sound, finite quote whenever the dataset is
    /// sellable (every view priced here), without any oracle calls.
    #[test]
    fn zero_fuel_still_quotes(world in world_strategy()) {
        let (catalog, d, prices) = build(&world);
        let pricer = Pricer::new(catalog.clone(), d, prices).unwrap();
        for q_src in QUERIES {
            let q = parse_rule(catalog.schema(), q_src).unwrap();
            let quote = pricer.price_cq_within(&q, &Budget::with_fuel(0)).unwrap();
            prop_assert!(quote.price.is_finite(), "{}: infinite under zero fuel", q_src);
            let exact = pricer.price_cq(&q).unwrap();
            prop_assert!(quote.price >= exact.price);
        }
    }
}
